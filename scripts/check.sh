#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --offline --workspace

echo "all checks passed"
