#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> campaign bin builds and completes a bounded run"
cargo build -q --offline --release -p legosdn-bench --bin campaign
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  || { echo "campaign smoke run failed or hung" >&2; exit 1; }

# Re-run the endpoint integration test under a hard timeout: a hung accept
# loop or leaked worker must fail fast here instead of wedging CI.
echo "==> obs endpoint integration test (hard 120s timeout)"
timeout 120 cargo test -q --offline -p legosdn --test integration_obs_endpoint \
  || { echo "obs endpoint integration test failed or timed out" >&2; exit 1; }

echo "all checks passed"
