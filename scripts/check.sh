#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> campaign bin builds and completes a bounded run"
cargo build -q --offline --release -p legosdn-bench --bin campaign --bin aggregate
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  || { echo "campaign smoke run failed or hung" >&2; exit 1; }

# Same campaign under pipelined dispatch with isolated stubs: the fan-out
# path must survive a full failure/recovery story, not just the bench.
echo "==> campaign smoke under pipelined dispatch"
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  --dispatch pipelined --isolation channel \
  || { echo "pipelined campaign smoke run failed or hung" >&2; exit 1; }

# And with the stub channels multiplexed onto the polled I/O pools: the
# same failure/recovery story must hold when no stub owns a thread.
echo "==> campaign smoke under the polled transport"
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  --dispatch pipelined --isolation channel --transport polled --io-threads 2 \
  || { echo "polled campaign smoke run failed or hung" >&2; exit 1; }

# The full failure/recovery campaign again, sharded across 4 worker
# threads: stable-hash partitioning, the cross-shard commit barrier,
# and scoped worker threads must survive crash/replay under the same
# hard timeout (the determinism suite proves the output identical;
# this proves the daemon path wires it up).
echo "==> campaign smoke under sharded dispatch (--workers 4)"
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  --dispatch pipelined --isolation channel --window 4 --workers 4 \
  || { echo "sharded campaign smoke run failed or hung" >&2; exit 1; }

# Sharded dispatch with the send cursor running ahead across cycle
# boundaries: load-aware rebalancing, declare-ahead commits, and
# cross-cycle cancellation all live on this path, so the full
# failure/recovery story must hold with lookahead enabled too.
echo "==> campaign smoke under cross-cycle lookahead (--workers 4 --lookahead 2)"
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 2 --period-ms 1 \
  --dispatch pipelined --isolation channel --window 4 --workers 4 --lookahead 2 \
  || { echo "lookahead campaign smoke run failed or hung" >&2; exit 1; }

# Scrape one path from a live endpoint over bash's /dev/tcp (curl may be
# absent), under a hard timeout so a wedged responder fails fast.
scrape() { # scrape HOST:PORT PATH
  exec 3<>"/dev/tcp/${1%:*}/${1#*:}" \
    && printf 'GET %s HTTP/1.1\r\nHost: check\r\n\r\n' "$2" >&3 \
    && timeout 10 cat <&3
  local rc=$?
  exec 3<&- 3>&- || true
  return $rc
}

# And with a cross-event window: multiple events in flight per stub, with
# crash/cancel/re-send riding the same failure/recovery story — run in the
# background so the flight recorder and local rollups can be scraped live.
echo "==> campaign smoke under windowed dispatch (--window 8) + /traces /rollups"
CMP_ADDR_FILE="$(mktemp)"
CMP_OUT="$(mktemp)"
AGG_ADDR_FILE=""
AGG_OUT=""
AGG_PID=""
CMP_PID=""
trap 'kill "$AGG_PID" "$CMP_PID" 2>/dev/null || true; \
  rm -f "$AGG_ADDR_FILE" "$AGG_OUT" "$CMP_ADDR_FILE" "$CMP_OUT"' EXIT
./target/release/campaign --addr 127.0.0.1:0 --addr-file "$CMP_ADDR_FILE" \
  --period-ms 1 --dispatch pipelined --isolation channel --window 8 \
  --trace-sample 1 2>"$CMP_OUT" &
CMP_PID=$!
for _ in $(seq 1 100); do
  [ -s "$CMP_ADDR_FILE" ] && break
  kill -0 "$CMP_PID" 2>/dev/null || { cat "$CMP_OUT" >&2; exit 1; }
  sleep 0.1
done
CMP_ADDR="$(cat "$CMP_ADDR_FILE")"
[ -n "$CMP_ADDR" ] || { echo "windowed campaign never published its address" >&2; exit 1; }
sleep 1   # let a few windowed rounds record traces
TRACES="$(scrape "$CMP_ADDR" /traces || true)"
echo "$TRACES" | grep -q '"traces"' \
  || { echo "windowed campaign /traces is missing its trace list" >&2; exit 1; }
ROLLUPS="$(scrape "$CMP_ADDR" /rollups || true)"
echo "$ROLLUPS" | grep -q '"width_ns"' \
  || { echo "windowed campaign /rollups is missing the window config" >&2; exit 1; }
kill "$CMP_PID" 2>/dev/null || true
wait "$CMP_PID" 2>/dev/null || true

echo "==> fleet smoke: aggregator + two pushing traced campaigns"
AGG_ADDR_FILE="$(mktemp)"
AGG_OUT="$(mktemp)"
./target/release/aggregate --addr 127.0.0.1:0 --addr-file "$AGG_ADDR_FILE" \
  --max-seconds 60 2>"$AGG_OUT" &
AGG_PID=$!
for _ in $(seq 1 100); do
  [ -s "$AGG_ADDR_FILE" ] && break
  kill -0 "$AGG_PID" 2>/dev/null || { cat "$AGG_OUT" >&2; exit 1; }
  sleep 0.1
done
AGG_ADDR="$(cat "$AGG_ADDR_FILE")"
[ -n "$AGG_ADDR" ] || { echo "aggregator never published its address" >&2; exit 1; }
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 3 --period-ms 1 \
  --campaign alpha --push-to "$AGG_ADDR" --trace-sample 1 \
  || { echo "campaign alpha smoke run failed or hung" >&2; exit 1; }
timeout 60 ./target/release/campaign --addr 127.0.0.1:0 --rounds 3 --period-ms 1 \
  --campaign beta --push-to "$AGG_ADDR" --trace-sample 1 \
  || { echo "campaign beta smoke run failed or hung" >&2; exit 1; }
# Scrape the merged exposition: both campaign labels and a TYPE comment
# must appear.
MERGED="$(scrape "$AGG_ADDR" /metrics || true)"
echo "$MERGED" | grep -q 'campaign="alpha"' \
  || { echo "merged /metrics is missing campaign=\"alpha\"" >&2; exit 1; }
echo "$MERGED" | grep -q 'campaign="beta"' \
  || { echo "merged /metrics is missing campaign=\"beta\"" >&2; exit 1; }
echo "$MERGED" | grep -q '^# TYPE legosdn_' \
  || { echo "merged /metrics is missing TYPE comments" >&2; exit 1; }
# The pushed flight-recorder traces and the fleet rollups must be served
# back by the aggregator, attributed per campaign.
AGG_TRACES="$(scrape "$AGG_ADDR" /traces || true)"
echo "$AGG_TRACES" | grep -q '"campaign":"alpha"' \
  || { echo "aggregator /traces has no traces for campaign alpha" >&2; exit 1; }
AGG_ROLLUPS="$(scrape "$AGG_ADDR" /rollups || true)"
echo "$AGG_ROLLUPS" | grep -q '"_fleet"' \
  || { echo "aggregator /rollups is missing the _fleet merge" >&2; exit 1; }
kill "$AGG_PID" 2>/dev/null || true
wait "$AGG_PID" 2>/dev/null || true

# A 1000-stub fleet on the polled transport: the whole fleet must be
# serviced by the fixed poll/stub-host pools (4 threads each), so the
# process thread count stays far below one-per-app. The bin exits 1 on
# a missed delivery, a missing shutdown report, or a thread-count blowup.
echo "==> polled fleet smoke: 1000 stubs under a 64-thread bound"
cargo build -q --offline --release -p legosdn-bench --bin fleet
timeout 120 ./target/release/fleet --apps 1000 --io-threads 4 --rounds 3 \
  --max-threads 64 \
  || { echo "polled fleet smoke failed, hung, or leaked threads" >&2; exit 1; }

# Trace-driven workloads at datacenter scale: replay the three seeded
# streams (flash crowd, elephant/mice, link-flap storm) over a 1125-switch
# fat-tree through the indexed flow tables. The bin exits 1 if any stream
# generates no packet-ins or delivers nothing; the timeout catches a
# lookup-path complexity regression (linear tables take minutes here).
echo "==> 1k-switch fat-tree workload smoke (hard 120s timeout)"
cargo build -q --offline --release -p legosdn-bench --bin workload
timeout 120 ./target/release/workload --k 30 --events 20000 --seed 7 \
  || { echo "fat-tree workload smoke failed or hung" >&2; exit 1; }

# Re-run the endpoint integration test under a hard timeout: a hung accept
# loop or leaked worker must fail fast here instead of wedging CI.
echo "==> obs endpoint integration test (hard 120s timeout)"
timeout 120 cargo test -q --offline -p legosdn --test integration_obs_endpoint \
  || { echo "obs endpoint integration test failed or timed out" >&2; exit 1; }

# Dispatch determinism: pipelined and sequential must leave bit-identical
# flow tables, NetLog order, and counters — swept across window depths
# {1, 2, 8} and under seeded random crash injection. A stub deadlock would
# hang the test, so it too runs under a hard timeout.
echo "==> dispatch determinism integration test (hard 120s timeout)"
timeout 120 cargo test -q --offline -p legosdn --test integration_dispatch_determinism \
  || { echo "dispatch determinism test failed or timed out" >&2; exit 1; }

echo "all checks passed"
