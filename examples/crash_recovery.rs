//! Crash recovery anatomy: watch Crash-Pad's checkpoint/restore/replay
//! machinery handle a deterministic crash loop, at two checkpoint
//! intervals (the paper-prototype per-event mode vs the §5 every-N+replay
//! optimisation).
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

fn run(interval: u64) {
    println!("=== checkpoint interval: {interval} ===");
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    // A router with a bug in its switch-down handler — the paper's running
    // example of an event worth compromising on.
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    // Healthy traffic builds app state between crashes.
    for round in 0..3 {
        for _ in 0..4 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        // The poison: bounce switch 2.
        net.set_switch_up(DatapathId(2), false).unwrap();
        rt.run_cycle(&mut net);
        net.set_switch_up(DatapathId(2), true).unwrap();
        rt.run_cycle(&mut net);
        let cp = &rt.crashpad().checkpoints;
        println!(
            "round {round}: snapshots={} bytes={} recoveries={} replayed={}",
            cp.snapshots_taken,
            cp.bytes_snapshotted,
            rt.stats().failstop_recoveries,
            rt.crashpad().stats().events_replayed,
        );
    }
    println!(
        "tickets filed: {} | controller crashed: {}\n",
        rt.crashpad().tickets.len(),
        rt.is_crashed()
    );
}

fn main() {
    // Per-event checkpointing (the paper's CRIU prototype) ...
    run(1);
    // ... versus checkpoint-every-8 with event replay (§5).
    run(8);
    println!("note the snapshot-count gap: the replay mechanism buys back");
    println!("checkpoint overhead at the cost of replaying the suffix on crash.");
}
