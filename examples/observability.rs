//! Observability end-to-end: run a small fault campaign and read the story
//! back out of the `legosdn-obs` subsystem — Prometheus exposition for the
//! metrics, and a reconstructed recovery timeline for each incident.
//!
//! ```sh
//! cargo run --example observability
//! ```

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the report stays readable.
    std::panic::set_hook(Box::new(|_| {}));

    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 2,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        checker: Some(Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
        ])),
        ..LegoSdnConfig::default()
    });

    // A healthy learning switch, a router that crashes on switch-down (the
    // paper's running fail-stop example), and a hub that turns byzantine on
    // packets to a poisoned MAC.
    let poison = topo.hosts[2].mac;
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Blackhole,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    // The campaign: healthy traffic, a byzantine poke, a switch bounce.
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    for _ in 0..3 {
        for _ in 0..4 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        rt.run_cycle(&mut net);
        net.set_switch_up(DatapathId(2), false).unwrap();
        rt.run_cycle(&mut net);
        net.set_switch_up(DatapathId(2), true).unwrap();
        rt.run_cycle(&mut net);
    }

    let obs = Obs::global();
    println!("==== Prometheus exposition ====");
    println!("{}", obs.prometheus());

    let incidents = obs.incidents();
    println!("==== {} incident(s) reconstructed ====", incidents.len());
    if let Some(report) = incidents.first() {
        println!("{}", report.render());
    }
    println!(
        "runtime stats: recoveries={} byzantine_blocked={} cycles={}",
        rt.stats().failstop_recoveries,
        rt.stats().byzantine_blocked,
        rt.stats().cycles,
    );
}
