//! Observability end-to-end: run a small fault campaign with a live ops
//! endpoint attached, then read the story back the way an external
//! operator would — scraping `/metrics` and `/incidents` over a real TCP
//! socket instead of calling the exporters in-process.
//!
//! ```sh
//! cargo run --example observability
//! ```
//!
//! For a serve-forever campaign on a fixed port, see the `campaign` bin in
//! `crates/bench` (`cargo run -p legosdn-bench --bin campaign`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

/// Fetch `path` from the endpoint and return the response body.
fn scrape(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to ops endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: legosdn\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(raw)
}

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the report stays readable.
    std::panic::set_hook(Box::new(|_| {}));

    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    // Observability is wired at construction: the `obs` section's
    // `journal_capacity` gives this runtime a private obs instance whose
    // journal retains the last 1024 records.
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        obs: ObsConfig::journal_capacity(1024),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 2,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        checker: Some(Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
        ])),
        ..LegoSdnConfig::default()
    });

    // Serve this runtime's obs state on an ephemeral loopback port. A real
    // deployment would pass `.addr(..)` with a fixed port for its scraper
    // to target.
    let server = ObsServer::builder()
        .workers(2)
        .start(rt.obs())
        .expect("bind ops endpoint");
    let addr = server.local_addr();
    println!("ops endpoint live on http://{addr}");

    // A healthy learning switch, a router that crashes on switch-down (the
    // paper's running fail-stop example), and a hub that turns byzantine on
    // packets to a poisoned MAC.
    let poison = topo.hosts[2].mac;
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(ShortestPathRouter::new()),
        BugTrigger::OnEventKind(EventKind::SwitchDown),
        BugEffect::Crash,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Blackhole,
    )))
    .unwrap();
    rt.run_cycle(&mut net);

    // The campaign: healthy traffic, a byzantine poke, a switch bounce.
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    for _ in 0..3 {
        for _ in 0..4 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        rt.run_cycle(&mut net);
        net.set_switch_up(DatapathId(2), false).unwrap();
        rt.run_cycle(&mut net);
        net.set_switch_up(DatapathId(2), true).unwrap();
        rt.run_cycle(&mut net);
    }

    println!("==== GET /metrics (Prometheus exposition, over TCP) ====");
    println!("{}", scrape(addr, "/metrics"));

    println!("==== GET /incidents (recovery timelines, over TCP) ====");
    println!("{}", scrape(addr, "/incidents"));

    println!(
        "runtime stats: recoveries={} byzantine_blocked={} cycles={}",
        rt.stats().failstop_recoveries,
        rt.stats().byzantine_blocked,
        rt.stats().cycles,
    );
    let joined = server.shutdown();
    println!("endpoint shut down cleanly ({joined} thread(s) joined)");
}
