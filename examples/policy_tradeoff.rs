//! The availability–correctness trade-off (paper §3.3): the same crash
//! under the three compromise policies, plus the operator policy language.
//!
//! ```sh
//! cargo run --example policy_tradeoff
//! ```

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

fn scenario(policies: PolicyTable, label: &str) {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies,
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    let router = rt
        .attach(Box::new(FaultyApp::new(
            Box::new(ShortestPathRouter::new()),
            BugTrigger::OnEventKind(EventKind::SwitchDown),
            BugEffect::Crash,
        )))
        .unwrap();
    rt.run_cycle(&mut net);

    // Warm up, then kill the middle switch — the poisoned event.
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    rt.run_cycle(&mut net);
    net.set_switch_up(DatapathId(2), false).unwrap();
    rt.run_cycle(&mut net);

    let stats = rt.stats();
    let alive = !matches!(rt.app_status(router), Some(AppStatus::Dead));
    let recovery = rt
        .crashpad()
        .tickets
        .iter()
        .last()
        .map(|t| format!("{:?}", t.recovery))
        .unwrap_or_else(|| "none".into());
    println!(
        "{label:<32} app alive: {alive:<5}  recoveries: {}  last recovery: {recovery}",
        stats.failstop_recoveries,
    );
}

fn main() {
    println!("crash: router panics on SwitchDown; middle switch dies\n");

    scenario(
        PolicyTable::with_default(CompromisePolicy::Absolute),
        "Absolute Compromise (ignore)",
    );
    scenario(
        PolicyTable::with_default(CompromisePolicy::NoCompromise),
        "No Compromise (let it die)",
    );
    scenario(
        PolicyTable::with_default(CompromisePolicy::Equivalence),
        "Equivalence (transform)",
    );

    // The operator policy language: a security app gets No-Compromise, the
    // router gets Equivalence for topology events only.
    println!("\noperator policy file:");
    let text = r"
default absolute
app firewall use no-compromise
app shortest-path-router#buggy on switch-down use equivalence
";
    println!("{text}");
    let table = PolicyTable::parse(text).expect("valid policy");
    scenario(table, "parsed operator policy");

    println!("\nreading: Absolute keeps the app alive but it misses the event;");
    println!("Equivalence keeps it alive AND it learns the topology change via");
    println!("link-downs; No-Compromise sacrifices the app for correctness.");
}
