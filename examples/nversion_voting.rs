//! Software and data diversity (paper §3.4): three versions of the same
//! app vote on every output; crashed and byzantine versions are outvoted.
//!
//! ```sh
//! cargo run --example nversion_voting
//! ```

use legosdn::nversion::NVersionApp;
use legosdn::prelude::*;

fn main() {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);

    // "Multiple teams develop identical versions of the same application."
    // Team 3's version panics on traffic to host b; team 2's occasionally
    // emits a black-hole rule.
    let group = NVersionApp::new(
        "hub-3versions",
        vec![
            Box::new(Hub::new()),
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnNthOfKind(EventKind::PacketIn, 3),
                BugEffect::Blackhole,
            )),
            Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnPacketToMac(b),
                BugEffect::Crash,
            )),
        ],
    );

    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(group)).unwrap();
    rt.run_cycle(&mut net);

    for i in 0..6u64 {
        let dst = if i % 2 == 0 {
            b
        } else {
            MacAddr::from_index(50 + i)
        };
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
        let report = rt.run_cycle(&mut net);
        println!(
            "packet {i} → {dst}: commands voted through: {}, recoveries: {}",
            report.commands, report.recoveries
        );
    }

    // The network never saw the byzantine rule and never lost the app.
    let blackholed = net.switches().any(|s| {
        s.table()
            .iter()
            .any(|e| e.priority == u16::MAX && e.actions.is_empty())
    });
    println!("\nblack-hole rule reached the network: {blackholed}");
    println!("controller crashed: {}", rt.is_crashed());
    println!("runtime stats: {:?}", rt.stats());
    println!("\nthe crashed version was outvoted, the byzantine version's output");
    println!("lost the majority vote, and the group never needed Crash-Pad.");
}
