//! STS-guided crash diagnosis (paper §5): after Crash-Pad survives a
//! crash, `diagnose()` searches the checkpoint history for the snapshot
//! from which the failure reproduces and delta-debugs the event suffix
//! down to the minimal causal sequence — the triage material attached to
//! the problem ticket.
//!
//! ```sh
//! cargo run --example crash_diagnosis
//! ```

use legosdn::controller::app::{Ctx, RestoreError, SdnApp};
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;

/// A "counter leak" bug: the app mishandles link-downs, and after three of
/// them any switch-down crashes it — a failure induced by a *cumulation*
/// of events, the case §5 calls out as beyond single-checkpoint recovery.
#[derive(Default)]
struct LeakyApp {
    leaked: u32,
}

impl SdnApp for LeakyApp {
    fn name(&self) -> &str {
        "leaky"
    }
    fn subscriptions(&self) -> Vec<EventKind> {
        EventKind::ALL.to_vec()
    }
    fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
        match event {
            Event::LinkDown { .. } => self.leaked += 1,
            Event::SwitchDown(_) if self.leaked >= 3 => {
                panic!("leak overflow: {} stale link records", self.leaked)
            }
            _ => {}
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.leaked.to_be_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) -> Result<(), RestoreError> {
        self.leaked = u32::from_be_bytes(b.try_into().map_err(|_| RestoreError("len".into()))?);
        Ok(())
    }
}

fn main() {
    std::panic::set_hook(Box::new(|_| {})); // contained crashes stay quiet

    let topo = Topology::ring(5, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            // A sparse checkpoint interval: the leaks and the crash all land
            // in one window, so the reproducing snapshot predates the leaks
            // and ddmin must pick the link-downs out of the noisy suffix.
            checkpoints: CheckpointPolicy {
                interval: 64,
                history: 32,
                archive: 512,
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    let app = rt.attach(Box::new(LeakyApp::default())).unwrap();
    rt.run_cycle(&mut net);

    // Three link flaps leak state; the later switch-down blows up.
    for round in 0..3 {
        net.set_link_up(round, false).unwrap();
        rt.run_cycle(&mut net);
        net.set_link_up(round, true).unwrap();
        rt.run_cycle(&mut net);
    }
    net.set_switch_up(DatapathId(3), false).unwrap();
    rt.run_cycle(&mut net);

    let ticket = rt
        .crashpad()
        .tickets
        .iter()
        .last()
        .expect("a crash was survived");
    println!("--- ticket ---\n{}", ticket.render());

    let offending = ticket.offending_event.clone();
    match rt.diagnose(app, &offending, net.now()) {
        Ok(d) => {
            println!("--- diagnosis ---");
            println!(
                "reproducing checkpoint: {} back from latest",
                d.checkpoints_back
            );
            println!(
                "suffix replayed: {} events, ddmin replays: {}",
                d.suffix_len, d.replays
            );
            println!("minimal causal sequence ({} events):", d.minimal.len());
            for (i, ev) in d.minimal.iter().enumerate() {
                println!("  {}. {:?}", i + 1, ev.kind());
            }
            println!(
                "\nreading: the crash needs the {} prior link-downs plus the",
                d.minimal.len() - 1
            );
            println!("switch-down — a multi-event bug no single-event replay would find.");
            assert!(
                d.minimal.len() >= 4,
                "diagnosis must surface the cumulative cause"
            );
        }
        Err(e) => println!("diagnosis failed: {e}"),
    }
}
