//! Controller upgrades (paper §3.4): a monolithic controller reboot loses
//! every app's state (the HotSwap problem — outages up to 10 s in the
//! paper's citation); LegoSDN's isolation lets the controller core restart
//! while apps keep running with their state intact.
//!
//! ```sh
//! cargo run --example controller_upgrade
//! ```

use legosdn::prelude::*;

/// Count deliveries for one learned host pair before/after an upgrade.
fn probe(net: &mut Network, a: MacAddr, b: MacAddr) -> bool {
    net.inject(a, Packet::ethernet(a, b))
        .map(|t| t.delivered_to(b))
        .unwrap_or(false)
}

fn main() {
    let topo = Topology::linear(2, 1);
    let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);

    // ---------------------------------------------------------- monolithic
    let mut net = Network::new(&topo);
    let mut mono = MonolithicController::new();
    mono.attach(Box::new(LearningSwitch::new()));
    mono.run_cycle(&mut net);
    // Learn both directions so traffic is switch-local.
    for _ in 0..2 {
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        mono.run_cycle(&mut net);
        net.inject(b, Packet::ethernet(b, a)).unwrap();
        mono.run_cycle(&mut net);
    }
    println!(
        "[monolithic] pre-upgrade delivery a→b: {}",
        probe(&mut net, a, b)
    );

    // Upgrade = reboot: apps lose state, flows age out, topology forgotten.
    mono.reboot();
    net.tick(SimDuration::from_secs(10)); // installed flows idle out
    mono.run_cycle(&mut net);
    println!(
        "[monolithic] post-upgrade: topology links known = {}, app must relearn from scratch",
        mono.translator().topology.n_links()
    );
    println!(
        "[monolithic] post-upgrade delivery a→b: {}\n",
        probe(&mut net, a, b)
    );

    // ------------------------------------------------------------- LegoSDN
    let mut net = Network::new(&topo);
    let mut lego = LegoSdnRuntime::new(LegoSdnConfig::default());
    lego.attach(Box::new(LearningSwitch::new())).unwrap();
    lego.run_cycle(&mut net);
    for _ in 0..2 {
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        lego.run_cycle(&mut net);
        net.inject(b, Packet::ethernet(b, a)).unwrap();
        lego.run_cycle(&mut net);
    }
    println!(
        "[legosdn] pre-upgrade delivery a→b: {}",
        probe(&mut net, a, b)
    );
    let app_events = lego
        .crashpad()
        .checkpoints
        .events_delivered("learning-switch");

    // Upgrade: the controller core restarts and re-handshakes inline; the
    // app processes are untouched.
    lego.upgrade_controller(&mut net);
    println!(
        "[legosdn] post-upgrade: topology links known = {} (re-handshake), \
         app event history preserved = {}",
        lego.translator().topology.n_links(),
        lego.crashpad()
            .checkpoints
            .events_delivered("learning-switch")
            == app_events,
    );
    // The app's MAC tables survived: fresh misses converge in one round.
    net.inject(a, Packet::ethernet(a, b)).unwrap();
    lego.run_cycle(&mut net);
    println!(
        "[legosdn] post-upgrade delivery a→b: {}",
        probe(&mut net, a, b)
    );
    println!("\nupgrades performed: {}", lego.stats().upgrades);
}
