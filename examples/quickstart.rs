//! Quickstart: the paper's pitch in sixty lines.
//!
//! Runs the same buggy application stack on (a) a monolithic FloodLight-style
//! controller, where one crash takes everything down, and (b) the LegoSDN
//! runtime, where the crash is detected, the app is restored from its
//! pre-event checkpoint, the offending event is compromised away, and the
//! network keeps forwarding.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use legosdn::prelude::*;

fn buggy_stack() -> Vec<Box<dyn SdnApp>> {
    // A learning switch plus a hub with a deterministic bug: it panics on
    // any packet destined to host 2 — the paper's "failure-inducing event".
    vec![
        Box::new(LearningSwitch::new()),
        Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(MacAddr::from_index(2)),
            BugEffect::Crash,
        )),
    ]
}

fn main() {
    let topo = Topology::linear(2, 1);
    let (alice, bob) = (topo.hosts[0].mac, topo.hosts[1].mac);
    println!("topology: 2 switches, hosts {alice} and {bob}\n");

    // ---------------------------------------------------------- monolithic
    let mut net = Network::new(&topo);
    let mut mono = MonolithicController::new();
    for app in buggy_stack() {
        mono.attach(app);
    }
    mono.run_cycle(&mut net);
    println!("[monolithic] controller up, apps: {:?}", mono.app_names());

    net.inject(alice, Packet::ethernet(alice, bob)).unwrap();
    let report = mono.run_cycle(&mut net);
    if let Some(crash) = &report.crash {
        println!(
            "[monolithic] app '{}' crashed: {}",
            crash.app, crash.panic_message
        );
    }
    println!("[monolithic] controller dead: {}", mono.is_crashed());
    net.inject(alice, Packet::ethernet(alice, MacAddr::from_index(99)))
        .unwrap();
    mono.run_cycle(&mut net);
    println!(
        "[monolithic] events lost while down: {}\n",
        mono.stats().events_lost_while_down
    );

    // ------------------------------------------------------------- LegoSDN
    let mut net = Network::new(&topo);
    let mut lego = LegoSdnRuntime::new(LegoSdnConfig::default());
    for app in buggy_stack() {
        lego.attach(app).unwrap();
    }
    lego.run_cycle(&mut net);
    println!("[legosdn] controller up, apps: {:?}", lego.app_names());

    net.inject(alice, Packet::ethernet(alice, bob)).unwrap();
    let report = lego.run_cycle(&mut net);
    println!(
        "[legosdn] same poisoned packet: {} recovery(ies), controller dead: {}",
        report.recoveries,
        lego.is_crashed()
    );
    for ticket in lego.crashpad().tickets.iter() {
        print!("{}", ticket.render());
    }

    // Traffic keeps flowing afterwards: resend until the reactive rules
    // converge along the path (one switch learns per round).
    let mut delivered = false;
    for _ in 0..4 {
        let trace = net.inject(bob, Packet::ethernet(bob, alice)).unwrap();
        lego.run_cycle(&mut net);
        if trace.delivered_to(alice) {
            delivered = true;
            break;
        }
    }
    println!("[legosdn] post-crash traffic bob→alice delivered: {delivered}");
    println!("[legosdn] stats: {:?}", lego.stats());
}
