//! Byzantine defense: the NetLog transaction + invariant-gate pipeline
//! stopping black-holes and forwarding loops before they reach the
//! network, on a ring topology where loops are one bad rule away.
//!
//! ```sh
//! cargo run --example byzantine_defense
//! ```

use legosdn::invariants::{Checker, Invariant};
use legosdn::prelude::*;

fn main() {
    // A 4-switch ring: topologically cyclic, so a careless flood rule is an
    // instant forwarding loop.
    let topo = Topology::ring(4, 1);
    let mut net = Network::new(&topo);

    let checker = Checker::new(vec![Invariant::NoBlackHoles, Invariant::NoLoops]);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        checker: Some(checker.clone()),
        ..LegoSdnConfig::default()
    });

    // The spanning tree app keeps broadcast traffic loop-free...
    rt.attach(Box::new(SpanningTree::new())).unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    // ...while a byzantine app tries to wreck the ring: every third
    // packet-in it emits top-priority loop rules, every fifth a black-hole.
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnNthOfKind(EventKind::PacketIn, 3),
        BugEffect::ForwardingLoop,
    )))
    .unwrap();
    rt.attach(Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnNthOfKind(EventKind::PacketIn, 5),
        BugEffect::Blackhole,
    )))
    .unwrap();

    rt.run_cycle(&mut net);
    println!(
        "ring discovered: {} links, spanning tree blocked {} port(s)\n",
        rt.translator().topology.n_links(),
        net.switches()
            .map(|s| s.table().iter().filter(|e| e.priority == 0xe000).count())
            .sum::<usize>(),
    );

    // Drive traffic around the ring.
    let hosts = topo.hosts.clone();
    for i in 0..8usize {
        let src = hosts[i % hosts.len()].mac;
        let dst = hosts[(i + 2) % hosts.len()].mac;
        net.inject(src, Packet::ethernet(src, dst)).unwrap();
        let report = rt.run_cycle(&mut net);
        if report.byzantine_blocked > 0 {
            println!(
                "packet {i}: byzantine output blocked ({} tx aborted & rolled back)",
                report.byzantine_blocked
            );
        }
    }

    // The proof: the network is still invariant-clean.
    let report = checker.check(&net);
    println!(
        "\nfinal invariant check over {} host pairs:",
        report.pairs_checked
    );
    println!("  delivered: {}", report.pairs_delivered);
    println!("  punted:    {}", report.pairs_punted);
    println!(
        "  violations: {} (black-holes + loops)",
        report.violations.len()
    );
    println!(
        "\nbyzantine outputs blocked in total: {}",
        rt.stats().byzantine_blocked
    );
    println!("controller crashed: {}", rt.is_crashed());
    assert!(
        report.is_clean(),
        "the gate must have kept the network clean"
    );
}
