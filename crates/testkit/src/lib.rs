//! Deterministic randomness for LegoSDN: a seedable PRNG used by
//! `netsim::Topology::random` and the benches, plus a tiny property-test
//! harness replacing `proptest` (the build environment has no registry
//! access, so both are hand-rolled over std).
//!
//! Determinism is load-bearing: topology generation and fault campaigns
//! assert same-seed reproducibility, and STS-style replay (ROADMAP) depends
//! on it.

use std::panic::{self, AssertUnwindSafe};

/// A small, fast, seedable PRNG (splitmix64).
///
/// Not cryptographic. Passes through every 64-bit state exactly once, so
/// distinct seeds give distinct streams; the same seed always gives the
/// same stream on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[range.start, range.end)`. Panics on empty ranges,
    /// matching `rand::Rng::gen_range`.
    pub fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample(self, range.start, range.end)
    }

    /// Uniform value in `[range.start, range.end]`.
    pub fn gen_range_inclusive<T: SampleUniform>(
        &mut self,
        range: std::ops::RangeInclusive<T>,
    ) -> T {
        let (lo, hi) = range.into_inner();
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A vector of `len in len_range` elements drawn by `gen`.
    pub fn gen_vec<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = if len_range.start + 1 == len_range.end {
            len_range.start
        } else {
            self.gen_range(len_range)
        };
        (0..len).map(|_| gen(self)).collect()
    }

    /// `Some(gen(..))` half the time.
    pub fn gen_option<T>(&mut self, gen: impl FnOnce(&mut Rng) -> T) -> Option<T> {
        if self.gen_bool(0.5) {
            Some(gen(self))
        } else {
            None
        }
    }

    /// One element of `items`, by reference. Panics if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }

    /// A lowercase ASCII string with `len in len_range` characters.
    pub fn gen_name(&mut self, len_range: std::ops::Range<usize>) -> String {
        let len = self.gen_range(len_range);
        (0..len)
            .map(|_| (b'a' + (self.gen_range(0..26u32) as u8)) as char)
            .collect()
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for tests and topology generation.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(v as $wide)) as $ty
            }
            fn sample_inclusive(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                if lo == hi {
                    return lo;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((lo as $wide).wrapping_add(v as $wide)) as $ty
            }
        }
    )*};
}

sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Run `body` against `cases` deterministically-seeded generators.
///
/// Replacement for `proptest!`: each case gets an [`Rng`] seeded from a
/// fixed base (overridable via `LEGOSDN_TESTKIT_SEED`), so failures
/// reproduce exactly. On panic the failing case's seed is printed before
/// the panic propagates — re-run with that seed to debug:
///
/// ```text
/// LEGOSDN_TESTKIT_SEED=42 cargo test -p legosdn-netlog
/// ```
pub fn forall(cases: u32, mut body: impl FnMut(&mut Rng)) {
    let base: u64 = std::env::var("LEGOSDN_TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_1E60_5D4E_0001);
    for case in 0..cases {
        let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "testkit: property failed at case {case}/{cases} \
                 (LEGOSDN_TESTKIT_SEED={base}, case seed {seed:#x})"
            );
            panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let i = rng.gen_range_inclusive(1u8..=32);
            assert!((1..=32).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn forall_is_deterministic() {
        let mut first = Vec::new();
        forall(5, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        forall(5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn gen_vec_length_in_range() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            let v = rng.gen_vec(0..10, |r| r.next_u64());
            assert!(v.len() < 10);
        }
    }
}
