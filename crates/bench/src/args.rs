//! Shared std-only flag parsing for the workload binaries (`campaign`,
//! `fleet`, `aggregate`).
//!
//! Each binary keeps its own config struct and `USAGE` text; this module
//! owns the mechanics they used to duplicate: the flag/value walker, the
//! error-to-usage exit path, and typed groups for the flag families more
//! than one binary accepts (ops endpoint, dispatch shape, stub I/O).
//!
//! A group exposes `try_flag(flag, args) -> Result<bool, String>`: `true`
//! means the group consumed the flag (and any value), `false` means the
//! caller should keep matching. Binaries chain the groups first and
//! handle their own flags in the `false` arm.

use std::net::SocketAddr;

use legosdn::appvisor::IoMode;
use legosdn::{DispatchConfig, DispatchMode, IoConfig};

/// Iterator over `--flag [value]` argument lists, remembering the flag
/// currently being parsed so value errors name it.
pub struct ArgWalker<'a> {
    it: std::slice::Iter<'a, String>,
    current: String,
}

impl<'a> ArgWalker<'a> {
    #[must_use]
    pub fn new(args: &'a [String]) -> Self {
        ArgWalker {
            it: args.iter(),
            current: String::new(),
        }
    }

    /// The next flag, or `None` when the arguments are exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let flag = self.it.next().cloned()?;
        self.current.clone_from(&flag);
        Some(flag)
    }

    /// The current flag's value argument.
    pub fn value(&mut self) -> Result<String, String> {
        self.it
            .next()
            .cloned()
            .ok_or_else(|| format!("{} needs a value", self.current))
    }

    /// The current flag's value, parsed; errors are prefixed with the
    /// flag name (`--window: invalid digit ...`).
    pub fn parsed<T: std::str::FromStr>(&mut self) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let flag = self.current.clone();
        self.value()?.parse().map_err(|e| format!("{flag}: {e}"))
    }
}

/// Run `parse` over the process arguments; on error print the message
/// (unless empty — the `--help` convention) and `usage`, then exit with
/// 2 (0 for help).
pub fn parse_or_exit<T>(usage: &str, parse: impl FnOnce(&[String]) -> Result<T, String>) -> T {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{usage}");
            std::process::exit(i32::from(!msg.is_empty()) * 2);
        }
    }
}

/// `--addr HOST:PORT` / `--addr-file PATH`: where a daemon serves its
/// ops endpoint, and where to write the bound address for scripts (the
/// `--addr ...:0` ephemeral-port dance).
pub struct EndpointArgs {
    pub addr: SocketAddr,
    pub addr_file: Option<String>,
}

impl EndpointArgs {
    /// Loopback on `port` with no address file.
    #[must_use]
    pub fn on_port(port: u16) -> Self {
        EndpointArgs {
            addr: SocketAddr::from(([127, 0, 0, 1], port)),
            addr_file: None,
        }
    }

    pub fn try_flag(&mut self, flag: &str, args: &mut ArgWalker) -> Result<bool, String> {
        match flag {
            "--addr" => self.addr = args.parsed()?,
            "--addr-file" => self.addr_file = Some(args.value()?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// `--dispatch sequential|pipelined` / `--window DEPTH` / `--workers N` /
/// `--lookahead CYCLES`: the runtime's dispatch shape, mirroring
/// [`DispatchConfig`].
pub struct DispatchArgs {
    pub mode: DispatchMode,
    pub window: usize,
    pub workers: usize,
    pub lookahead: usize,
}

impl Default for DispatchArgs {
    fn default() -> Self {
        let d = DispatchConfig::default();
        DispatchArgs {
            mode: d.mode,
            window: d.window.depth,
            workers: d.workers,
            lookahead: d.lookahead_cycles,
        }
    }
}

impl DispatchArgs {
    pub fn try_flag(&mut self, flag: &str, args: &mut ArgWalker) -> Result<bool, String> {
        match flag {
            "--dispatch" => {
                let v = args.value()?;
                self.mode =
                    DispatchMode::parse(&v).ok_or_else(|| format!("unknown dispatch mode: {v}"))?;
            }
            "--window" => {
                self.window = args.parsed()?;
                if self.window == 0 {
                    return Err("--window must be at least 1".into());
                }
            }
            "--workers" => {
                self.workers = args.parsed()?;
                if self.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--lookahead" => {
                self.lookahead = args.parsed()?;
                if self.lookahead == 0 {
                    return Err("--lookahead must be at least 1".into());
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The equivalent dispatch config section.
    #[must_use]
    pub fn config(&self) -> DispatchConfig {
        DispatchConfig {
            mode: self.mode,
            ..DispatchConfig::default()
        }
        .window(self.window)
        .workers(self.workers)
        .lookahead(self.lookahead)
    }
}

/// `--transport blocking|polled` / `--io-threads N`: how stub channels
/// are serviced, mirroring [`IoConfig::mode`].
#[derive(Default)]
pub struct IoArgs {
    pub mode: IoMode,
}

impl IoArgs {
    pub fn try_flag(&mut self, flag: &str, args: &mut ArgWalker) -> Result<bool, String> {
        match flag {
            "--transport" => {
                let v = args.value()?;
                self.mode =
                    IoMode::parse(&v).ok_or_else(|| format!("unknown transport mode: {v}"))?;
            }
            "--io-threads" => {
                let n: usize = args.parsed()?;
                if n == 0 {
                    return Err("--io-threads must be at least 1".into());
                }
                self.mode = IoMode::Polled { io_threads: n };
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The equivalent I/O config section (default proxy tuning).
    #[must_use]
    pub fn config(&self) -> IoConfig {
        IoConfig {
            mode: self.mode,
            ..IoConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn walker_names_the_flag_in_value_errors() {
        let args = argv(&["--window"]);
        let mut w = ArgWalker::new(&args);
        assert_eq!(w.next_flag().as_deref(), Some("--window"));
        assert_eq!(w.value().unwrap_err(), "--window needs a value");
    }

    #[test]
    fn walker_parse_errors_carry_the_flag_prefix() {
        let args = argv(&["--window", "nope"]);
        let mut w = ArgWalker::new(&args);
        w.next_flag();
        let err = w.parsed::<usize>().unwrap_err();
        assert!(err.starts_with("--window: "), "{err}");
    }

    #[test]
    fn dispatch_group_consumes_its_flags_and_builds_the_section() {
        let args = argv(&[
            "--dispatch",
            "pipelined",
            "--window",
            "8",
            "--workers",
            "4",
            "--lookahead",
            "2",
            "--other",
        ]);
        let mut w = ArgWalker::new(&args);
        let mut d = DispatchArgs::default();
        while let Some(flag) = w.next_flag() {
            if flag == "--other" {
                break;
            }
            assert!(d.try_flag(&flag, &mut w).unwrap(), "{flag} not consumed");
        }
        let cfg = d.config();
        assert_eq!(cfg.mode, DispatchMode::Pipelined);
        assert_eq!(cfg.window.depth, 8);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.lookahead_cycles, 2);
    }

    #[test]
    fn zero_counts_are_rejected() {
        for flags in [
            ["--window", "0"],
            ["--workers", "0"],
            ["--lookahead", "0"],
            ["--io-threads", "0"],
        ] {
            let args = argv(&flags);
            let mut w = ArgWalker::new(&args);
            let flag = w.next_flag().unwrap();
            let mut d = DispatchArgs::default();
            let mut io = IoArgs::default();
            let res = if flag == "--io-threads" {
                io.try_flag(&flag, &mut w)
            } else {
                d.try_flag(&flag, &mut w)
            };
            assert!(res.is_err(), "{flag} 0 accepted");
        }
    }

    #[test]
    fn endpoint_group_parses_addr_and_file() {
        let args = argv(&["--addr", "127.0.0.1:0", "--addr-file", "/tmp/x"]);
        let mut w = ArgWalker::new(&args);
        let mut e = EndpointArgs::on_port(9999);
        while let Some(flag) = w.next_flag() {
            assert!(e.try_flag(&flag, &mut w).unwrap());
        }
        assert_eq!(e.addr.port(), 0);
        assert_eq!(e.addr_file.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn unknown_flags_are_left_for_the_caller() {
        let args = argv(&["--mystery"]);
        let mut w = ArgWalker::new(&args);
        let flag = w.next_flag().unwrap();
        let mut e = EndpointArgs::on_port(1);
        let mut d = DispatchArgs::default();
        let mut io = IoArgs::default();
        assert!(!e.try_flag(&flag, &mut w).unwrap());
        assert!(!d.try_flag(&flag, &mut w).unwrap());
        assert!(!io.try_flag(&flag, &mut w).unwrap());
    }
}
