//! Trace-driven workload smoke: replay the seeded datacenter streams
//! (flash crowd, elephant/mice, link-flap storm) over a fat-tree against a
//! minimal reactive controller and report replay stats. Used by `check.sh`
//! as the 1k-switch scale gate: it must finish under the script's timeout
//! and actually move traffic.

use legosdn::prelude::*;
use legosdn_bench::args::{parse_or_exit, ArgWalker};
use legosdn_bench::print_table;
use legosdn_bench::workloads::{
    elephant_mice, flash_crowd, link_flap_storm, replay_reactive, ReplayStats, TraceWorkload,
};
use std::time::Instant;

const USAGE: &str = "\
workload — replay trace-driven datacenter streams over a fat-tree

usage: workload [options]
  --k K            fat-tree arity (even, >= 2; switches = (k/2)^2 + k^2) [default 30]
  --events N       events per workload stream                            [default 20000]
  --seed S         base RNG seed (stream i uses S + i)                   [default 7]
  --idle SECONDS   reactive rules' idle timeout                          [default 10]
  --help           print this help
";

struct Config {
    k: usize,
    events: usize,
    seed: u64,
    idle: u16,
}

fn parse(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config {
        k: 30,
        events: 20_000,
        seed: 7,
        idle: 10,
    };
    let mut w = ArgWalker::new(args);
    while let Some(flag) = w.next_flag() {
        match flag.as_str() {
            "--k" => {
                cfg.k = w.parsed()?;
                if cfg.k < 2 || !cfg.k.is_multiple_of(2) {
                    return Err("--k must be even and at least 2".into());
                }
            }
            "--events" => cfg.events = w.parsed()?,
            "--seed" => cfg.seed = w.parsed()?,
            "--idle" => cfg.idle = w.parsed()?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = parse_or_exit(USAGE, parse);
    let topo = Topology::fat_tree(cfg.k);
    let n_switches = topo.switches.len();
    eprintln!(
        "fat_tree({}): {} switches, {} links, {} hosts; {} events per stream",
        cfg.k,
        n_switches,
        topo.links.len(),
        topo.hosts.len(),
        cfg.events
    );

    let streams: Vec<TraceWorkload> = vec![
        flash_crowd(&topo, cfg.seed, cfg.events),
        elephant_mice(&topo, cfg.seed + 1, cfg.events),
        link_flap_storm(&topo, cfg.seed + 2, cfg.events),
    ];
    let mut rows = Vec::new();
    let mut failed = false;
    for w in &streams {
        let mut net = Network::new(&topo);
        let t0 = Instant::now();
        let stats: ReplayStats = replay_reactive(&mut net, w, cfg.idle, cfg.events / 20);
        let secs = t0.elapsed().as_secs_f64();
        let rules: usize = net.switches().map(|s| s.table().len()).sum();
        if stats.packet_ins == 0 || stats.delivered == 0 {
            eprintln!("FAIL: {} moved no traffic: {stats:?}", w.name);
            failed = true;
        }
        rows.push(vec![
            w.name.to_string(),
            stats.events.to_string(),
            stats.packet_ins.to_string(),
            stats.flow_mods.to_string(),
            stats.delivered.to_string(),
            stats.dropped.to_string(),
            rules.to_string(),
            format!("{:.0}", stats.events as f64 / secs),
        ]);
    }
    print_table(
        &format!("workload replay over {n_switches} switches"),
        &[
            "stream",
            "events",
            "packet-ins",
            "flow-mods",
            "delivered",
            "dropped",
            "rules",
            "events/s",
        ],
        &rows,
    );
    if failed {
        std::process::exit(1);
    }
}
