//! `campaign` — the repo's first serve-forever workload: a long-running
//! fault-campaign daemon with a live ops endpoint.
//!
//! Runs configurable fault campaigns (apps × fault kinds × policies)
//! indefinitely while `legosdn_obs::ObsServer` serves the live metrics,
//! JSON snapshot, and recovery timelines of exactly this campaign:
//!
//! ```sh
//! cargo run --release -p legosdn-bench --bin campaign -- --addr 127.0.0.1:9184
//! curl http://127.0.0.1:9184/metrics     # Prometheus text
//! curl http://127.0.0.1:9184/incidents   # recovery timelines
//! ```
//!
//! `--rounds 0` (the default) runs until the process is killed; a finite
//! `--rounds N` makes the daemon a smoke-testable batch job (used by
//! `scripts/check.sh`).
//!
//! With `--push-to HOST:PORT` the daemon additionally *pushes* its
//! snapshot to a fleet aggregator (the `aggregate` binary) under the name
//! given by `--campaign`, so N concurrent campaigns merge into one
//! operator view. Pushing is fire-and-forget with backoff: a dead
//! aggregator never slows the campaign down.

use std::net::SocketAddr;
use std::time::Duration;

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::args::{parse_or_exit, ArgWalker, DispatchArgs, EndpointArgs, IoArgs};

struct CampaignConfig {
    endpoint: EndpointArgs,
    rounds: u64,
    switches: usize,
    hosts_per_switch: usize,
    policy: CompromisePolicy,
    faults: Vec<BugEffect>,
    period: Duration,
    push_to: Option<SocketAddr>,
    campaign: String,
    dispatch: DispatchArgs,
    isolation: IsolationMode,
    io: IoArgs,
    trace_sample: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            endpoint: EndpointArgs::on_port(9184),
            rounds: 0,
            switches: 3,
            hosts_per_switch: 1,
            policy: CompromisePolicy::Absolute,
            faults: vec![BugEffect::Crash, BugEffect::Blackhole],
            period: Duration::from_millis(20),
            push_to: None,
            campaign: "campaign".to_string(),
            dispatch: DispatchArgs::default(),
            isolation: IsolationMode::Local,
            io: IoArgs::default(),
            trace_sample: 1,
        }
    }
}

const USAGE: &str = "usage: campaign [--addr HOST:PORT] [--addr-file PATH] \
[--rounds N] \
[--switches N] [--hosts N] [--policy absolute|no-compromise|equivalence] \
[--faults crash,blackhole,loop,flush] [--period-ms MS] \
[--push-to HOST:PORT] [--campaign NAME] \
[--dispatch sequential|pipelined] [--window DEPTH] [--workers N] \
[--lookahead CYCLES] [--isolation local|channel|udp|tcp] \
[--transport blocking|polled] [--io-threads N] [--trace-sample N]\n\
--rounds 0 (default) serves forever. --addr 127.0.0.1:0 picks an \
ephemeral port (written to --addr-file for scripts). --push-to exports \
to a fleet aggregator under the --campaign name. --dispatch pipelined \
(the default) fans events out to isolated apps concurrently; --window \
DEPTH keeps up to DEPTH events of a cycle in flight on each stub's \
stream (default 1; same network state either way, see DESIGN.md). \
--workers N shards the apps across N worker threads, each running its \
own window machinery; commits stay in the sequential order through the \
shared commit barrier (default 1). --lookahead CYCLES lets the window \
run ahead into events this cycle's commits enqueue, up to CYCLES times \
the cycle's own event count (default 1: today's cycle boundary). \
--transport polled services every stub channel from a fixed pool of \
poll threads instead of one blocking thread per stub; --io-threads N \
sizes that pool (default 4; only meaningful with isolated modes). \
--trace-sample N records a causal flight-recorder trace for every Nth \
event (default 1: every event; 0 disables tracing), served at /traces \
and /traces/<cycle>-<seq>.";

fn parse_fault(s: &str) -> Result<BugEffect, String> {
    match s {
        "crash" => Ok(BugEffect::Crash),
        "blackhole" => Ok(BugEffect::Blackhole),
        "loop" => Ok(BugEffect::ForwardingLoop),
        "flush" => Ok(BugEffect::FlushFlows),
        other => Err(format!("unknown fault kind: {other}")),
    }
}

fn parse_args(args: &[String]) -> Result<CampaignConfig, String> {
    let mut cfg = CampaignConfig::default();
    let mut it = ArgWalker::new(args);
    while let Some(flag) = it.next_flag() {
        if cfg.endpoint.try_flag(&flag, &mut it)?
            || cfg.dispatch.try_flag(&flag, &mut it)?
            || cfg.io.try_flag(&flag, &mut it)?
        {
            continue;
        }
        match flag.as_str() {
            "--rounds" => cfg.rounds = it.parsed()?,
            "--switches" => {
                cfg.switches = it.parsed()?;
                if cfg.switches < 2 {
                    return Err("--switches must be at least 2".into());
                }
            }
            "--hosts" => {
                cfg.hosts_per_switch = it.parsed()?;
                if cfg.hosts_per_switch == 0 {
                    return Err("--hosts must be at least 1".into());
                }
            }
            "--policy" => {
                cfg.policy = match it.value()?.as_str() {
                    "absolute" => CompromisePolicy::Absolute,
                    "no-compromise" => CompromisePolicy::NoCompromise,
                    "equivalence" => CompromisePolicy::Equivalence,
                    other => return Err(format!("unknown policy: {other}")),
                }
            }
            "--faults" => {
                cfg.faults = it
                    .value()?
                    .split(',')
                    .map(parse_fault)
                    .collect::<Result<_, _>>()?;
                if cfg.faults.is_empty() {
                    return Err("--faults needs at least one kind".into());
                }
            }
            "--period-ms" => cfg.period = Duration::from_millis(it.parsed()?),
            "--push-to" => cfg.push_to = Some(it.parsed()?),
            "--campaign" => {
                cfg.campaign = it.value()?;
                if cfg.campaign.is_empty() || cfg.campaign == legosdn::obs::FLEET {
                    return Err("--campaign must be a non-reserved, non-empty name".into());
                }
            }
            "--isolation" => {
                let v = it.value()?;
                cfg.isolation = IsolationMode::parse(&v)
                    .ok_or_else(|| format!("unknown isolation mode: {v}"))?;
            }
            "--trace-sample" => cfg.trace_sample = it.parsed()?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

/// Attach the campaign roster: one healthy app plus one faulty app per
/// configured fault kind (fail-stop kinds trigger on switch-down, the
/// byzantine kinds on a poisoned MAC).
fn attach_roster(rt: &mut LegoSdnRuntime, faults: &[BugEffect], poison: MacAddr) {
    rt.attach(Box::new(LearningSwitch::new()))
        .expect("attach learning switch");
    for &fault in faults {
        let app: Box<dyn SdnApp> = match fault {
            BugEffect::Crash => Box::new(FaultyApp::new(
                Box::new(ShortestPathRouter::new()),
                BugTrigger::OnEventKind(EventKind::SwitchDown),
                BugEffect::Crash,
            )),
            byzantine => Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnPacketToMac(poison),
                byzantine,
            )),
        };
        rt.attach(app).expect("attach faulty app");
    }
}

fn main() {
    let cfg = parse_or_exit(USAGE, parse_args);

    // Injected crashes are contained by design; silence their backtraces so
    // the daemon's stderr stays a readable status stream.
    std::panic::set_hook(Box::new(|_| {}));

    let topo = Topology::linear(cfg.switches, cfg.hosts_per_switch);
    let mut net = Network::new(&topo);
    // A private obs instance, wired at construction: the endpoint serves
    // exactly this campaign, not whatever else the process global may
    // have accumulated.
    let config = LegoSdnConfig {
        isolation: cfg.isolation,
        dispatch: cfg.dispatch.config(),
        io: cfg.io.config(),
        obs: ObsConfig::instance(Obs::new()).trace_sample(cfg.trace_sample),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 2,
                history: 8,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(cfg.policy),
            transform_direction: TransformDirection::Decompose,
        },
        checker: Some(Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
        ])),
        ..LegoSdnConfig::default()
    }
    .build()
    .unwrap_or_else(|e| {
        eprintln!("error: invalid config: {e}");
        std::process::exit(2);
    });
    let mut rt = LegoSdnRuntime::new(config);
    let obs = rt.obs();

    let poison = topo.hosts[topo.hosts.len() - 1].mac;
    attach_roster(&mut rt, &cfg.faults, poison);
    rt.run_cycle(&mut net); // handshake + discovery

    let server = ObsServer::start(
        obs.clone(),
        ServeConfig {
            addr: cfg.endpoint.addr,
            ..ServeConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!(
            "error: cannot bind ops endpoint on {}: {e}",
            cfg.endpoint.addr
        );
        std::process::exit(1);
    });
    if let Some(path) = &cfg.endpoint.addr_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", server.local_addr())) {
            eprintln!("error: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "campaign: serving /metrics /metrics.json /incidents /traces /rollups /healthz on http://{} \
         ({} switches, policy {}, {} fault app(s), {:?}/{:?} dispatch, \
         window {}, {} worker(s), lookahead {}, {:?} io, {})",
        server.local_addr(),
        cfg.switches,
        cfg.policy,
        cfg.faults.len(),
        cfg.dispatch.mode,
        cfg.isolation,
        cfg.dispatch.window,
        cfg.dispatch.workers,
        cfg.dispatch.lookahead,
        cfg.io.mode,
        if cfg.rounds == 0 {
            "until killed".to_string()
        } else {
            format!("{} rounds", cfg.rounds)
        },
    );

    let exporter = cfg.push_to.map(|target| {
        eprintln!(
            "campaign: pushing to aggregator http://{target}/push as campaign \
             {:?}",
            cfg.campaign
        );
        PushExporter::start(obs.clone(), PushConfig::new(target, cfg.campaign.clone()))
    });

    let (a, b) = (topo.hosts[0].mac, topo.hosts[1 % topo.hosts.len()].mac);
    let bounce = DatapathId(cfg.switches as u64); // the last switch
    let mut round: u64 = 0;
    loop {
        round += 1;
        // Healthy traffic, then a byzantine poke, then a switch bounce (the
        // fail-stop trigger) — one full failure/recovery story per round.
        for _ in 0..4 {
            let _ = net.inject(a, Packet::ethernet(a, b));
            rt.run_cycle(&mut net);
        }
        let _ = net.inject(a, Packet::ethernet(a, poison));
        rt.run_cycle(&mut net);
        let _ = net.set_switch_up(bounce, false);
        rt.run_cycle(&mut net);
        let _ = net.set_switch_up(bounce, true);
        rt.run_cycle(&mut net);

        if round.is_multiple_of(50) || round == cfg.rounds {
            let stats = rt.stats();
            eprintln!(
                "campaign: round {round} cycles={} recoveries={} byzantine_blocked={} \
                 incidents={}",
                stats.cycles,
                stats.failstop_recoveries,
                stats.byzantine_blocked,
                obs.incidents().len(),
            );
        }
        if round == cfg.rounds {
            break;
        }
        std::thread::sleep(cfg.period);
    }

    if let Some(exporter) = exporter {
        // Final flush inside: short smoke runs still land a complete frame.
        exporter.shutdown();
    }
    let joined = server.shutdown();
    eprintln!(
        "campaign: done after {round} round(s); endpoint shut down ({joined} thread(s) joined)"
    );
}
