//! `fleet` — stub-fleet scale smoke: many isolated apps on a bounded
//! thread budget.
//!
//! Launches `--apps N` AppVisor stubs directly against the proxy (no
//! network simulation — this exercises the isolation layer alone), fans
//! a few event rounds out to all of them, and reports throughput plus
//! the process thread count from `/proc/self/status`.
//!
//! Under `--transport blocking` every stub owns a thread, so the process
//! grows ~N threads. Under `--transport polled` (the default) the whole
//! fleet is serviced by two fixed pools — `--io-threads N` poll workers
//! on the proxy side and the same number of stub-host workers — so the
//! thread count stays flat no matter how many apps attach. `scripts/
//! check.sh` runs this with `--apps 1000 --max-threads 64`: the smoke
//! fails (exit 1) if the fleet ever needs more threads than that, or if
//! any app misses a delivery or its shutdown report.

use std::time::{Duration, Instant};

use legosdn::apps::Hub;
use legosdn::appvisor::{
    AppHandle, AppVisorProxy, DeliverOutcome, IoMode, ProxyConfig, StubConfig, TransportKind,
};
use legosdn::controller::event::Event;
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::netsim::SimTime;
use legosdn::openflow::DatapathId;
use legosdn_bench::args::{parse_or_exit, ArgWalker, IoArgs};
use legosdn_bench::print_table;

struct FleetConfig {
    apps: usize,
    rounds: u64,
    io: IoArgs,
    max_threads: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            apps: 1000,
            rounds: 3,
            io: IoArgs {
                mode: IoMode::Polled { io_threads: 4 },
            },
            max_threads: None,
        }
    }
}

const USAGE: &str = "usage: fleet [--apps N] [--rounds N] \
[--transport blocking|polled] [--io-threads N] [--max-threads N]\n\
Launches N isolated stub apps against one AppVisor proxy, fans --rounds \
events out to all of them, and prints throughput plus the process thread \
count. --transport polled (the default) services the whole fleet from \
fixed poll/stub-host pools of --io-threads threads each; --max-threads N \
makes the run fail (exit 1) if /proc/self/status ever reports more \
threads than N.";

fn parse_args(args: &[String]) -> Result<FleetConfig, String> {
    let mut cfg = FleetConfig::default();
    let mut it = ArgWalker::new(args);
    while let Some(flag) = it.next_flag() {
        if cfg.io.try_flag(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--apps" => {
                cfg.apps = it.parsed()?;
                if cfg.apps == 0 {
                    return Err("--apps must be at least 1".into());
                }
            }
            "--rounds" => {
                cfg.rounds = it.parsed()?;
                if cfg.rounds == 0 {
                    return Err("--rounds must be at least 1".into());
                }
            }
            "--max-threads" => cfg.max_threads = Some(it.parsed()?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

/// The process thread count, from the `Threads:` line of
/// `/proc/self/status`. Returns 0 on platforms without procfs (the
/// `--max-threads` check is then skipped rather than failed).
fn thread_count() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let cfg = parse_or_exit(USAGE, parse_args);

    let baseline_threads = thread_count();
    let mut proxy = AppVisorProxy::new(ProxyConfig {
        // Generous RPC deadlines: at 1000 apps a fan-out's shared deadline
        // covers the whole fleet, and the smoke must fail on *thread*
        // exhaustion, not on a slow CI machine.
        deliver_timeout: Duration::from_secs(30),
        rpc_timeout: Duration::from_secs(30),
        heartbeat_timeout: Duration::from_secs(60),
        stub: StubConfig {
            // A quiet heartbeat plane: the smoke measures event servicing,
            // not 1000 stubs' idle chatter.
            heartbeat_period: Duration::from_secs(5),
            report_crashes: true,
        },
        io: cfg.io.mode,
        ..Default::default()
    });

    let launch_start = Instant::now();
    let handles: Vec<AppHandle> = (0..cfg.apps)
        .map(|_| {
            proxy
                .launch_app(Box::new(Hub::new()), TransportKind::Channel)
                .unwrap_or_else(|e| {
                    eprintln!("error: launch failed: {e}");
                    std::process::exit(1);
                })
        })
        .collect();
    let launch_s = launch_start.elapsed().as_secs_f64();
    let launched_threads = thread_count();

    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let fanout_start = Instant::now();
    for _ in 0..cfg.rounds {
        let results = proxy.deliver_fanout(
            &handles,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        for r in results {
            match r.outcome {
                Ok(DeliverOutcome::Commands(_)) => delivered += 1,
                other => {
                    failed += 1;
                    eprintln!("fleet: delivery failed: {other:?}");
                }
            }
        }
    }
    let fanout_s = fanout_start.elapsed().as_secs_f64();
    let events_per_s = delivered as f64 / fanout_s;
    let peak_threads = thread_count().max(launched_threads);

    let reports = proxy.shutdown();

    print_table(
        &format!(
            "fleet: {} apps x {} rounds, {:?} io",
            cfg.apps, cfg.rounds, cfg.io.mode
        ),
        &["metric", "value"],
        &[
            vec!["launch s".into(), format!("{launch_s:.2}")],
            vec!["deliveries ok".into(), delivered.to_string()],
            vec!["deliveries failed".into(), failed.to_string()],
            vec!["events/s".into(), format!("{events_per_s:.0}")],
            vec!["baseline threads".into(), baseline_threads.to_string()],
            vec!["peak threads".into(), peak_threads.to_string()],
            vec!["shutdown reports".into(), reports.len().to_string()],
        ],
    );

    let mut ok = true;
    if failed > 0 {
        eprintln!("fleet: FAIL — {failed} deliveries did not complete");
        ok = false;
    }
    if reports.len() != cfg.apps {
        eprintln!(
            "fleet: FAIL — {} of {} stubs reported at shutdown",
            reports.len(),
            cfg.apps
        );
        ok = false;
    }
    if let Some(max) = cfg.max_threads {
        if peak_threads == 0 {
            eprintln!("fleet: no procfs; skipping the --max-threads check");
        } else if peak_threads > max {
            eprintln!("fleet: FAIL — peak thread count {peak_threads} exceeds --max-threads {max}");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    eprintln!("fleet: ok ({delivered} deliveries, peak {peak_threads} threads)");
}
