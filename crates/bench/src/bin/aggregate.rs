//! `aggregate` — the fleet aggregation daemon: accepts pushes from N
//! `campaign` daemons and serves the merged operator view.
//!
//! ```sh
//! cargo run --release -p legosdn-bench --bin aggregate -- --addr 127.0.0.1:9200
//! # in other shells:
//! cargo run --release -p legosdn-bench --bin campaign -- \
//!     --addr 127.0.0.1:0 --campaign alpha --push-to 127.0.0.1:9200
//! cargo run --release -p legosdn-bench --bin campaign -- \
//!     --addr 127.0.0.1:0 --campaign beta --push-to 127.0.0.1:9200
//! curl http://127.0.0.1:9200/metrics    # every series labelled by campaign
//! curl http://127.0.0.1:9200/incidents  # fleet-wide incident total order
//! curl http://127.0.0.1:9200/healthz    # per-campaign liveness
//! ```
//!
//! The endpoint serves with a small close-grace so a kill/restart of this
//! process can re-bind its port immediately (`TIME_WAIT` stays on the
//! pushing side); exporters keep buffering and retrying in the gap and
//! rewind on the restarted aggregator's low ack, so no campaign data that
//! their journal rings still hold is lost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use legosdn::obs::{
    AggregateConfig, Aggregator, ObsServer, RollupConfig, DEFAULT_JOURNAL_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
};
use legosdn_bench::args::{parse_or_exit, ArgWalker, EndpointArgs};

struct AggregateArgs {
    endpoint: EndpointArgs,
    liveness: Duration,
    journal_capacity: usize,
    trace_capacity: usize,
    rollup_secs: u64,
    rollup_retain: usize,
    max_seconds: u64,
    status_every: Duration,
}

impl Default for AggregateArgs {
    fn default() -> Self {
        let rollup = RollupConfig::default();
        AggregateArgs {
            endpoint: EndpointArgs::on_port(9200),
            liveness: Duration::from_secs(5),
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            rollup_secs: rollup.width.as_secs(),
            rollup_retain: rollup.retain,
            max_seconds: 0,
            status_every: Duration::from_secs(10),
        }
    }
}

const USAGE: &str = "usage: aggregate [--addr HOST:PORT] [--addr-file PATH] \
[--liveness-ms MS] [--journal-capacity N] [--trace-capacity N] \
[--rollup-secs N] [--rollup-retain N] [--max-seconds N]\n\
--addr 127.0.0.1:0 picks an ephemeral port (written to --addr-file for \
scripts). --trace-capacity bounds retained flight-recorder traces per \
campaign; --rollup-secs / --rollup-retain set the time-windowed rollup \
width and retention (GET /rollups). --max-seconds 0 (default) serves \
forever.";

fn parse_args(args: &[String]) -> Result<AggregateArgs, String> {
    let mut cfg = AggregateArgs::default();
    let mut it = ArgWalker::new(args);
    while let Some(flag) = it.next_flag() {
        if cfg.endpoint.try_flag(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--liveness-ms" => cfg.liveness = Duration::from_millis(it.parsed()?),
            "--journal-capacity" => cfg.journal_capacity = it.parsed()?,
            "--trace-capacity" => cfg.trace_capacity = it.parsed()?,
            "--rollup-secs" => cfg.rollup_secs = it.parsed()?,
            "--rollup-retain" => cfg.rollup_retain = it.parsed()?,
            "--max-seconds" => cfg.max_seconds = it.parsed()?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = parse_or_exit(USAGE, parse_args);

    let aggregator = Arc::new(Aggregator::new(AggregateConfig {
        liveness_window: cfg.liveness,
        journal_capacity: cfg.journal_capacity,
        trace_capacity: cfg.trace_capacity,
        rollup: RollupConfig {
            width: Duration::from_secs(cfg.rollup_secs.max(1)),
            retain: cfg.rollup_retain.max(1),
        },
    }));
    let server = ObsServer::builder()
        .addr(cfg.endpoint.addr)
        .close_grace(Duration::from_secs(1))
        .start_with(aggregator.clone(), aggregator.obs())
        .unwrap_or_else(|e| {
            eprintln!(
                "error: cannot bind aggregator on {}: {e}",
                cfg.endpoint.addr
            );
            std::process::exit(1);
        });
    let addr = server.local_addr();
    if let Some(path) = &cfg.endpoint.addr_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("error: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "aggregate: accepting pushes on http://{addr}/push, serving merged \
         /metrics /metrics.json /incidents /traces /rollups /healthz ({})",
        if cfg.max_seconds == 0 {
            "until killed".to_string()
        } else {
            format!("for at most {} s", cfg.max_seconds)
        },
    );

    let begun = Instant::now();
    let mut last_status = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if cfg.max_seconds > 0 && begun.elapsed() >= Duration::from_secs(cfg.max_seconds) {
            break;
        }
        if last_status.elapsed() >= cfg.status_every {
            last_status = Instant::now();
            let rows = aggregator.campaigns();
            let alive = rows.iter().filter(|r| r.alive).count();
            eprintln!(
                "aggregate: {} campaign(s), {alive} alive, {} incident(s) fleet-wide",
                rows.len(),
                aggregator.incidents().len(),
            );
        }
    }

    let joined = server.shutdown();
    eprintln!(
        "aggregate: done after {:.1} s; endpoint shut down ({joined} thread(s) joined)",
        begun.elapsed().as_secs_f64()
    );
}
