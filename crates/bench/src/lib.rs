//! Shared workload builders and reporting helpers for the experiment
//! benches (DESIGN.md §4). Each `benches/eN_*.rs` target regenerates one
//! paper exhibit/claim; this crate keeps their scenarios identical.

pub mod args;
pub mod harness;
pub mod workloads;

/// Print a paper-style results table to stderr (the bench harness owns stdout).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    eprintln!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    eprintln!("{}", fmt_row(&header_cells));
    eprintln!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        eprintln!("{}", fmt_row(r));
    }
    eprintln!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_printer_does_not_panic() {
        super::print_table(
            "smoke",
            &["col a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
