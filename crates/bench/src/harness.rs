//! Minimal offline stand-in for the criterion benchmark API.
//!
//! The build environment has no network access, so the bench targets run
//! on this shim instead: same surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `criterion_group!`), plain
//! `Instant`-based timing underneath. Each run prints a mean/min/max
//! table to stderr and, in `final_summary`, dumps the accumulated
//! results together with the global [`legosdn_obs`] snapshot to
//! `BENCH_<exhibit>.json` so metric trajectories survive across runs.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

#[derive(Clone, Debug)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    pub samples: usize,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

/// Identifier for a parameterized benchmark, shown as `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _c: self,
        }
    }

    /// Print the results table and write `BENCH_<exhibit>.json` (bench
    /// results + the global obs snapshot) into the working directory.
    pub fn final_summary(&self) {
        let results = RESULTS.lock().unwrap();
        if results.is_empty() {
            return;
        }
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    format!("{}/{}", r.group, r.name),
                    r.samples.to_string(),
                    format!("{:.1}", r.mean_ns / 1e3),
                    format!("{:.1}", r.min_ns / 1e3),
                    format!("{:.1}", r.max_ns / 1e3),
                ]
            })
            .collect();
        crate::print_table(
            "bench timings",
            &["benchmark", "samples", "mean us", "min us", "max us"],
            &rows,
        );
        let path = format!("BENCH_{}.json", exhibit_name());
        match std::fs::write(&path, snapshot_json(&results)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Derive the exhibit name from the bench executable (cargo names bench
/// binaries `<target>-<hash>`).
fn exhibit_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

fn snapshot_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"bench\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"samples\": {}, \
             \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}}}{}\n",
            r.group,
            r.name,
            r.samples,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"obs\": ");
    out.push_str(&legosdn_obs::Obs::global().json_snapshot());
    out.push_str("\n}\n");
    out
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        self.record(id.to_string(), b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.record(id.to_string(), b.samples);
        self
    }

    pub fn finish(self) {}

    fn record(&self, name: String, samples: Vec<Duration>) {
        if samples.is_empty() {
            return;
        }
        let ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ns.iter().cloned().fold(0.0f64, f64::max);
        RESULTS.lock().unwrap().push(BenchResult {
            group: self.name.clone(),
            name,
            samples: ns.len(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
    }
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: one warmup iteration, then `sample_size` timed runs.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identity that defeats constant-folding, mirroring criterion's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Group N bench functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

pub use crate::criterion_group;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_records_results() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
        let results = RESULTS.lock().unwrap();
        let ours: Vec<_> = results.iter().filter(|r| r.group == "smoke").collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].samples, 3);
        assert_eq!(ours[1].name, "param/7");
        assert!(ours[0].mean_ns >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("abc", 12).to_string(), "abc/12");
    }
}
