//! Canonical scenarios shared by the experiment benches.

use legosdn::prelude::*;

/// A booted network + LegoSDN runtime pair on a linear topology.
pub fn lego_on_linear(
    switches: usize,
    hosts_per_switch: usize,
    config: LegoSdnConfig,
) -> (Network, LegoSdnRuntime, Topology) {
    let topo = Topology::linear(switches, hosts_per_switch);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(config);
    rt.run_cycle(&mut net);
    (net, rt, topo)
}

/// A booted network + monolithic controller pair on a linear topology.
pub fn mono_on_linear(
    switches: usize,
    hosts_per_switch: usize,
) -> (Network, MonolithicController, Topology) {
    let topo = Topology::linear(switches, hosts_per_switch);
    let mut net = Network::new(&topo);
    let mut ctl = MonolithicController::new();
    ctl.run_cycle(&mut net);
    (net, ctl, topo)
}

/// The standard buggy app: a hub that crashes on packets to `poison`.
pub fn poisoned_hub(poison: MacAddr) -> Box<FaultyApp> {
    Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    ))
}

/// A deterministic round-robin traffic pattern over the topology's hosts.
/// Calls `step(src, dst)` for `n` packets.
pub fn round_robin_traffic(topo: &Topology, n: usize, mut step: impl FnMut(MacAddr, MacAddr)) {
    let hosts = &topo.hosts;
    for i in 0..n {
        let src = hosts[i % hosts.len()].mac;
        let dst = hosts[(i + 1) % hosts.len()].mac;
        step(src, dst);
    }
}

/// Pre-load a learning switch with `n` learned MACs so its snapshots carry
/// realistic state (checkpoint-cost experiments).
pub fn warmed_learning_switch(n: u64) -> LearningSwitch {
    use legosdn::controller::app::Ctx;
    use legosdn::controller::services::{DeviceView, TopologyView};
    let mut app = LearningSwitch::new();
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    for i in 0..n {
        let ev = Event::PacketIn(
            DatapathId(1 + i % 8),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys((i % 16) as u16 + 1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(i + 1), MacAddr::from_index(i + 2)),
            },
        );
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        use legosdn::controller::app::SdnApp;
        app.on_event(&ev, &mut ctx);
    }
    app
}

/// A packet-in event for benching dispatch paths.
pub fn bench_packet_in(i: u64) -> Event {
    Event::PacketIn(
        DatapathId(1),
        PacketIn {
            buffer_id: BufferId::NONE,
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: Packet::tcp(
                MacAddr::from_index(1),
                MacAddr::from_index(2 + i % 64),
                Ipv4Addr::from_index(1),
                Ipv4Addr::from_index(2 + (i % 64) as u32),
                40_000,
                80,
            ),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_boot() {
        let (net, rt, topo) = lego_on_linear(2, 1, LegoSdnConfig::default());
        assert_eq!(net.switches().count(), 2);
        assert_eq!(rt.translator().topology.n_links(), 1);
        assert_eq!(topo.hosts.len(), 2);
        let (_, ctl, _) = mono_on_linear(2, 1);
        assert!(!ctl.is_crashed());
    }

    #[test]
    fn warmed_switch_has_state() {
        use legosdn::controller::app::SdnApp;
        let app = warmed_learning_switch(100);
        assert!(app.snapshot().len() > 500, "snapshot should be sizeable");
    }

    #[test]
    fn traffic_pattern_is_deterministic() {
        let topo = Topology::linear(2, 2);
        let mut a = Vec::new();
        round_robin_traffic(&topo, 5, |s, d| a.push((s, d)));
        let mut b = Vec::new();
        round_robin_traffic(&topo, 5, |s, d| b.push((s, d)));
        assert_eq!(a, b);
    }
}
