//! Canonical scenarios shared by the experiment benches, plus the
//! trace-driven datacenter workload engine (flash crowd, elephant/mice,
//! link-flap storm) used by `e16_table_scale` and the check.sh fat-tree
//! smoke.

use legosdn::netsim::{HostSpec, NetEvent};
use legosdn::prelude::*;
use legosdn_testkit::Rng;

/// A booted network + LegoSDN runtime pair on a linear topology.
pub fn lego_on_linear(
    switches: usize,
    hosts_per_switch: usize,
    config: LegoSdnConfig,
) -> (Network, LegoSdnRuntime, Topology) {
    let topo = Topology::linear(switches, hosts_per_switch);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(config);
    rt.run_cycle(&mut net);
    (net, rt, topo)
}

/// A booted network + monolithic controller pair on a linear topology.
pub fn mono_on_linear(
    switches: usize,
    hosts_per_switch: usize,
) -> (Network, MonolithicController, Topology) {
    let topo = Topology::linear(switches, hosts_per_switch);
    let mut net = Network::new(&topo);
    let mut ctl = MonolithicController::new();
    ctl.run_cycle(&mut net);
    (net, ctl, topo)
}

/// The standard buggy app: a hub that crashes on packets to `poison`.
pub fn poisoned_hub(poison: MacAddr) -> Box<FaultyApp> {
    Box::new(FaultyApp::new(
        Box::new(Hub::new()),
        BugTrigger::OnPacketToMac(poison),
        BugEffect::Crash,
    ))
}

/// A deterministic round-robin traffic pattern over the topology's hosts.
/// Calls `step(src, dst)` for `n` packets.
pub fn round_robin_traffic(topo: &Topology, n: usize, mut step: impl FnMut(MacAddr, MacAddr)) {
    let hosts = &topo.hosts;
    for i in 0..n {
        let src = hosts[i % hosts.len()].mac;
        let dst = hosts[(i + 1) % hosts.len()].mac;
        step(src, dst);
    }
}

/// Pre-load a learning switch with `n` learned MACs so its snapshots carry
/// realistic state (checkpoint-cost experiments).
pub fn warmed_learning_switch(n: u64) -> LearningSwitch {
    use legosdn::controller::app::Ctx;
    use legosdn::controller::services::{DeviceView, TopologyView};
    let mut app = LearningSwitch::new();
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    for i in 0..n {
        let ev = Event::PacketIn(
            DatapathId(1 + i % 8),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys((i % 16) as u16 + 1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(i + 1), MacAddr::from_index(i + 2)),
            },
        );
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        use legosdn::controller::app::SdnApp;
        app.on_event(&ev, &mut ctx);
    }
    app
}

/// A packet-in event for benching dispatch paths.
pub fn bench_packet_in(i: u64) -> Event {
    Event::PacketIn(
        DatapathId(1),
        PacketIn {
            buffer_id: BufferId::NONE,
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: Packet::tcp(
                MacAddr::from_index(1),
                MacAddr::from_index(2 + i % 64),
                Ipv4Addr::from_index(1),
                Ipv4Addr::from_index(2 + (i % 64) as u32),
                40_000,
                80,
            ),
        },
    )
}

/// One event in a trace-driven workload.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A host emits a packet into the dataplane.
    Inject { src: MacAddr, packet: Packet },
    /// A core/agg/edge link changes state.
    LinkState { link: usize, up: bool },
}

/// A seeded, replayable event stream over a topology.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    pub name: &'static str,
    pub events: Vec<TraceEvent>,
}

/// A zipf-ish skewed index in `[0, n)`: rank 0 with probability 1/2, rank 1
/// with 1/4, … (geometric via trailing zeros of a splitmix64 draw). Close
/// enough to datacenter flow popularity for workload shaping, and exactly
/// reproducible from the seed.
pub fn skewed_index(rng: &mut Rng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64().trailing_zeros() as usize).min(n - 1)
}

fn tcp_between(src: &HostSpec, dst: &HostSpec, sport: u16, dport: u16) -> Packet {
    Packet::tcp(src.mac, dst.mac, src.ip, dst.ip, sport, dport)
}

/// Flash crowd: every host hammers a handful of hot destinations (skewed
/// dst rank, uniform src, fresh source ports) — the worst case for exact
/// entry churn on the hot hosts' edge switches.
pub fn flash_crowd(topo: &Topology, seed: u64, n: usize) -> TraceWorkload {
    let mut rng = Rng::seed_from_u64(seed);
    let hosts = &topo.hosts;
    let events = (0..n)
        .map(|_| {
            let src = &hosts[rng.gen_range(0..hosts.len())];
            let dst = &hosts[skewed_index(&mut rng, hosts.len())];
            let sport = rng.gen_range(1024..60_000u16);
            TraceEvent::Inject {
                src: src.mac,
                packet: tcp_between(src, dst, sport, 80),
            }
        })
        .collect();
    TraceWorkload {
        name: "flash_crowd",
        events,
    }
}

/// Elephant/mice mix: a small set of long-lived 5-tuples carries ~70% of
/// packets (repeat exact-match hits), the rest are one-off mice (table
/// misses → packet-ins → new entries).
pub fn elephant_mice(topo: &Topology, seed: u64, n: usize) -> TraceWorkload {
    let mut rng = Rng::seed_from_u64(seed);
    let hosts = &topo.hosts;
    let elephants: Vec<(usize, usize, u16)> = (0..8)
        .map(|_| {
            (
                rng.gen_range(0..hosts.len()),
                rng.gen_range(0..hosts.len()),
                rng.gen_range(1024..60_000u16),
            )
        })
        .collect();
    let events = (0..n)
        .map(|_| {
            if rng.gen_bool(0.7) {
                let &(s, d, sport) = rng.pick(&elephants);
                TraceEvent::Inject {
                    src: hosts[s].mac,
                    packet: tcp_between(&hosts[s], &hosts[d], sport, 443),
                }
            } else {
                let src = &hosts[rng.gen_range(0..hosts.len())];
                let dst = &hosts[rng.gen_range(0..hosts.len())];
                let sport = rng.gen_range(1024..60_000u16);
                let dport = *rng.pick(&[80, 443, 8080]);
                TraceEvent::Inject {
                    src: src.mac,
                    packet: tcp_between(src, dst, sport, dport),
                }
            }
        })
        .collect();
    TraceWorkload {
        name: "elephant_mice",
        events,
    }
}

/// Link-flap storm: steady skewed traffic with a skewed-popularity link
/// bouncing down/up every few events — port-status churn layered over the
/// packet stream.
pub fn link_flap_storm(topo: &Topology, seed: u64, n: usize) -> TraceWorkload {
    let mut rng = Rng::seed_from_u64(seed);
    let hosts = &topo.hosts;
    let n_links = topo.links.len();
    let events = (0..n)
        .map(|i| {
            if n_links > 0 && i % 16 == 8 {
                let link = skewed_index(&mut rng, n_links);
                TraceEvent::LinkState { link, up: false }
            } else if n_links > 0 && i % 16 == 12 {
                let link = skewed_index(&mut rng, n_links);
                TraceEvent::LinkState { link, up: true }
            } else {
                let src = &hosts[rng.gen_range(0..hosts.len())];
                let dst = &hosts[skewed_index(&mut rng, hosts.len())];
                let sport = rng.gen_range(1024..60_000u16);
                TraceEvent::Inject {
                    src: src.mac,
                    packet: tcp_between(src, dst, sport, 80),
                }
            }
        })
        .collect();
    TraceWorkload {
        name: "link_flap_storm",
        events,
    }
}

/// Counters from one workload replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    pub events: u64,
    pub packet_ins: u64,
    pub flow_mods: u64,
    pub delivered: u64,
    pub dropped: u64,
}

/// Replay a workload against a network with a minimal reactive controller:
/// every packet-in is answered by installing an exact-match rule (idle
/// timeout `idle_timeout` seconds) echoing traffic out its ingress port,
/// plus a packet-out that releases the punted packet the same way. The
/// clock ticks one second every `tick_every` events so idle expiry and the
/// flow tables' deadline watermark get exercised.
pub fn replay_reactive(
    net: &mut Network,
    workload: &TraceWorkload,
    idle_timeout: u16,
    tick_every: usize,
) -> ReplayStats {
    let mut stats = ReplayStats::default();
    net.poll_events(); // drain the boot-time SwitchConnected burst
    for (i, ev) in workload.events.iter().enumerate() {
        stats.events += 1;
        match ev {
            TraceEvent::Inject { src, packet } => {
                if let Ok(trace) = net.inject(*src, packet.clone()) {
                    stats.packet_ins += trace.packet_ins as u64;
                }
            }
            TraceEvent::LinkState { link, up } => {
                let _ = net.set_link_up(*link, *up);
            }
        }
        for event in net.poll_events() {
            if let NetEvent::FromSwitch(dpid, Message::PacketIn(pi)) = event {
                let fm = FlowMod::add(Match::from_packet(&pi.packet, pi.in_port))
                    .idle_timeout(idle_timeout)
                    .action(Action::Output(pi.in_port));
                if net.apply(dpid, &Message::FlowMod(fm)).is_ok() {
                    stats.flow_mods += 1;
                }
                let po = PacketOut {
                    buffer_id: BufferId::NONE,
                    in_port: PortNo::None,
                    actions: vec![Action::Output(pi.in_port)],
                    packet: Some(pi.packet.clone()),
                };
                let _ = net.apply(dpid, &Message::PacketOut(po));
            }
        }
        if tick_every > 0 && (i + 1) % tick_every == 0 {
            net.tick(SimDuration::from_secs(1));
        }
    }
    let (delivered, dropped) = net.delivery_counters();
    stats.delivered = delivered;
    stats.dropped = dropped;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_boot() {
        let (net, rt, topo) = lego_on_linear(2, 1, LegoSdnConfig::default());
        assert_eq!(net.switches().count(), 2);
        assert_eq!(rt.translator().topology.n_links(), 1);
        assert_eq!(topo.hosts.len(), 2);
        let (_, ctl, _) = mono_on_linear(2, 1);
        assert!(!ctl.is_crashed());
    }

    #[test]
    fn warmed_switch_has_state() {
        use legosdn::controller::app::SdnApp;
        let app = warmed_learning_switch(100);
        assert!(app.snapshot().len() > 500, "snapshot should be sizeable");
    }

    #[test]
    fn traffic_pattern_is_deterministic() {
        let topo = Topology::linear(2, 2);
        let mut a = Vec::new();
        round_robin_traffic(&topo, 5, |s, d| a.push((s, d)));
        let mut b = Vec::new();
        round_robin_traffic(&topo, 5, |s, d| b.push((s, d)));
        assert_eq!(a, b);
    }

    #[test]
    fn trace_workloads_are_seed_deterministic() {
        let topo = Topology::fat_tree(4);
        for gen in [flash_crowd, elephant_mice, link_flap_storm] {
            let a = gen(&topo, 7, 200);
            let b = gen(&topo, 7, 200);
            assert_eq!(a.events, b.events, "{}", a.name);
            let c = gen(&topo, 8, 200);
            assert_ne!(a.events, c.events, "{} ignores its seed", a.name);
        }
    }

    #[test]
    fn skewed_index_prefers_low_ranks() {
        let mut rng = Rng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..1000 {
            counts[skewed_index(&mut rng, 4)] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[3], "{counts:?}");
    }

    #[test]
    fn replay_reactive_installs_flows_and_delivers() {
        let topo = Topology::fat_tree(4);
        let mut net = Network::new(&topo);
        let w = elephant_mice(&topo, 3, 400);
        let stats = replay_reactive(&mut net, &w, 10, 50);
        assert_eq!(stats.events, 400);
        assert!(stats.packet_ins > 0, "{stats:?}");
        assert!(stats.flow_mods > 0, "{stats:?}");
        assert!(stats.delivered > 0, "{stats:?}");
        assert!(
            net.switches().any(|s| !s.table().is_empty()),
            "reactive rules should be installed"
        );
        // Same seed + fresh network ⇒ identical replay.
        let mut net2 = Network::new(&topo);
        assert_eq!(replay_reactive(&mut net2, &w, 10, 50), stats);
    }

    #[test]
    fn link_flap_storm_flaps_links() {
        let topo = Topology::fat_tree(4);
        let w = link_flap_storm(&topo, 5, 200);
        assert!(w
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::LinkState { up: false, .. })));
        let mut net = Network::new(&topo);
        let stats = replay_reactive(&mut net, &w, 10, 50);
        assert_eq!(stats.events, 200);
    }
}
