//! E17 — lifting the sharded-dispatch ceilings (PR 10 tentpole).
//!
//! PR 8's E15 exhibit was assignment-bound: pure-hash placement dealt the
//! 16-app roster [5,3,4,4], so 4 workers could never beat 16/5 = 3.2x.
//! This exhibit measures the three ceiling-lifters together:
//!
//! 1. The E15 workload re-run (same roster, waits, and burst): load-aware
//!    placement now deals [4,4,4,4] and stub commits declare at collect
//!    time, so the 4-worker speedup should clear the old 3.2x bound
//!    (target >= 3.6x).
//! 2. A skewed-cost roster (per-app event waits drawn from a heavy-tailed
//!    weight table) on a many-small-cycle trace: count-balanced placement
//!    is load-imbalanced here ([15,13,11,9] in weight units), so the
//!    EWMA-fed first-fit-decreasing rebalance at cycle boundaries is what
//!    restores the 4.0x bound.
//! 3. A cross-cycle burst train in the E12 mold: a hub's flood replies
//!    arrive as fresh packet-ins at downstream switches, so each injected
//!    burst drains as one wave per cycle at `lookahead 1` — and each
//!    wave's service cost is owned by a different app. At `lookahead 2`
//!    the send cursor runs ahead into the waves this cycle's own commits
//!    enqueue, so consecutive waves' disjoint owners overlap instead of
//!    idling a cycle apart (target win > 1.2x).
//!
//! The E12 guard from E15 is re-run verbatim and, when `BENCH_8.json` is
//! present, its depth-1/depth-8 numbers must not land more than 3% above
//! the recorded baseline — the sharded fast path must not tax the
//! single-worker window. Results land in `BENCH_10.json`. Costs are fixed
//! service waits rather than CPU burn, for the same reason as E11-E15:
//! waits overlap regardless of host core count, so the bench measures the
//! dispatch design, not the machine.

use legosdn::controller::app::RestoreError;
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

/// A PacketIn-subscribed local app with fixed event/snapshot service
/// waits that installs one uniquely-tagged flow on ITS OWN switch per
/// event — the E15 `ShardWorker`, with the event wait now a per-app
/// parameter so a roster can be cost-skewed.
struct ShardWorker {
    name: String,
    dpid: DatapathId,
    tag: u64,
    count: u64,
    event_wait: Duration,
    snapshot_wait: Duration,
}

impl ShardWorker {
    fn new(id: usize, switches: usize, event_wait: Duration, snapshot_wait: Duration) -> Self {
        ShardWorker {
            name: format!("shard-worker-{id}"),
            dpid: DatapathId((id % switches) as u64 + 1),
            tag: id as u64,
            count: 0,
            event_wait,
            snapshot_wait,
        }
    }
}

impl SdnApp for ShardWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        std::thread::sleep(self.event_wait);
        if let Event::PacketIn(_, pi) = event {
            let mut mat = Match::from_packet(&pi.packet, pi.in_port);
            // Unique per (app, delivery): no install ever shadows another.
            mat.eth_src = Some(MacAddr::from_index(
                50_000 + self.tag * 100_000 + self.count,
            ));
            self.count += 1;
            ctx.send(self.dpid, Message::FlowMod(FlowMod::add(mat)));
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        std::thread::sleep(self.snapshot_wait);
        self.count.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(arr);
        Ok(())
    }
}

const N_APPS: usize = 16;
const SWITCHES: usize = 16; // one contention-free switch per app

/// Per-app event-wait weights for the skewed roster, indexed by app id.
/// Sum 48, laid out so the count-balanced attach round-robin stacks the
/// four heaviest apps (ids 0, 4, 8, 12) on worker 0 — weight totals
/// [24, 12, 7, 5] — while first-fit-decreasing over the measured costs
/// deals near-[12, 12, 12, 12]: the gap the rebalancer must close, wide
/// enough that the >10% migration gate clears even though every
/// delivery also carries a fixed (weight-independent) overhead.
const WEIGHTS: [u64; N_APPS] = [8, 4, 2, 1, 7, 3, 2, 1, 5, 3, 2, 1, 4, 2, 1, 2];
const WEIGHT_UNIT: Duration = Duration::from_micros(100);

// The E15 exhibit's constants, reproduced for the re-run.
const E15_BURST: usize = 12;
const E15_EVENT_WAIT: Duration = Duration::from_micros(400);
const E15_SNAPSHOT_WAIT: Duration = Duration::from_micros(300);

fn make_runtime(
    workers: usize,
    obs: Obs,
    waits: impl Fn(usize) -> Duration,
    snapshot_wait: Duration,
) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(SWITCHES, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(
        LegoSdnConfig {
            isolation: IsolationMode::Local,
            dispatch: DispatchConfig::pipelined()
                .window(E15_BURST)
                .workers(workers),
            obs: ObsConfig::instance(obs).trace_sample(0),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 1, // pre-event snapshot on every delivery
                    history: 2,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            // No invariant checker: commit-time effects equal the declared
            // write set, so the disjoint fastpath stays available.
            checker: None,
            ..LegoSdnConfig::default()
        }
        .build()
        .expect("valid bench config"),
    );
    for i in 0..N_APPS {
        rt.attach(Box::new(ShardWorker::new(
            i,
            SWITCHES,
            waits(i),
            snapshot_wait,
        )))
        .unwrap();
    }
    (rt, net, topo)
}

fn inject_burst(net: &mut Network, topo: &Topology, burst: usize) {
    let a = topo.hosts[0].mac;
    for i in 0..burst as u64 {
        let dst = MacAddr::from_index(900 + i);
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
    }
}

/// Mean microseconds per burst cycle over `n` cycles, after `warm`
/// warmup cycles (the skewed run needs a few for the cost EWMA to
/// converge and the boundary rebalance to fire).
fn time_bursts(
    rt: &mut LegoSdnRuntime,
    net: &mut Network,
    topo: &Topology,
    burst: usize,
    warm: u32,
    n: u32,
) -> f64 {
    for _ in 0..warm {
        inject_burst(net, topo, burst);
        rt.run_cycle(net);
    }
    let start = Instant::now();
    for _ in 0..n {
        inject_burst(net, topo, burst);
        rt.run_cycle(net);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(n)
}

/// The E15 workload at 1/2/4 workers. Returns (us/cycle per worker
/// count, 4-worker speedup).
fn e15_rerun() -> (Vec<(usize, f64)>, f64) {
    let n = 20u32;
    let mut us = Vec::new();
    for &workers in &[1usize, 2, 4] {
        let (mut rt, mut net, topo) =
            make_runtime(workers, Obs::new(), |_| E15_EVENT_WAIT, E15_SNAPSHOT_WAIT);
        let cycle_us = time_bursts(&mut rt, &mut net, &topo, E15_BURST, 3, n);
        rt.shutdown();
        us.push((workers, cycle_us));
    }
    let speedup = us[0].1 / us[2].1;
    (us, speedup)
}

/// The skewed roster on a many-small-cycle trace (4-event bursts).
/// Returns (workers1 us/cycle, workers4 us/cycle, speedup, rebalances).
fn skewed_run() -> (f64, f64, f64, u64) {
    const BURST: usize = 4;
    let n = 24u32;
    let mut us = Vec::new();
    let mut rebalances = 0;
    for &workers in &[1usize, 4] {
        let obs = Obs::new();
        let (mut rt, mut net, topo) = make_runtime(
            workers,
            obs.clone(),
            |i| WEIGHT_UNIT * u32::try_from(WEIGHTS[i]).unwrap(),
            Duration::from_micros(100),
        );
        // 6 warmup cycles: enough for the (3x + new)/4 EWMA to rank the
        // apps correctly and for the boundary rebalance to migrate them.
        let cycle_us = time_bursts(&mut rt, &mut net, &topo, BURST, 6, n);
        rt.shutdown();
        if workers == 4 {
            rebalances = obs.counter("core", "rebalance_count", "").get();
        }
        us.push(cycle_us);
    }
    (us[0], us[1], us[0] / us[1], rebalances)
}

/// The cross-cycle burst train: a hub whose floods hop a 6-switch chain,
/// escorted by one costly worker per switch, so each injected burst
/// arrives as six one-hop waves of packet-ins — each wave owned by a
/// DIFFERENT app, and each wave only existing once the previous wave's
/// flood commits land.
///
/// This is the shape cross-cycle windowing was built for: at
/// `lookahead 1` the cycle ends after wave k even though wave k+1 is
/// already sitting in the network queue, so wave k+1's owner idles a
/// full cycle while wave k's owner works. The hub is attached first
/// (global position 0), so its flood commit declares and lands as soon
/// as its own collect is in — at `lookahead 2` the next wave's events
/// are sent mid-cycle and the two owners' service waits overlap, because
/// the waves' app sets are disjoint.
mod train {
    use super::*;

    struct HopWorker {
        name: String,
        dpid: DatapathId,
        acc: u64,
    }

    impl SdnApp for HopWorker {
        fn name(&self) -> &str {
            &self.name
        }

        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn]
        }

        fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
            // Per-switch service cost: only this worker's own switch
            // makes it pay the external lookup, so each hop wave has a
            // single owner and waves have disjoint busy sets.
            let Event::PacketIn(dpid, _) = event else {
                return;
            };
            if *dpid != self.dpid {
                return;
            }
            std::thread::sleep(OWNED_WAIT);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
            for i in 0..256u32 {
                h ^= u64::from(i);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            self.acc = h;
        }

        fn snapshot(&self) -> Vec<u8> {
            self.acc.to_le_bytes().to_vec()
        }

        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| RestoreError("bad snapshot".into()))?;
            self.acc = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    const HOPS: usize = 6; // switches in the chain = waves per train
    const BURST: usize = 2; // packets injected per train
    const OWNED_WAIT: Duration = Duration::from_micros(1500);

    fn runtime(lookahead: usize) -> (LegoSdnRuntime, Network, Topology) {
        let topo = Topology::linear(HOPS, 1);
        let net = Network::new(&topo);
        // Two worker shards: only the sharded scheduler extends the
        // window concurrently with the drain (the single-worker path
        // alternates drain and extension, so waves would serialize
        // there no matter the lookahead).
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined()
                .window(8)
                .workers(2)
                .lookahead(lookahead),
            obs: ObsConfig::instance(Obs::new()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 1,
                    history: 2,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        // The hub's flood replies are what extend the window: each wave's
        // packet-outs surface as the next switch's packet-ins mid-cycle.
        // Attached first, the hub holds global position 0, so its commits
        // never wait on the hop workers' collects.
        rt.attach(Box::new(Hub::new())).unwrap();
        for i in 0..HOPS {
            rt.attach(Box::new(HopWorker {
                name: format!("hop-worker-{i}"),
                dpid: DatapathId(i as u64 + 1),
                acc: 0,
            }))
            .unwrap();
        }
        (rt, net, topo)
    }

    fn inject(net: &mut Network, topo: &Topology, round: u64) {
        let a = topo.hosts[0].mac;
        for i in 0..BURST as u64 {
            // Fresh unknown destinations every round, so the hub floods
            // every hop of every train.
            let dst = MacAddr::from_index(3_000 + round * 16 + i);
            net.inject(a, Packet::ethernet(a, dst)).unwrap();
        }
    }

    /// Mean microseconds per train at the given lookahead. Every train
    /// gets `HOPS` run_cycle calls — enough to drain it at lookahead 1;
    /// at lookahead 2 the later calls find the queue already empty and
    /// cost next to nothing, which is exactly the win being measured.
    pub fn time(lookahead: usize, n: u32) -> f64 {
        let (mut rt, mut net, topo) = runtime(lookahead);
        rt.run_cycle(&mut net); // handshake + discovery
        for round in 0..3 {
            inject(&mut net, &topo, round);
            for _ in 0..HOPS {
                rt.run_cycle(&mut net);
            }
        }
        let start = Instant::now();
        for round in 0..u64::from(n) {
            inject(&mut net, &topo, 100 + round);
            for _ in 0..HOPS {
                rt.run_cycle(&mut net);
            }
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(n);
        rt.shutdown();
        us
    }
}

/// The E12 workload (4 isolated stub apps, 8-event bursts, interval-1
/// checkpoints, 300/450 us waits) at one worker: the guard from E15,
/// re-run verbatim so the numbers are comparable to `BENCH_8.json`.
mod e12_guard {
    use super::*;

    struct PacketWorker {
        name: String,
        acc: u64,
    }

    impl SdnApp for PacketWorker {
        fn name(&self) -> &str {
            &self.name
        }

        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn]
        }

        fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
            std::thread::sleep(Duration::from_micros(300));
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
            for i in 0..256u32 {
                h ^= u64::from(i);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            self.acc = h;
        }

        fn snapshot(&self) -> Vec<u8> {
            std::thread::sleep(Duration::from_micros(450));
            self.acc.to_le_bytes().to_vec()
        }

        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| RestoreError("bad snapshot".into()))?;
            self.acc = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn runtime(depth: usize) -> (LegoSdnRuntime, Network, Topology) {
        let topo = Topology::linear(2, 1);
        let net = Network::new(&topo);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined().window(depth).workers(1),
            obs: ObsConfig::instance(Obs::new()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 1,
                    history: 2,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        for i in 0..4 {
            rt.attach(Box::new(PacketWorker {
                name: format!("packet-worker-{i}"),
                acc: 0,
            }))
            .unwrap();
        }
        (rt, net, topo)
    }

    fn inject(net: &mut Network, topo: &Topology) {
        let a = topo.hosts[0].mac;
        for i in 0..8u64 {
            net.inject(a, Packet::ethernet(a, MacAddr::from_index(40 + i)))
                .unwrap();
        }
    }

    fn time(depth: usize, n: u32) -> f64 {
        let (mut rt, mut net, topo) = runtime(depth);
        for _ in 0..3 {
            inject(&mut net, &topo);
            rt.run_cycle(&mut net);
        }
        let start = Instant::now();
        for _ in 0..n {
            inject(&mut net, &topo);
            rt.run_cycle(&mut net);
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(n);
        rt.shutdown();
        us
    }

    /// Best-of-three depth-1 and depth-8 runs. The workload is
    /// sleep-bound, so timer slack only ever ADDS time — the minimum is
    /// the stable estimate of the design cost, which is what the
    /// recorded baseline (taken on an idle machine) captured.
    pub fn depth_ratio() -> (f64, f64, f64) {
        let n = 40u32;
        let d1 = (0..3).map(|_| time(1, n)).fold(f64::INFINITY, f64::min);
        let d8 = (0..3).map(|_| time(8, n)).fold(f64::INFINITY, f64::min);
        (d1, d8, d1 / d8)
    }
}

/// Pull `"key": 123.4` out of a recorded exhibit file without a JSON
/// dependency — the bench files are written by us, flat, and trusted.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The recorded `BENCH_8.json`, from the working directory or the repo
/// root (benches run from either).
fn baseline() -> Option<String> {
    ["BENCH_8.json", "../../BENCH_8.json"]
        .iter()
        .find_map(|p| std::fs::read_to_string(p).ok())
}

/// Assert one re-run number lands within 3% of its recorded baseline.
/// The check is one-sided: the workload is sleep-bound, so a re-run
/// below the recording just means less timer slack than the baseline
/// session — only time ADDED over the recording can be a regression.
/// Returns false (after reporting) on a breach.
fn within_guard(name: &str, rerun: f64, recorded: f64) -> bool {
    let drift = (rerun - recorded) / recorded * 100.0;
    let ok = drift <= 3.0;
    eprintln!(
        "guard {name}: recorded {recorded:.1}, re-run {rerun:.1} ({drift:+.1}%) {}",
        if ok { "ok" } else { "BREACH" }
    );
    ok
}

fn summary() {
    // 1. The E15 workload, now load-balanced and declare-ahead.
    let (e15_us, speedup4) = e15_rerun();
    let rows: Vec<Vec<String>> = e15_us
        .iter()
        .map(|&(workers, us)| {
            vec![
                workers.to_string(),
                format!("{us:.1}"),
                format!("{:.2}", e15_us[0].1 / us),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E17: the E15 workload ({N_APPS} local apps x {E15_BURST}-event bursts) \
             under load-aware placement + declare-ahead"
        ),
        &["workers", "mean us/cycle", "speedup"],
        &rows,
    );

    // 2. The skewed roster: rebalance has to earn the balance hash can't.
    let (skew1, skew4, skew_speedup, rebalances) = skewed_run();
    print_table(
        "E17: skewed-cost roster (weights 8..1), 4-event cycles",
        &["workers", "mean us/cycle", "speedup"],
        &[
            vec!["1".into(), format!("{skew1:.1}"), "1.00".into()],
            vec![
                "4".into(),
                format!("{skew4:.1}"),
                format!("{skew_speedup:.2}"),
            ],
        ],
    );
    eprintln!("skewed run: {rebalances} cycle-boundary rebalance(s)");

    // 3. The cross-cycle burst train.
    let n = 14u32;
    let l1 = train::time(1, n);
    let l2 = train::time(2, n);
    let win = l1 / l2;
    print_table(
        "E17: 6-hop flood train, one channel-isolated owner per hop, window 8",
        &["lookahead", "mean us/train", "win"],
        &[
            vec!["1".into(), format!("{l1:.1}"), "1.00".into()],
            vec!["2".into(), format!("{l2:.1}"), format!("{win:.2}")],
        ],
    );

    // 4. The E12 guard, compared against the recorded exhibit.
    let (e12_d1, e12_d8, e12_ratio) = e12_guard::depth_ratio();
    print_table(
        "E17 regression guard: E12 workload at one worker",
        &["window depth", "mean us/cycle", "speedup"],
        &[
            vec!["1".into(), format!("{e12_d1:.1}"), "1.00".into()],
            vec![
                "8".into(),
                format!("{e12_d8:.1}"),
                format!("{e12_ratio:.2}"),
            ],
        ],
    );
    let guard_ok = match baseline() {
        Some(text) => {
            let mut ok = true;
            for (key, rerun) in [
                ("e12_depth1_us_per_cycle", e12_d1),
                ("e12_depth8_us_per_cycle", e12_d8),
            ] {
                match json_f64(&text, key) {
                    Some(recorded) => ok &= within_guard(key, rerun, recorded),
                    None => eprintln!("guard: BENCH_8.json has no {key}; skipping"),
                }
            }
            ok
        }
        None => {
            eprintln!("guard: BENCH_8.json not found; skipping the +/-3% comparison");
            true
        }
    };

    if speedup4 < 3.6 {
        eprintln!("WARNING: 4-worker speedup {speedup4:.2}x is below the 3.6x target");
    }
    if win < 1.2 {
        eprintln!("WARNING: cross-cycle win {win:.2}x is below the 1.2x target");
    }

    let json = format!(
        "{{\n  \"exhibit\": \"dispatch_ceiling\",\n  \"apps\": {N_APPS},\n  \
         \"burst\": {E15_BURST},\n  \"switches\": {SWITCHES},\n  \
         \"isolation\": \"local\",\n  \"checkpoint_interval\": 1,\n  \
         \"workers1_us_per_cycle\": {:.1},\n  \
         \"workers2_us_per_cycle\": {:.1},\n  \
         \"workers4_us_per_cycle\": {:.1},\n  \
         \"speedup_4_workers\": {speedup4:.2},\n  \
         \"skewed_workers1_us_per_cycle\": {skew1:.1},\n  \
         \"skewed_workers4_us_per_cycle\": {skew4:.1},\n  \
         \"skewed_speedup_4_workers\": {skew_speedup:.2},\n  \
         \"skewed_rebalances\": {rebalances},\n  \
         \"lookahead1_us_per_train\": {l1:.1},\n  \
         \"lookahead2_us_per_train\": {l2:.1},\n  \
         \"cross_cycle_win\": {win:.2},\n  \
         \"e12_depth1_us_per_cycle\": {e12_d1:.1},\n  \
         \"e12_depth8_us_per_cycle\": {e12_d8:.1},\n  \
         \"e12_speedup_workers1\": {e12_ratio:.2}\n}}\n",
        e15_us[0].1, e15_us[1].1, e15_us[2].1,
    );
    match std::fs::write("BENCH_10.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_10.json (4-worker speedup {speedup4:.2}x, skewed \
             {skew_speedup:.2}x, cross-cycle win {win:.2}x)"
        ),
        Err(e) => eprintln!("could not write BENCH_10.json: {e}"),
    }
    assert!(
        guard_ok,
        "E12 guard re-run drifted more than 3% from BENCH_8.json"
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_dispatch_ceiling");
    g.sample_size(5);
    g.bench_function("train_lookahead2", |b| b.iter(|| train::time(2, 1)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
