//! E6 — Table 2 / §2.1: the fault-injection campaign.
//!
//! The paper's FlowScale audit found 16% of reported bugs catastrophic.
//! The campaign instantiates the app-survey suite with seeded random bug
//! assignments at that catastrophic rate (plus byzantine and benign bugs)
//! and measures survival: fraction of runs where the control plane is
//! still processing events at the end, monolithic vs LegoSDN.

use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::{print_table, workloads};
use legosdn_testkit::Rng;

/// One sampled bug assignment for one app.
fn sample_bug(rng: &mut Rng, poison: MacAddr) -> (BugTrigger, BugEffect) {
    // 16% catastrophic crash (the FlowScale number), 8% byzantine, the rest
    // benign (never fires).
    let roll: f64 = rng.gen_f64();
    if roll < 0.16 {
        (BugTrigger::OnPacketToMac(poison), BugEffect::Crash)
    } else if roll < 0.24 {
        (BugTrigger::OnPacketToMac(poison), BugEffect::Blackhole)
    } else {
        (BugTrigger::Never, BugEffect::Crash)
    }
}

/// The app-survey suite (Table 2), each possibly wrapped with a bug.
fn suite(rng: &mut Rng, poison: MacAddr) -> Vec<Box<dyn SdnApp>> {
    let bases: Vec<Box<dyn SdnApp>> = vec![
        Box::new(LearningSwitch::new()),
        Box::new(Hub::new()),
        Box::new(ShortestPathRouter::new()),
        Box::new(Firewall::new(vec![AclRule::deny_port(23)])),
        Box::new(StatsMonitor::new()),
    ];
    bases
        .into_iter()
        .map(|app| {
            let (trigger, effect) = sample_bug(rng, poison);
            Box::new(FaultyApp::new(app, trigger, effect)) as Box<dyn SdnApp>
        })
        .collect()
}

struct CampaignResult {
    runs: usize,
    survived: usize,
    crashes_seen: u64,
    byzantine_blocked: u64,
}

fn campaign_monolithic(runs: usize) -> CampaignResult {
    let mut result = CampaignResult {
        runs,
        survived: 0,
        crashes_seen: 0,
        byzantine_blocked: 0,
    };
    for seed in 0..runs as u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let topo = Topology::linear(3, 1);
        let mut net = Network::new(&topo);
        let poison = topo.hosts[2].mac;
        let mut ctl = MonolithicController::new();
        for app in suite(&mut rng, poison) {
            ctl.attach(app);
        }
        ctl.run_cycle(&mut net);
        workloads::round_robin_traffic(&topo, 15, |src, _| {
            let _ = net.inject(src, Packet::ethernet(src, poison));
            ctl.run_cycle(&mut net);
        });
        result.crashes_seen += ctl.stats().crashes;
        if !ctl.is_crashed() {
            result.survived += 1;
        }
    }
    result
}

fn campaign_legosdn(runs: usize) -> CampaignResult {
    let mut result = CampaignResult {
        runs,
        survived: 0,
        crashes_seen: 0,
        byzantine_blocked: 0,
    };
    for seed in 0..runs as u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let topo = Topology::linear(3, 1);
        let mut net = Network::new(&topo);
        let poison = topo.hosts[2].mac;
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
        for app in suite(&mut rng, poison) {
            rt.attach(app).unwrap();
        }
        rt.run_cycle(&mut net);
        workloads::round_robin_traffic(&topo, 15, |src, _| {
            let _ = net.inject(src, Packet::ethernet(src, poison));
            rt.run_cycle(&mut net);
        });
        result.crashes_seen += rt.stats().failstop_recoveries;
        result.byzantine_blocked += rt.stats().byzantine_blocked;
        if !rt.is_crashed() && rt.stats().apps_dead == 0 {
            result.survived += 1;
        }
    }
    result
}

fn summary() {
    let runs = 50;
    let mono = campaign_monolithic(runs);
    let lego = campaign_legosdn(runs);
    print_table(
        "E6: fault campaign (16% crash / 8% byzantine per app, 5 apps, 50 seeds)",
        &[
            "architecture",
            "runs",
            "survived",
            "survival %",
            "crashes",
            "byzantine blocked",
        ],
        &[
            vec![
                "monolithic".into(),
                mono.runs.to_string(),
                mono.survived.to_string(),
                format!("{:.0}%", 100.0 * mono.survived as f64 / mono.runs as f64),
                mono.crashes_seen.to_string(),
                "n/a".into(),
            ],
            vec![
                "legosdn".into(),
                lego.runs.to_string(),
                lego.survived.to_string(),
                format!("{:.0}%", 100.0 * lego.survived as f64 / lego.runs as f64),
                lego.crashes_seen.to_string(),
                lego.byzantine_blocked.to_string(),
            ],
        ],
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_fault_campaign");
    g.sample_size(10);
    g.bench_function("monolithic_10_seeds", |b| {
        b.iter(|| campaign_monolithic(10))
    });
    g.bench_function("legosdn_10_seeds", |b| b.iter(|| campaign_legosdn(10)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the summary tables stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
