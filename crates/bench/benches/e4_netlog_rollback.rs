//! E4 — §3.2: NetLog rollback latency and fidelity.
//!
//! Rollback applies one inverse per logged operation, so abort latency is
//! linear in transaction size; the sweep covers transaction sizes and
//! switch fan-out, and the table verifies state equality after rollback
//! (the correctness half of the claim).

use legosdn::netlog::{NetLog, TxMode};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, BenchmarkId, Criterion};
use legosdn_bench::print_table;
use std::time::Instant;

fn add_flow(i: u64, port: u16) -> Message {
    Message::FlowMod(
        FlowMod::add(Match::eth_dst(MacAddr::from_index(1000 + i)))
            .action(Action::Output(PortNo::Phys(port))),
    )
}

/// Build a tx of `m` adds spread over `s` switches, then abort. Returns
/// (abort us, undo messages, residual flows).
fn rollback_run(m: u64, s: usize) -> (f64, usize, usize) {
    let topo = Topology::linear(s, 1);
    let mut net = Network::new(&topo);
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    for i in 0..m {
        let dpid = DatapathId(1 + (i % s as u64));
        nl.execute(&mut tx, &mut net, dpid, &add_flow(i, 1))
            .unwrap();
    }
    let start = Instant::now();
    let report = nl.abort(tx, &mut net).unwrap();
    let us = start.elapsed().as_secs_f64() * 1e6;
    let residual = net.switches().map(|sw| sw.table().len()).sum();
    (us, report.undo_messages, residual)
}

/// Delete-heavy tx: delete `m` pre-installed flows then abort (restores
/// them all with remaining timeouts). Returns (abort us, restored flows).
fn delete_rollback_run(m: u64) -> (f64, usize) {
    let topo = Topology::linear(1, 1);
    let mut net = Network::new(&topo);
    for i in 0..m {
        net.apply(DatapathId(1), &add_flow(i, 1)).unwrap();
    }
    let mut nl = NetLog::new(TxMode::Immediate);
    let mut tx = nl.begin();
    nl.execute(
        &mut tx,
        &mut net,
        DatapathId(1),
        &Message::FlowMod(FlowMod::delete(Match::any())),
    )
    .unwrap();
    assert_eq!(net.switch(DatapathId(1)).unwrap().table().len(), 0);
    let start = Instant::now();
    nl.abort(tx, &mut net).unwrap();
    let us = start.elapsed().as_secs_f64() * 1e6;
    (us, net.switch(DatapathId(1)).unwrap().table().len())
}

fn summary() {
    let mut rows = Vec::new();
    for m in [1u64, 4, 16, 64, 256] {
        let (us, undos, residual) = rollback_run(m, 4);
        rows.push(vec![
            m.to_string(),
            "4".into(),
            format!("{us:.1}"),
            undos.to_string(),
            residual.to_string(),
        ]);
    }
    for s in [1usize, 8, 16] {
        let (us, undos, residual) = rollback_run(64, s);
        rows.push(vec![
            "64".into(),
            s.to_string(),
            format!("{us:.1}"),
            undos.to_string(),
            residual.to_string(),
        ]);
    }
    print_table(
        "E4: rollback latency vs transaction size / switch fan-out",
        &[
            "tx size",
            "switches",
            "abort us",
            "undo msgs",
            "residual flows",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for m in [1u64, 16, 128] {
        let (us, restored) = delete_rollback_run(m);
        rows.push(vec![
            m.to_string(),
            format!("{us:.1}"),
            restored.to_string(),
        ]);
    }
    print_table(
        "E4b: rolling back a wildcard delete restores every entry",
        &["flows deleted", "abort us", "flows restored"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_netlog_rollback");
    for m in [4u64, 64, 256] {
        g.bench_with_input(BenchmarkId::new("abort_adds", m), &m, |b, &m| {
            b.iter(|| rollback_run(m, 4));
        });
    }
    g.bench_function("abort_wildcard_delete_128", |b| {
        b.iter(|| delete_rollback_run(128));
    });
    // The commit fast path for comparison: same tx, committed.
    g.bench_function("commit_adds_64", |b| {
        b.iter(|| {
            let topo = Topology::linear(4, 1);
            let mut net = Network::new(&topo);
            let mut nl = NetLog::new(TxMode::Immediate);
            let mut tx = nl.begin();
            for i in 0..64u64 {
                let dpid = DatapathId(1 + (i % 4));
                nl.execute(&mut tx, &mut net, dpid, &add_flow(i, 1))
                    .unwrap();
            }
            nl.commit(tx, &mut net).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
