//! E8 — §5: STS-style minimal causal sequences over event histories.
//!
//! Cost model of ddmin: replays grow roughly logarithmically in history
//! length for a single culprit and polynomially for scattered culprit
//! sets; minimal-sequence size is exact. This is what makes "which
//! checkpoint do we roll back to" tractable.

use legosdn::controller::app::{Ctx, RestoreError, SdnApp};
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::prelude::*;
use legosdn::sts::{ddmin, AppReplayOracle};
use legosdn_bench::harness::{criterion_group, BenchmarkId, Criterion};
use legosdn_bench::print_table;
use std::time::Instant;

/// Crashes after seeing `fuse` switch-downs (a cumulative multi-event bug).
struct FuseApp {
    seen: u32,
    fuse: u32,
}

impl SdnApp for FuseApp {
    fn name(&self) -> &str {
        "fuse"
    }
    fn subscriptions(&self) -> Vec<EventKind> {
        EventKind::ALL.to_vec()
    }
    fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
        if matches!(event, Event::SwitchDown(_)) {
            self.seen += 1;
            if self.seen >= self.fuse {
                panic!("fuse blown");
            }
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.seen.to_be_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) -> Result<(), RestoreError> {
        self.seen = u32::from_be_bytes(b.try_into().map_err(|_| RestoreError("len".into()))?);
        Ok(())
    }
}

/// A history of length `len` with `culprits` switch-downs evenly buried.
fn history(len: usize, culprits: usize) -> Vec<Event> {
    let mut h = Vec::with_capacity(len);
    let stride = len / culprits.max(1);
    for i in 0..len {
        if culprits > 0
            && i % stride == stride / 2
            && h.iter()
                .filter(|e| matches!(e, Event::SwitchDown(_)))
                .count()
                < culprits
        {
            h.push(Event::SwitchDown(DatapathId(i as u64)));
        } else {
            h.push(Event::SwitchUp(DatapathId(i as u64)));
        }
    }
    h
}

fn minimize(len: usize, culprits: usize) -> (usize, usize, f64) {
    let h = history(len, culprits);
    let mut oracle = AppReplayOracle::new(
        move || {
            Box::new(FuseApp {
                seen: 0,
                fuse: culprits as u32,
            })
        },
        TopologyView::default(),
        DeviceView::default(),
    );
    let start = Instant::now();
    let report = ddmin(&h, &mut oracle).expect("reproducible");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (report.minimal.len(), report.replays, ms)
}

fn summary() {
    let mut rows = Vec::new();
    for len in [8usize, 32, 128, 512] {
        for culprits in [1usize, 3] {
            if culprits >= len {
                continue;
            }
            let (minimal, replays, ms) = minimize(len, culprits);
            rows.push(vec![
                len.to_string(),
                culprits.to_string(),
                minimal.to_string(),
                replays.to_string(),
                format!("{ms:.2}"),
            ]);
        }
    }
    print_table(
        "E8: ddmin minimal causal sequences",
        &["history len", "culprits", "minimal len", "replays", "ms"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_sts");
    g.sample_size(20);
    for len in [32usize, 128, 512] {
        g.bench_with_input(BenchmarkId::new("ddmin_1_culprit", len), &len, |b, &len| {
            b.iter(|| minimize(len, 1));
        });
    }
    g.bench_function("ddmin_128_3culprits", |b| {
        b.iter(|| minimize(128, 3));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // ddmin replays contained crashes by the hundred; silence their
    // default backtraces so the output stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
