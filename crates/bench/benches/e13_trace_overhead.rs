//! E13 — flight-recorder tracing overhead on the E12 windowed workload
//! (PR 6 tentpole).
//!
//! The causal tracer threads a `TraceId` through every layer of a
//! dispatch (window fill, proxy queue/collect, Crash-Pad recovery, NetLog
//! commit) and appends structured events to a bounded ring. The design
//! budget is ≤3% overhead on the E12 burst workload: the disabled path is
//! one relaxed atomic load per hook, and the enabled path appends to a
//! mutex-guarded ring whose traces are bounded in both count and length.
//! This bench runs the depth-8 E12 burst with `trace_sample 0` (tracing
//! off) and `trace_sample 1` (every event traced) and records the ratio —
//! plus the traced run's obs snapshot, trace count, and drop counter — in
//! `BENCH_6.json`.
//!
//! Costs are fixed service waits, as in E11/E12, so the measured delta is
//! the tracer's bookkeeping, not machine-dependent CPU burn.

use legosdn::controller::app::RestoreError;
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

/// The E12 worker: fixed event-handling and snapshot costs, state folded
/// per event so snapshots are never elided.
struct PacketWorker {
    name: String,
    acc: u64,
    event_wait: Duration,
    snapshot_wait: Duration,
}

impl PacketWorker {
    fn new(id: usize, event_wait: Duration, snapshot_wait: Duration) -> Self {
        PacketWorker {
            name: format!("packet-worker-{id}"),
            acc: 0,
            event_wait,
            snapshot_wait,
        }
    }
}

impl SdnApp for PacketWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
        std::thread::sleep(self.event_wait);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
        for i in 0..256u32 {
            h ^= u64::from(i);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.acc = h;
    }

    fn snapshot(&self) -> Vec<u8> {
        std::thread::sleep(self.snapshot_wait);
        self.acc.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.acc = u64::from_le_bytes(arr);
        Ok(())
    }
}

const N_APPS: usize = 4;
const BURST: usize = 8;
const DEPTH: usize = 8;
const EVENT_WAIT: Duration = Duration::from_micros(300);
const SNAPSHOT_WAIT: Duration = Duration::from_micros(450);
const OVERHEAD_BUDGET_PCT: f64 = 3.0;

fn make_runtime(trace_sample: u64, obs: Obs) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(2, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig::pipelined().window(DEPTH),
        obs: ObsConfig::instance(obs).trace_sample(trace_sample),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 1,
                history: 2,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    for i in 0..N_APPS {
        rt.attach(Box::new(PacketWorker::new(i, EVENT_WAIT, SNAPSHOT_WAIT)))
            .unwrap();
    }
    (rt, net, topo)
}

fn inject_burst(net: &mut Network, topo: &Topology) {
    let a = topo.hosts[0].mac;
    for i in 0..BURST as u64 {
        let dst = MacAddr::from_index(40 + i);
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
    }
}

/// Mean microseconds per burst cycle over `n` cycles.
fn time_bursts(rt: &mut LegoSdnRuntime, net: &mut Network, topo: &Topology, n: u32) -> f64 {
    for _ in 0..3 {
        inject_burst(net, topo);
        rt.run_cycle(net);
    }
    let start = Instant::now();
    for _ in 0..n {
        inject_burst(net, topo);
        rt.run_cycle(net);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(n)
}

fn summary() {
    let n = 40u32;
    let (mut rt, mut net, topo) = make_runtime(0, Obs::new());
    let off_us = time_bursts(&mut rt, &mut net, &topo, n);
    rt.shutdown();
    let obs_on = Obs::new();
    let (mut rt, mut net, topo) = make_runtime(1, obs_on.clone());
    let on_us = time_bursts(&mut rt, &mut net, &topo, n);
    rt.shutdown();
    let overhead_pct = (on_us / off_us - 1.0) * 100.0;
    let traces = obs_on.traces();
    let dropped = obs_on.traces_dropped();

    print_table(
        &format!(
            "E13: tracing overhead on the E12 workload (burst {BURST}, \
             {N_APPS} isolated apps, window depth {DEPTH})"
        ),
        &["trace sample", "mean us/cycle", "overhead"],
        &[
            vec!["0 (off)".into(), format!("{off_us:.1}"), "-".into()],
            vec![
                "1 (every event)".into(),
                format!("{on_us:.1}"),
                format!("{overhead_pct:+.2}%"),
            ],
        ],
    );
    eprintln!(
        "e13: {} trace(s) retained, {dropped} dropped by the ring \
         (budget {OVERHEAD_BUDGET_PCT:.0}%)",
        traces.len()
    );

    // The exhibit record the ISSUE asks for: traced vs untraced numbers,
    // the overhead against the ≤3% budget, and the traced run's obs
    // snapshot embedded verbatim.
    let obs_json = obs_on.json_snapshot();
    let json = format!(
        "{{\n  \"exhibit\": \"trace_overhead\",\n  \"apps\": {N_APPS},\n  \
         \"burst\": {BURST},\n  \"window_depth\": {DEPTH},\n  \
         \"isolation\": \"channel\",\n  \"checkpoint_interval\": 1,\n  \
         \"cycles\": {n},\n  \
         \"untraced_us_per_cycle\": {off_us:.1},\n  \
         \"traced_us_per_cycle\": {on_us:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"overhead_budget_pct\": {OVERHEAD_BUDGET_PCT:.1},\n  \
         \"within_budget\": {},\n  \
         \"traces_retained\": {},\n  \"traces_dropped\": {dropped},\n  \
         \"obs\": {obs_json}\n}}\n",
        overhead_pct <= OVERHEAD_BUDGET_PCT,
        traces.len(),
    );
    match std::fs::write("BENCH_6.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_6.json (overhead {overhead_pct:+.2}%)"),
        Err(e) => eprintln!("could not write BENCH_6.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_trace_overhead");
    g.sample_size(20);
    let (mut rt, mut net, topo) = make_runtime(0, Obs::new());
    g.bench_function("untraced_burst", |b| {
        b.iter(|| {
            inject_burst(&mut net, &topo);
            rt.run_cycle(&mut net)
        })
    });
    rt.shutdown();
    let (mut rt, mut net, topo) = make_runtime(1, Obs::new());
    g.bench_function("traced_burst", |b| {
        b.iter(|| {
            inject_burst(&mut net, &topo);
            rt.run_cycle(&mut net)
        })
    });
    rt.shutdown();
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
