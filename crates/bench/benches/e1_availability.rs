//! E1 — Figure 1 / §1 / §2.1: controller availability under app crashes.
//!
//! The monolithic stack dies with its first crashing app; LegoSDN keeps
//! processing. The summary table reports events processed, deliveries, and
//! final controller state for identical workloads; the timing benches
//! time a full crash-workload cycle on each architecture.

use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::{print_table, workloads};

/// One full run: poisoned hub + learning switch, 30 packets, every
/// `crash_every`-th toward the poisoned host. Returns
/// (events dispatched, delivered, controller dead).
fn run_monolithic(crash_every: usize) -> (u64, u64, bool) {
    let (mut net, mut ctl, topo) = workloads::mono_on_linear(3, 1);
    let poison = topo.hosts[2].mac;
    ctl.attach(workloads::poisoned_hub(poison));
    ctl.attach(Box::new(LearningSwitch::new()));
    ctl.run_cycle(&mut net);
    let mut i = 0usize;
    workloads::round_robin_traffic(&topo, 30, |src, dst| {
        i += 1;
        let target = if i.is_multiple_of(crash_every) {
            poison
        } else {
            dst
        };
        let _ = net.inject(src, Packet::ethernet(src, target));
        ctl.run_cycle(&mut net);
    });
    (
        ctl.stats().dispatches,
        net.delivery_counters().0,
        ctl.is_crashed(),
    )
}

fn run_legosdn(crash_every: usize) -> (u64, u64, bool) {
    let (mut net, mut rt, topo) = workloads::lego_on_linear(3, 1, LegoSdnConfig::default());
    let poison = topo.hosts[2].mac;
    rt.attach(workloads::poisoned_hub(poison)).unwrap();
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);
    let mut i = 0usize;
    workloads::round_robin_traffic(&topo, 30, |src, dst| {
        i += 1;
        let target = if i.is_multiple_of(crash_every) {
            poison
        } else {
            dst
        };
        let _ = net.inject(src, Packet::ethernet(src, target));
        rt.run_cycle(&mut net);
    });
    (
        rt.stats().dispatches,
        net.delivery_counters().0,
        rt.is_crashed(),
    )
}

fn summary() {
    let mut rows = Vec::new();
    for crash_every in [3usize, 5, 10] {
        let (m_ev, m_del, m_dead) = run_monolithic(crash_every);
        let (l_ev, l_del, l_dead) = run_legosdn(crash_every);
        rows.push(vec![
            format!("1/{crash_every}"),
            m_ev.to_string(),
            l_ev.to_string(),
            m_del.to_string(),
            l_del.to_string(),
            format!("{m_dead}"),
            format!("{l_dead}"),
        ]);
    }
    print_table(
        "E1: availability under app crashes (30-packet workload)",
        &[
            "crash rate",
            "mono dispatches",
            "lego dispatches",
            "mono delivered",
            "lego delivered",
            "mono dead",
            "lego dead",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_availability");
    g.sample_size(20);
    g.bench_function("monolithic_crash_workload", |b| {
        b.iter(|| run_monolithic(3));
    });
    g.bench_function("legosdn_crash_workload", |b| {
        b.iter(|| run_legosdn(3));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the summary tables stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
