//! E3 — §4.1/§5: checkpointing cost vs recovery cost.
//!
//! Per-event checkpointing (the CRIU prototype) pays a snapshot on every
//! event; checkpoint-every-N pays ~1/N of that but must replay up to N-1
//! events at recovery. The sweep shows steady-state overhead falling with
//! N while recovery time grows — the §5 trade-off, with the crossover
//! visible in the table.

use legosdn::controller::app::SdnApp;
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::crashpad::{
    CheckpointPolicy, CrashPad, CrashPadConfig, LocalSandbox, PolicyTable, TransformDirection,
};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, BenchmarkId, Criterion};
use legosdn_bench::{print_table, workloads};
use std::time::Instant;

const INTERVALS: [u64; 6] = [1, 2, 5, 10, 25, 100];

fn pad(interval: u64) -> CrashPad {
    CrashPad::new(CrashPadConfig {
        checkpoints: CheckpointPolicy {
            interval,
            history: 4,
            ..CheckpointPolicy::default()
        },
        policies: PolicyTable::with_default(CompromisePolicy::Absolute),
        transform_direction: TransformDirection::Decompose,
    })
}

/// Steady-state: dispatch `n` healthy events through Crash-Pad; returns
/// (mean us/event, snapshots taken, snapshot bytes total).
fn steady_state(interval: u64, n: u64, state_size: u64) -> (f64, u64, u64) {
    let mut cp = pad(interval);
    let mut sandbox = LocalSandbox::new(Box::new(workloads::warmed_learning_switch(state_size)));
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let start = Instant::now();
    for i in 0..n {
        let ev = workloads::bench_packet_in(i);
        cp.dispatch(&mut sandbox, "ls", &ev, &topo, &dev, SimTime::ZERO);
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
    (
        us,
        cp.checkpoints.snapshots_taken,
        cp.checkpoints.bytes_snapshotted,
    )
}

/// Recovery: deliver `interval - 1` healthy events past the checkpoint,
/// then a crashing one; time the recovery dispatch. Returns
/// (recovery us, events replayed).
fn recovery_cost(interval: u64, state_size: u64) -> (f64, u64) {
    let mut cp = pad(interval);
    let inner = workloads::warmed_learning_switch(state_size);
    let mut sandbox = LocalSandbox::new(Box::new(FaultyApp::new(
        Box::new(inner),
        BugTrigger::OnPacketToMac(MacAddr::from_index(0xdead)),
        BugEffect::Crash,
    )));
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    // Fill the replay window.
    for i in 0..interval.saturating_sub(1) {
        let ev = workloads::bench_packet_in(i);
        cp.dispatch(&mut sandbox, "f", &ev, &topo, &dev, SimTime::ZERO);
    }
    // The poisoned event.
    let poison_ev = Event::PacketIn(
        DatapathId(1),
        PacketIn {
            buffer_id: BufferId::NONE,
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(0xdead)),
        },
    );
    let start = Instant::now();
    let result = cp.dispatch(&mut sandbox, "f", &poison_ev, &topo, &dev, SimTime::ZERO);
    let us = start.elapsed().as_secs_f64() * 1e6;
    assert!(matches!(
        result,
        legosdn::crashpad::DispatchResult::Recovered { .. }
    ));
    (us, cp.stats().events_replayed)
}

/// Elision: dispatch `n` events that do not touch the app's state (a
/// switch-down for a dpid the app never learned) with per-event
/// checkpointing. Every snapshot after the first hashes (FNV-1a)
/// identical to the stored one and is elided — recorded but not stored.
/// Returns (stored, elided).
fn elision_rate(n: u64, state_size: u64) -> (u64, u64) {
    let mut cp = pad(1);
    let mut sandbox = LocalSandbox::new(Box::new(workloads::warmed_learning_switch(state_size)));
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    for _ in 0..n {
        let ev = Event::SwitchDown(DatapathId(0xdead));
        cp.dispatch(&mut sandbox, "ls", &ev, &topo, &dev, SimTime::ZERO);
    }
    (
        cp.checkpoints.snapshots_taken,
        cp.checkpoints.snapshots_elided,
    )
}

fn summary() {
    let state = 500; // learned MACs in the app: a realistic snapshot size
    let snap_bytes = {
        let app = workloads::warmed_learning_switch(state);
        app.snapshot().len()
    };
    eprintln!("app snapshot size at {state} learned MACs: {snap_bytes} bytes");
    let mut rows = Vec::new();
    for interval in INTERVALS {
        let (us, snaps, bytes) = steady_state(interval, 400, state);
        let (rec_us, replayed) = recovery_cost(interval, state);
        rows.push(vec![
            interval.to_string(),
            format!("{us:.1}"),
            snaps.to_string(),
            (bytes / 1024).to_string(),
            format!("{rec_us:.0}"),
            replayed.to_string(),
        ]);
    }
    print_table(
        "E3: checkpoint interval sweep (400-event steady state + 1 crash)",
        &[
            "interval N",
            "us/event",
            "snapshots",
            "snap KiB",
            "recovery us",
            "replayed",
        ],
        &rows,
    );

    // Elision check: state-neutral events at interval 1 must store one
    // snapshot and hash-skip the rest.
    let (stored, elided) = elision_rate(200, state);
    assert!(
        stored == 1 && elided == 199,
        "stable state should elide every snapshot after the first \
         (stored {stored}, elided {elided})"
    );
    eprintln!("elision on state-neutral events at interval 1: {stored} stored, {elided} elided");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_checkpoint");
    g.sample_size(20);
    for interval in [1u64, 10, 100] {
        g.bench_with_input(
            BenchmarkId::new("steady_state_100ev", interval),
            &interval,
            |b, &interval| {
                b.iter(|| steady_state(interval, 100, 200));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("recovery", interval),
            &interval,
            |b, &interval| {
                b.iter(|| recovery_cost(interval, 200));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the summary tables stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
