//! E5 — §3.3: the three compromise policies' availability/correctness
//! trade-off, measured.
//!
//! Same crash (router panics on SwitchDown), three policies. Availability
//! = the app keeps processing subsequent events; correctness = the app's
//! view tracked the topology change (it tore down routes through the dead
//! switch). Absolute keeps availability but misses the change; Equivalence
//! gets both; No-Compromise sacrifices the app.

use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::Instant;

struct Outcome {
    app_alive: bool,
    processed_after: bool,
    saw_topology_change: bool,
    recovery_action: String,
    recovery_us: f64,
}

fn run(policy: CompromisePolicy) -> Outcome {
    let topo = Topology::linear(3, 1);
    let mut net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy::default(),
            policies: PolicyTable::with_default(policy),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    let id = rt
        .attach(Box::new(FaultyApp::new(
            Box::new(ShortestPathRouter::new()),
            BugTrigger::OnEventKind(EventKind::SwitchDown),
            BugEffect::Crash,
        )))
        .unwrap();
    rt.run_cycle(&mut net);

    // Learn hosts and install one route through switch 2 so "did the app
    // react to the topology change" is observable.
    let (a, c) = (topo.hosts[0].mac, topo.hosts[2].mac);
    for h in &topo.hosts {
        net.inject(h.mac, Packet::ethernet(h.mac, MacAddr::BROADCAST))
            .unwrap();
        rt.run_cycle(&mut net);
    }
    net.inject(a, Packet::ethernet(a, c)).unwrap();
    rt.run_cycle(&mut net);
    let routes_before = rt.stats().commands_executed;

    // The poison, timed: this cycle contains detection + recovery.
    net.set_switch_up(DatapathId(2), false).unwrap();
    let start = Instant::now();
    rt.run_cycle(&mut net);
    let recovery_us = start.elapsed().as_secs_f64() * 1e6;

    // Did the router emit route-teardown deletes? Only if it actually
    // processed the change (directly or via transformed link-downs).
    let saw_topology_change = rt.stats().commands_executed > routes_before;

    // Availability probe: a fresh packet-in afterwards.
    let app_alive = !matches!(rt.app_status(id), Some(AppStatus::Dead));
    let before = rt
        .crashpad()
        .checkpoints
        .events_delivered("shortest-path-router#buggy");
    net.inject(a, Packet::ethernet(a, topo.hosts[1].mac))
        .unwrap();
    rt.run_cycle(&mut net);
    let processed_after = rt
        .crashpad()
        .checkpoints
        .events_delivered("shortest-path-router#buggy")
        > before;

    let recovery_action = rt
        .crashpad()
        .tickets
        .iter()
        .last()
        .map(|t| format!("{:?}", t.recovery))
        .unwrap_or_else(|| "none".into());
    Outcome {
        app_alive,
        processed_after,
        saw_topology_change,
        recovery_action,
        recovery_us,
    }
}

fn summary() {
    let mut rows = Vec::new();
    for (policy, name) in [
        (CompromisePolicy::Absolute, "Absolute (ignore)"),
        (CompromisePolicy::NoCompromise, "No Compromise"),
        (CompromisePolicy::Equivalence, "Equivalence"),
    ] {
        let o = run(policy);
        rows.push(vec![
            name.to_string(),
            o.app_alive.to_string(),
            o.processed_after.to_string(),
            o.saw_topology_change.to_string(),
            o.recovery_action,
            format!("{:.0}", o.recovery_us),
        ]);
    }
    print_table(
        "E5: compromise policies — availability vs correctness",
        &[
            "policy",
            "app alive",
            "processes later events",
            "reacted to topo change",
            "recovery action",
            "recovery us",
        ],
        &rows,
    );
    eprintln!("note: 'reacted to topo change' is true even for Absolute because the");
    eprintln!("controller core also derives per-link LinkDown events for a dead");
    eprintln!("switch's links — an app that handles LinkDown natively still learns of");
    eprintln!("the change. The Equivalence advantage is the app's own switch-down");
    eprintln!("handling being exercised via transformed events (recovery action).\n");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_policies");
    g.sample_size(20);
    g.bench_function("absolute", |b| b.iter(|| run(CompromisePolicy::Absolute)));
    g.bench_function("no_compromise", |b| {
        b.iter(|| run(CompromisePolicy::NoCompromise))
    });
    g.bench_function("equivalence", |b| {
        b.iter(|| run(CompromisePolicy::Equivalence))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the summary tables stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
