//! E2 — Table 1 / §3.1: the latency cost of isolation.
//!
//! Per-event dispatch latency across the four hosting configurations:
//! monolithic direct call, in-process sandbox (panic containment only),
//! AppVisor over in-memory channels, and AppVisor over UDP loopback (the
//! paper's prototype). The UDP path includes real serialization of the
//! event + controller views and the kernel round trip — the "additional
//! latency into the control-loop" §3.1 argues is acceptable against the 4x
//! slowdown controllers already impose on flow setup.

use legosdn::appvisor::{AppVisorProxy, ProxyConfig, StubConfig, TransportKind};
use legosdn::controller::app::{Ctx, SdnApp};
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::crashpad::{LocalSandbox, RecoverableApp};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::{print_table, workloads};
use std::time::{Duration, Instant};

fn proxy() -> AppVisorProxy {
    AppVisorProxy::new(ProxyConfig {
        deliver_timeout: Duration::from_secs(2),
        rpc_timeout: Duration::from_secs(2),
        heartbeat_timeout: Duration::from_secs(10),
        stub: StubConfig {
            heartbeat_period: Duration::from_millis(500),
            report_crashes: true,
        },
        ..Default::default()
    })
}

/// Time `n` deliveries through a closure; returns mean microseconds.
fn time_deliveries(n: u64, mut deliver: impl FnMut(u64)) -> f64 {
    // Warm up.
    for i in 0..50 {
        deliver(i);
    }
    let start = Instant::now();
    for i in 0..n {
        deliver(i);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

fn summary() {
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let n = 2_000u64;

    // Direct call (monolithic's dispatch cost).
    let mut direct_app = LearningSwitch::new();
    let direct = time_deliveries(n, |i| {
        let ev = workloads::bench_packet_in(i);
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        direct_app.on_event(&ev, &mut ctx);
        let _ = ctx.into_commands();
    });

    // In-process sandbox.
    let mut sandbox = LocalSandbox::new(Box::new(LearningSwitch::new()));
    let local = time_deliveries(n, |i| {
        let ev = workloads::bench_packet_in(i);
        let _ = sandbox.deliver(&ev, &topo, &dev, SimTime::ZERO);
    });

    // AppVisor / channel.
    let mut p = proxy();
    let h = p
        .launch_app(Box::new(LearningSwitch::new()), TransportKind::Channel)
        .unwrap();
    let channel = time_deliveries(n, |i| {
        let ev = workloads::bench_packet_in(i);
        let _ = p.deliver(h, &ev, &topo, &dev, SimTime::ZERO);
    });
    let channel_bytes = p.wire_stats(h).unwrap();
    let _ = p.shutdown();

    // AppVisor / UDP (paper prototype).
    let mut p = proxy();
    let h = p
        .launch_app(Box::new(LearningSwitch::new()), TransportKind::Udp)
        .unwrap();
    let udp = time_deliveries(n, |i| {
        let ev = workloads::bench_packet_in(i);
        let _ = p.deliver(h, &ev, &topo, &dev, SimTime::ZERO);
    });
    let udp_bytes = p.wire_stats(h).unwrap();
    let _ = p.shutdown();

    let per_event_wire =
        (udp_bytes.bytes_sent + udp_bytes.bytes_received) / (udp_bytes.events_delivered.max(1));
    print_table(
        "E2: per-event dispatch latency by isolation mode",
        &["mode", "mean us/event", "x direct", "wire bytes/event"],
        &[
            vec![
                "direct (monolithic)".into(),
                format!("{direct:.2}"),
                "1.0".into(),
                "0".into(),
            ],
            vec![
                "local sandbox".into(),
                format!("{local:.2}"),
                format!("{:.1}", local / direct),
                "0".into(),
            ],
            vec![
                "appvisor channel".into(),
                format!("{channel:.2}"),
                format!("{:.1}", channel / direct),
                ((channel_bytes.bytes_sent + channel_bytes.bytes_received)
                    / channel_bytes.events_delivered.max(1))
                .to_string(),
            ],
            vec![
                "appvisor UDP (paper)".into(),
                format!("{udp:.2}"),
                format!("{:.1}", udp / direct),
                per_event_wire.to_string(),
            ],
        ],
    );

    // Parallel fan-out: one event to 4 isolated apps, sequential deliver
    // vs deliver_fanout (stubs process concurrently on their threads).
    let mut p = proxy();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            p.launch_app(Box::new(LearningSwitch::new()), TransportKind::Channel)
                .unwrap()
        })
        .collect();
    let seq_us = time_deliveries(500, |i| {
        let ev = workloads::bench_packet_in(i);
        for &h in &handles {
            let _ = p.deliver(h, &ev, &topo, &dev, SimTime::ZERO);
        }
    });
    let fan_us = time_deliveries(500, |i| {
        let ev = workloads::bench_packet_in(i);
        let _ = p.deliver_fanout(&handles, &ev, &topo, &dev, SimTime::ZERO);
    });
    eprintln!(
        "fan-out to 4 isolated apps: sequential {seq_us:.1} us/event, \
         parallel {fan_us:.1} us/event ({:.2}x)",
        seq_us / fan_us
    );
    let _ = p.shutdown();

    // OpenFlow wire-codec cost, the serialization component in isolation.
    let fm = Message::FlowMod(
        FlowMod::add(Match::from_packet(
            &Packet::tcp(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
                Ipv4Addr::from_index(1),
                Ipv4Addr::from_index(2),
                40_000,
                80,
            ),
            PortNo::Phys(1),
        ))
        .action(Action::Output(PortNo::Phys(2))),
    );
    let start = Instant::now();
    let iters = 100_000u64;
    for i in 0..iters {
        let bytes = legosdn::openflow::wire::encode(&fm, Xid(i as u32));
        let _ = legosdn::openflow::wire::decode(&bytes).unwrap();
    }
    let codec_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    eprintln!("OpenFlow flow-mod encode+decode: {codec_ns:.0} ns/roundtrip\n");
}

fn bench(c: &mut Criterion) {
    let topo = TopologyView::default();
    let dev = DeviceView::default();

    let mut g = c.benchmark_group("e2_isolation_latency");
    let mut direct_app = LearningSwitch::new();
    let mut i = 0u64;
    g.bench_function("direct", |b| {
        b.iter(|| {
            i += 1;
            let ev = workloads::bench_packet_in(i);
            let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
            direct_app.on_event(&ev, &mut ctx);
            ctx.into_commands()
        });
    });

    let mut sandbox = LocalSandbox::new(Box::new(LearningSwitch::new()));
    g.bench_function("local_sandbox", |b| {
        b.iter(|| {
            i += 1;
            sandbox.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO)
        });
    });

    let mut p = proxy();
    let h = p
        .launch_app(Box::new(LearningSwitch::new()), TransportKind::Channel)
        .unwrap();
    g.bench_function("appvisor_channel", |b| {
        b.iter(|| {
            i += 1;
            p.deliver(
                h,
                &workloads::bench_packet_in(i),
                &topo,
                &dev,
                SimTime::ZERO,
            )
            .unwrap()
        });
    });
    let _ = p.shutdown();

    let mut p = proxy();
    let h = p
        .launch_app(Box::new(LearningSwitch::new()), TransportKind::Udp)
        .unwrap();
    g.bench_function("appvisor_udp", |b| {
        b.iter(|| {
            i += 1;
            p.deliver(
                h,
                &workloads::bench_packet_in(i),
                &topo,
                &dev,
                SimTime::ZERO,
            )
            .unwrap()
        });
    });
    let _ = p.shutdown();
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
