//! E14 — stub-fleet scale under the readiness-polled transport (PR 7
//! tentpole).
//!
//! The blocking transport spends one proxy-facing thread *and* one stub
//! thread per app, so a 1000-app fleet costs ~1000 OS threads before a
//! single event moves. The polled transport multiplexes every stub
//! channel onto two fixed pools (poll workers on the proxy side, stub-host
//! workers on the app side), so the same fleet runs on `2 × io_threads`
//! threads total. This exhibit measures both sides of that trade:
//!
//! 1. **Scale**: launch 1000 stubs under each mode, fan event rounds out
//!    to the whole fleet, record events/sec and the peak process thread
//!    count from `/proc/self/status`.
//! 2. **Regression guard**: the E12 windowed-burst workload (4 apps,
//!    8-event bursts, depth-8 window, interval-1 checkpoints) must not
//!    run more than ~3% slower under the polled transport — the poller
//!    may not tax the latency-sensitive path it replaced.
//!
//! Results (plus the polled fleet's obs snapshot, including the poller's
//! wakeup/ready-set metrics) land in `BENCH_7.json`.

use legosdn::apps::Hub;
use legosdn::appvisor::{
    AppHandle, AppVisorProxy, DeliverOutcome, IoMode, ProxyConfig, StubConfig, TransportKind,
};
use legosdn::controller::app::RestoreError;
use legosdn::controller::event::Event;
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

const FLEET_APPS: usize = 1000;
const FLEET_ROUNDS: u64 = 3;
const IO_THREADS: usize = 4; // 2 pools of 4 → 8 polled threads total

/// The process thread count (`Threads:` in `/proc/self/status`); 0 where
/// procfs is unavailable.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:"))
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn fleet_proxy(io: IoMode, obs: Obs) -> AppVisorProxy {
    let mut proxy = AppVisorProxy::new(ProxyConfig {
        // A fan-out's deadline is shared across the whole fleet; size it
        // for 1000 apps on a loaded CI box.
        deliver_timeout: Duration::from_secs(30),
        rpc_timeout: Duration::from_secs(30),
        heartbeat_timeout: Duration::from_secs(60),
        stub: StubConfig {
            // Quiet heartbeats: measure event servicing, not idle chatter.
            heartbeat_period: Duration::from_secs(5),
            report_crashes: true,
        },
        io,
        ..ProxyConfig::default()
    });
    proxy.set_obs(obs);
    proxy
}

struct FleetRun {
    launch_s: f64,
    events_per_s: f64,
    peak_threads: usize,
    delivered: u64,
    reports: usize,
}

/// Launch `apps` stubs under `io`, fan `rounds` events to all of them,
/// and retire the fleet.
fn run_fleet(apps: usize, rounds: u64, io: IoMode, obs: Obs) -> FleetRun {
    let mut proxy = fleet_proxy(io, obs);
    let launch_start = Instant::now();
    let handles: Vec<AppHandle> = (0..apps)
        .map(|_| {
            proxy
                .launch_app(Box::new(Hub::new()), TransportKind::Channel)
                .expect("fleet launch")
        })
        .collect();
    let launch_s = launch_start.elapsed().as_secs_f64();
    let mut peak_threads = thread_count();

    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let mut delivered = 0u64;
    let fanout_start = Instant::now();
    for _ in 0..rounds {
        let results = proxy.deliver_fanout(
            &handles,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        delivered += results
            .iter()
            .filter(|r| matches!(&r.outcome, Ok(DeliverOutcome::Commands(_))))
            .count() as u64;
    }
    let fanout_s = fanout_start.elapsed().as_secs_f64();
    peak_threads = peak_threads.max(thread_count());
    let reports = proxy.shutdown().len();
    FleetRun {
        launch_s,
        events_per_s: delivered as f64 / fanout_s,
        peak_threads,
        delivered,
        reports,
    }
}

// ---- the E12 regression workload (see e12_event_window.rs) ----

struct PacketWorker {
    name: String,
    acc: u64,
}

impl PacketWorker {
    fn new(id: usize) -> Self {
        PacketWorker {
            name: format!("packet-worker-{id}"),
            acc: 0,
        }
    }
}

const EVENT_WAIT: Duration = Duration::from_micros(300);
const SNAPSHOT_WAIT: Duration = Duration::from_micros(450);
const N_APPS: usize = 4;
const BURST: usize = 8;

impl SdnApp for PacketWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
        std::thread::sleep(EVENT_WAIT);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
        for i in 0..256u32 {
            h ^= u64::from(i);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.acc = h;
    }

    fn snapshot(&self) -> Vec<u8> {
        std::thread::sleep(SNAPSHOT_WAIT);
        self.acc.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.acc = u64::from_le_bytes(arr);
        Ok(())
    }
}

fn make_runtime(io: IoMode) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(2, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig::pipelined().window(BURST),
        io: IoConfig {
            mode: io,
            ..IoConfig::default()
        },
        obs: ObsConfig::instance(Obs::new()),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 1,
                history: 2,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    for i in 0..N_APPS {
        rt.attach(Box::new(PacketWorker::new(i))).unwrap();
    }
    (rt, net, topo)
}

fn inject_burst(net: &mut Network, topo: &Topology) {
    let a = topo.hosts[0].mac;
    for i in 0..BURST as u64 {
        let dst = MacAddr::from_index(40 + i);
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
    }
}

/// Mean microseconds per burst cycle over `n` cycles under `io`.
fn time_e12_workload(io: IoMode, n: u32) -> f64 {
    let (mut rt, mut net, topo) = make_runtime(io);
    for _ in 0..3 {
        inject_burst(&mut net, &topo);
        rt.run_cycle(&mut net);
    }
    let start = Instant::now();
    for _ in 0..n {
        inject_burst(&mut net, &topo);
        rt.run_cycle(&mut net);
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(n);
    rt.shutdown();
    us
}

fn summary() {
    let polled_obs = Obs::new();
    let polled = run_fleet(
        FLEET_APPS,
        FLEET_ROUNDS,
        IoMode::Polled {
            io_threads: IO_THREADS,
        },
        polled_obs.clone(),
    );
    let blocking = run_fleet(FLEET_APPS, FLEET_ROUNDS, IoMode::Blocking, Obs::new());

    let n = 40u32;
    let e12_blocking_us = time_e12_workload(IoMode::Blocking, n);
    let e12_polled_us = time_e12_workload(
        IoMode::Polled {
            io_threads: IO_THREADS,
        },
        n,
    );
    let regression_pct = (e12_polled_us - e12_blocking_us) / e12_blocking_us * 100.0;
    let budget_pct = 3.0;

    print_table(
        &format!("E14: {FLEET_APPS}-app fleet, {FLEET_ROUNDS} fan-out rounds"),
        &["io mode", "launch s", "events/s", "peak threads", "reports"],
        &[
            vec![
                format!("polled({IO_THREADS})"),
                format!("{:.2}", polled.launch_s),
                format!("{:.0}", polled.events_per_s),
                polled.peak_threads.to_string(),
                polled.reports.to_string(),
            ],
            vec![
                "blocking".into(),
                format!("{:.2}", blocking.launch_s),
                format!("{:.0}", blocking.events_per_s),
                blocking.peak_threads.to_string(),
                blocking.reports.to_string(),
            ],
        ],
    );
    print_table(
        "E14: E12 windowed-burst workload, blocking vs polled",
        &["io mode", "mean us/cycle", "regression %"],
        &[
            vec![
                "blocking".into(),
                format!("{e12_blocking_us:.1}"),
                "0.00".into(),
            ],
            vec![
                format!("polled({IO_THREADS})"),
                format!("{e12_polled_us:.1}"),
                format!("{regression_pct:.2}"),
            ],
        ],
    );

    let obs_json = polled_obs.json_snapshot();
    let json = format!(
        "{{\n  \"exhibit\": \"fleet_scale\",\n  \"fleet_apps\": {FLEET_APPS},\n  \
         \"fleet_rounds\": {FLEET_ROUNDS},\n  \"io_threads\": {IO_THREADS},\n  \
         \"polled_thread_budget\": {},\n  \
         \"polled_events_per_s\": {:.0},\n  \
         \"polled_peak_threads\": {},\n  \
         \"polled_launch_s\": {:.2},\n  \
         \"polled_deliveries\": {},\n  \
         \"blocking_events_per_s\": {:.0},\n  \
         \"blocking_peak_threads\": {},\n  \
         \"blocking_launch_s\": {:.2},\n  \
         \"e12_blocking_us_per_cycle\": {e12_blocking_us:.1},\n  \
         \"e12_polled_us_per_cycle\": {e12_polled_us:.1},\n  \
         \"e12_regression_pct\": {regression_pct:.2},\n  \
         \"e12_regression_budget_pct\": {budget_pct:.1},\n  \
         \"within_budget\": {},\n  \"obs\": {obs_json}\n}}\n",
        2 * IO_THREADS,
        polled.events_per_s,
        polled.peak_threads,
        polled.launch_s,
        polled.delivered,
        blocking.events_per_s,
        blocking.peak_threads,
        blocking.launch_s,
        regression_pct <= budget_pct,
    );
    match std::fs::write("BENCH_7.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_7.json (polled {} threads vs blocking {}, e12 regression {regression_pct:.2}%)",
            polled.peak_threads, blocking.peak_threads
        ),
        Err(e) => eprintln!("could not write BENCH_7.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    // A smaller fleet for the timed samples: the 1000-app exhibit runs
    // once in `summary`; here we time one fan-out round per mode.
    let mut g = c.benchmark_group("e14_fleet_scale");
    g.sample_size(10);
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    for (name, io) in [
        ("blocking_64app_round", IoMode::Blocking),
        (
            "polled_64app_round",
            IoMode::Polled {
                io_threads: IO_THREADS,
            },
        ),
    ] {
        let mut proxy = fleet_proxy(io, Obs::new());
        let handles: Vec<AppHandle> = (0..64)
            .map(|_| {
                proxy
                    .launch_app(Box::new(Hub::new()), TransportKind::Channel)
                    .expect("fleet launch")
            })
            .collect();
        g.bench_function(name, |b| {
            b.iter(|| {
                proxy.deliver_fanout(
                    &handles,
                    &Event::SwitchUp(DatapathId(1)),
                    &topo,
                    &dev,
                    SimTime::ZERO,
                )
            })
        });
        proxy.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
