//! E10 — §3.4/§5 novel use cases, exercised and timed:
//! N-version voting overhead, clone-pair mirroring overhead, controller
//! upgrade (LegoSDN) vs reboot (monolithic), and per-app resource-limit
//! enforcement cost.

use legosdn::clone_runner::ClonePair;
use legosdn::controller::services::{DeviceView, TopologyView};
use legosdn::crashpad::{LocalSandbox, RecoverableApp};
use legosdn::nversion::NVersionApp;
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::{print_table, workloads};
use std::time::Instant;

fn time_events(n: u64, mut f: impl FnMut(u64)) -> f64 {
    for i in 0..50 {
        f(i);
    }
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

fn summary() {
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let n = 2_000;

    // Single app baseline vs 3-version group vs clone pair.
    let mut single = LocalSandbox::new(Box::new(Hub::new()));
    let single_us = time_events(n, |i| {
        let _ = single.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO);
    });

    let mut nv = LocalSandbox::new(Box::new(NVersionApp::new(
        "hub-3v",
        vec![
            Box::new(Hub::new()),
            Box::new(Hub::new()),
            Box::new(Hub::new()),
        ],
    )));
    let nv_us = time_events(n, |i| {
        let _ = nv.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO);
    });

    let mut pair = ClonePair::new(
        LocalSandbox::new(Box::new(Hub::new())),
        LocalSandbox::new(Box::new(Hub::new())),
    );
    let clone_us = time_events(n, |i| {
        let _ = pair.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO);
    });

    print_table(
        "E10a: redundancy mechanisms — per-event cost",
        &["configuration", "us/event", "x single"],
        &[
            vec!["single app".into(), format!("{single_us:.2}"), "1.0".into()],
            vec![
                "3-version vote".into(),
                format!("{nv_us:.2}"),
                format!("{:.1}", nv_us / single_us),
            ],
            vec![
                "clone pair".into(),
                format!("{clone_us:.2}"),
                format!("{:.1}", clone_us / single_us),
            ],
        ],
    );

    // Upgrade vs reboot: state retained and wall time.
    let topo2 = Topology::linear(3, 1);
    let mut net = Network::new(&topo2);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default());
    rt.attach(Box::new(LearningSwitch::new())).unwrap();
    rt.run_cycle(&mut net);
    workloads::round_robin_traffic(&topo2, 6, |s, d| {
        let _ = net.inject(s, Packet::ethernet(s, d));
        rt.run_cycle(&mut net);
    });
    let start = Instant::now();
    rt.upgrade_controller(&mut net);
    let upgrade_us = start.elapsed().as_secs_f64() * 1e6;
    let lego_links = rt.translator().topology.n_links();
    let app_state_kept = rt
        .crashpad()
        .checkpoints
        .events_delivered("learning-switch")
        > 0;

    let mut net = Network::new(&topo2);
    let mut ctl = MonolithicController::new();
    ctl.attach(Box::new(LearningSwitch::new()));
    ctl.run_cycle(&mut net);
    workloads::round_robin_traffic(&topo2, 6, |s, d| {
        let _ = net.inject(s, Packet::ethernet(s, d));
        ctl.run_cycle(&mut net);
    });
    let start = Instant::now();
    ctl.reboot();
    ctl.run_cycle(&mut net); // re-handshake happens only on new events
    let reboot_us = start.elapsed().as_secs_f64() * 1e6;
    let mono_links = ctl.translator().topology.n_links();

    print_table(
        "E10b: controller upgrade (LegoSDN) vs reboot (monolithic)",
        &[
            "architecture",
            "wall us",
            "links known after",
            "app state kept",
        ],
        &[
            vec![
                "legosdn upgrade".into(),
                format!("{upgrade_us:.0}"),
                lego_links.to_string(),
                app_state_kept.to_string(),
            ],
            vec![
                "monolithic reboot".into(),
                format!("{reboot_us:.0}"),
                mono_links.to_string(),
                "false".into(),
            ],
        ],
    );

    // Resource limits: enforcement overhead is a per-dispatch counter check.
    let (mut net, mut rt, topo3) = workloads::lego_on_linear(2, 1, LegoSdnConfig::default());
    rt.attach_with_limits(
        Box::new(Hub::new()),
        ResourceLimits {
            max_events: Some(u64::MAX >> 1),
            ..ResourceLimits::default()
        },
    )
    .unwrap();
    rt.run_cycle(&mut net);
    let hosts = topo3.hosts.clone();
    let limited_us = time_events(300, |i| {
        let src = hosts[(i % 2) as usize].mac;
        let _ = net.inject(src, Packet::ethernet(src, MacAddr::from_index(900 + i)));
        rt.run_cycle(&mut net);
    });
    eprintln!("resource-limited dispatch through full runtime: {limited_us:.1} us/event\n");
}

fn bench(c: &mut Criterion) {
    let topo = TopologyView::default();
    let dev = DeviceView::default();
    let mut g = c.benchmark_group("e10_use_cases");
    let mut i = 0u64;

    let mut single = LocalSandbox::new(Box::new(Hub::new()));
    g.bench_function("single_app", |b| {
        b.iter(|| {
            i += 1;
            single.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO)
        });
    });

    let mut nv = LocalSandbox::new(Box::new(NVersionApp::new(
        "hub-3v",
        vec![
            Box::new(Hub::new()),
            Box::new(Hub::new()),
            Box::new(Hub::new()),
        ],
    )));
    g.bench_function("nversion_3", |b| {
        b.iter(|| {
            i += 1;
            nv.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO)
        });
    });

    let mut pair = ClonePair::new(
        LocalSandbox::new(Box::new(Hub::new())),
        LocalSandbox::new(Box::new(Hub::new())),
    );
    g.bench_function("clone_pair", |b| {
        b.iter(|| {
            i += 1;
            pair.deliver(&workloads::bench_packet_in(i), &topo, &dev, SimTime::ZERO)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // Injected app crashes are contained by design; silence their default
    // backtraces so the summary tables stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
