//! E12 — cross-event windowed dispatch vs per-event pipelining (PR 5
//! tentpole).
//!
//! A burst of eight packet-in events arrives in one cycle, fanned out to
//! four isolated apps with per-event checkpointing (interval 1). Per-event
//! pipelined dispatch (window depth 1) overlaps the *deliveries* of one
//! event but still pays the four pre-event snapshot RPCs serially, and
//! fully drains event *k* before event *k+1* starts. Windowed dispatch
//! (depth 8) queues (snapshot, delivery) pairs for the whole burst on each
//! stub's FIFO stream, so a stub serializes its own snapshot and delivery
//! work while the proxy's collect waits overlap across apps *and* events.
//! The determinism integration sweep proves every depth leaves identical
//! network state; this bench measures what the cross-event overlap buys.
//! Results (and the depth8/depth1 ratio, plus an obs snapshot) land in
//! `BENCH_5.json`.
//!
//! Costs are fixed service waits (external lookups) rather than CPU burn,
//! for the same reason as E11: waits overlap regardless of host core
//! count, so the bench measures the dispatch design, not the machine.

use legosdn::controller::app::RestoreError;
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

/// A PacketIn-subscribed app whose event handler *and* snapshot each have
/// a fixed cost — the handler blocks on an external lookup, the snapshot
/// serializes a table behind a lock. With interval-1 checkpointing, the
/// snapshot cost is what depth-1 dispatch pays serially per app per event.
struct PacketWorker {
    name: String,
    acc: u64,
    event_wait: Duration,
    snapshot_wait: Duration,
}

impl PacketWorker {
    fn new(id: usize, event_wait: Duration, snapshot_wait: Duration) -> Self {
        PacketWorker {
            name: format!("packet-worker-{id}"),
            acc: 0,
            event_wait,
            snapshot_wait,
        }
    }
}

impl SdnApp for PacketWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
        std::thread::sleep(self.event_wait);
        // Fold the "answer" into app state so every event changes the
        // snapshot (no elision) and replay has a real state effect.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
        for i in 0..256u32 {
            h ^= u64::from(i);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.acc = h;
    }

    fn snapshot(&self) -> Vec<u8> {
        std::thread::sleep(self.snapshot_wait);
        self.acc.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.acc = u64::from_le_bytes(arr);
        Ok(())
    }
}

const N_APPS: usize = 4;
const BURST: usize = 8; // packet-ins injected per cycle
const EVENT_WAIT: Duration = Duration::from_micros(300);
const SNAPSHOT_WAIT: Duration = Duration::from_micros(450);

fn make_runtime(depth: usize, obs: Obs) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(2, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig::pipelined().window(depth),
        obs: ObsConfig::instance(obs),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 1, // pre-event snapshot on every delivery
                history: 2,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    for i in 0..N_APPS {
        rt.attach(Box::new(PacketWorker::new(i, EVENT_WAIT, SNAPSHOT_WAIT)))
            .unwrap();
    }
    (rt, net, topo)
}

fn inject_burst(net: &mut Network, topo: &Topology) {
    let a = topo.hosts[0].mac;
    for i in 0..BURST as u64 {
        let dst = MacAddr::from_index(40 + i);
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
    }
}

/// Mean microseconds per burst cycle over `n` cycles.
fn time_bursts(rt: &mut LegoSdnRuntime, net: &mut Network, topo: &Topology, n: u32) -> f64 {
    for _ in 0..3 {
        inject_burst(net, topo);
        rt.run_cycle(net); // warm up stubs, caches, checkpoint stores
    }
    let start = Instant::now();
    for _ in 0..n {
        inject_burst(net, topo);
        rt.run_cycle(net);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(n)
}

fn summary() {
    let n = 40u32;
    let (mut rt, mut net, topo) = make_runtime(1, Obs::new());
    let d1_us = time_bursts(&mut rt, &mut net, &topo, n);
    rt.shutdown();
    let obs8 = Obs::new();
    let (mut rt, mut net, topo) = make_runtime(BURST, obs8.clone());
    let d8_us = time_bursts(&mut rt, &mut net, &topo, n);
    rt.shutdown();
    let ratio = d1_us / d8_us;

    print_table(
        &format!(
            "E12: burst of {BURST} packet-ins/cycle, {N_APPS} isolated apps, interval-1 checkpoints"
        ),
        &["window depth", "mean us/cycle", "speedup"],
        &[
            vec!["1".into(), format!("{d1_us:.1}"), "1.00".into()],
            vec![
                BURST.to_string(),
                format!("{d8_us:.1}"),
                format!("{ratio:.2}"),
            ],
        ],
    );

    // The exhibit record the ISSUE asks for: depth-1 vs depth-8 numbers
    // with the ratio and the depth-8 run's obs snapshot (window gauges,
    // queue-latency histograms, elision counters) embedded verbatim.
    let obs_json = obs8.json_snapshot();
    let json = format!(
        "{{\n  \"exhibit\": \"event_window\",\n  \"apps\": {N_APPS},\n  \
         \"burst\": {BURST},\n  \"isolation\": \"channel\",\n  \
         \"checkpoint_interval\": 1,\n  \"cycles\": {n},\n  \
         \"depth1_us_per_cycle\": {d1_us:.1},\n  \
         \"depth8_us_per_cycle\": {d8_us:.1},\n  \
         \"speedup\": {ratio:.2},\n  \"obs\": {obs_json}\n}}\n"
    );
    match std::fs::write("BENCH_5.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_5.json (speedup {ratio:.2}x)"),
        Err(e) => eprintln!("could not write BENCH_5.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_event_window");
    g.sample_size(20);
    let (mut rt, mut net, topo) = make_runtime(1, Obs::new());
    g.bench_function("depth1_burst", |b| {
        b.iter(|| {
            inject_burst(&mut net, &topo);
            rt.run_cycle(&mut net)
        })
    });
    rt.shutdown();
    let (mut rt, mut net, topo) = make_runtime(BURST, Obs::new());
    g.bench_function("depth8_burst", |b| {
        b.iter(|| {
            inject_burst(&mut net, &topo);
            rt.run_cycle(&mut net)
        })
    });
    rt.shutdown();
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
