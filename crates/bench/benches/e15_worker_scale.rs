//! E15 — multi-worker sharded dispatch vs the single-worker window (PR 8
//! tentpole).
//!
//! Sixteen local-sandbox apps each pay a fixed service wait per event
//! (an external lookup) and per snapshot (a table serialized behind a
//! lock). Local sandboxes execute *inline on the worker thread*, so with
//! one worker a 12-event burst pays all 16 × 12 waits serially — the
//! window overlaps only isolated stubs' processing, not local apps'.
//! Sharding the roster across N workers runs N of those inline chains
//! concurrently; each app writes its own switch, so every commit takes
//! the barrier's provably-disjoint fastpath and no worker ever waits for
//! commit order. Results land in `BENCH_8.json`, together with a re-run
//! of the E12 workload at one worker, which must reproduce the PR 5
//! depth8/depth1 ratio (the single-worker regression guard).
//!
//! Costs are fixed service waits rather than CPU burn, for the same
//! reason as E11/E12: waits overlap regardless of host core count, so
//! the bench measures the dispatch design, not the machine.

use legosdn::controller::app::RestoreError;
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

/// A PacketIn-subscribed local app with fixed event/snapshot service
/// waits that installs one uniquely-tagged flow on ITS OWN switch per
/// event — disjoint write sets across the roster, so sharded commits
/// stay on the barrier fastpath.
struct ShardWorker {
    name: String,
    dpid: DatapathId,
    tag: u64,
    count: u64,
    event_wait: Duration,
    snapshot_wait: Duration,
}

impl ShardWorker {
    fn new(id: usize, switches: usize, event_wait: Duration, snapshot_wait: Duration) -> Self {
        ShardWorker {
            name: format!("shard-worker-{id}"),
            dpid: DatapathId((id % switches) as u64 + 1),
            tag: id as u64,
            count: 0,
            event_wait,
            snapshot_wait,
        }
    }
}

impl SdnApp for ShardWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        std::thread::sleep(self.event_wait);
        if let Event::PacketIn(_, pi) = event {
            let mut mat = Match::from_packet(&pi.packet, pi.in_port);
            // Unique per (app, delivery): no install ever shadows another.
            mat.eth_src = Some(MacAddr::from_index(
                50_000 + self.tag * 100_000 + self.count,
            ));
            self.count += 1;
            ctx.send(self.dpid, Message::FlowMod(FlowMod::add(mat)));
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        std::thread::sleep(self.snapshot_wait);
        self.count.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.count = u64::from_le_bytes(arr);
        Ok(())
    }
}

const N_APPS: usize = 16;
const SWITCHES: usize = 16; // one contention-free switch per app
const BURST: usize = 12; // packet-ins injected per cycle
const EVENT_WAIT: Duration = Duration::from_micros(400);
const SNAPSHOT_WAIT: Duration = Duration::from_micros(300);

fn make_runtime(workers: usize, obs: Obs) -> (LegoSdnRuntime, Network, Topology) {
    let topo = Topology::linear(SWITCHES, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(
        LegoSdnConfig {
            isolation: IsolationMode::Local,
            dispatch: DispatchConfig::pipelined().window(BURST).workers(workers),
            obs: ObsConfig::instance(obs).trace_sample(0),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 1, // pre-event snapshot on every delivery
                    history: 2,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            // No invariant checker: commit-time effects equal the declared
            // write set, so the disjoint fastpath stays available.
            checker: None,
            ..LegoSdnConfig::default()
        }
        .build()
        .expect("valid bench config"),
    );
    for i in 0..N_APPS {
        rt.attach(Box::new(ShardWorker::new(
            i,
            SWITCHES,
            EVENT_WAIT,
            SNAPSHOT_WAIT,
        )))
        .unwrap();
    }
    (rt, net, topo)
}

fn inject_burst(net: &mut Network, topo: &Topology) {
    let a = topo.hosts[0].mac;
    for i in 0..BURST as u64 {
        let dst = MacAddr::from_index(900 + i);
        net.inject(a, Packet::ethernet(a, dst)).unwrap();
    }
}

/// Mean microseconds per burst cycle over `n` cycles.
fn time_bursts(rt: &mut LegoSdnRuntime, net: &mut Network, topo: &Topology, n: u32) -> f64 {
    for _ in 0..3 {
        inject_burst(net, topo);
        rt.run_cycle(net); // warm up caches and checkpoint stores
    }
    let start = Instant::now();
    for _ in 0..n {
        inject_burst(net, topo);
        rt.run_cycle(net);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(n)
}

/// The E12 workload (4 isolated stub apps, 8-event bursts, interval-1
/// checkpoints, 300/450 µs waits) at one worker: the sharded runtime
/// must not tax the single-worker window it replaced. Returns the
/// depth8/depth1 speedup for comparison against PR 5's recorded ratio.
mod e12_guard {
    use super::*;

    struct PacketWorker {
        name: String,
        acc: u64,
    }

    impl SdnApp for PacketWorker {
        fn name(&self) -> &str {
            &self.name
        }

        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn]
        }

        fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
            std::thread::sleep(Duration::from_micros(300));
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc.wrapping_add(1);
            for i in 0..256u32 {
                h ^= u64::from(i);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            self.acc = h;
        }

        fn snapshot(&self) -> Vec<u8> {
            std::thread::sleep(Duration::from_micros(450));
            self.acc.to_le_bytes().to_vec()
        }

        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| RestoreError("bad snapshot".into()))?;
            self.acc = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn runtime(depth: usize) -> (LegoSdnRuntime, Network, Topology) {
        let topo = Topology::linear(2, 1);
        let net = Network::new(&topo);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined().window(depth).workers(1),
            obs: ObsConfig::instance(Obs::new()),
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy {
                    interval: 1,
                    history: 2,
                    ..CheckpointPolicy::default()
                },
                policies: PolicyTable::with_default(CompromisePolicy::Absolute),
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        for i in 0..4 {
            rt.attach(Box::new(PacketWorker {
                name: format!("packet-worker-{i}"),
                acc: 0,
            }))
            .unwrap();
        }
        (rt, net, topo)
    }

    fn inject(net: &mut Network, topo: &Topology) {
        let a = topo.hosts[0].mac;
        for i in 0..8u64 {
            net.inject(a, Packet::ethernet(a, MacAddr::from_index(40 + i)))
                .unwrap();
        }
    }

    fn time(depth: usize, n: u32) -> f64 {
        let (mut rt, mut net, topo) = runtime(depth);
        for _ in 0..3 {
            inject(&mut net, &topo);
            rt.run_cycle(&mut net);
        }
        let start = Instant::now();
        for _ in 0..n {
            inject(&mut net, &topo);
            rt.run_cycle(&mut net);
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(n);
        rt.shutdown();
        us
    }

    pub fn depth_ratio() -> (f64, f64, f64) {
        let n = 40u32;
        let d1 = time(1, n);
        let d8 = time(8, n);
        (d1, d8, d1 / d8)
    }
}

fn summary() {
    let n = 20u32;
    let dispatches_per_cycle = (N_APPS * BURST) as f64;
    let mut rows = Vec::new();
    let mut us = Vec::new();
    let mut obs4 = Obs::new();
    for &workers in &[1usize, 2, 4] {
        let obs = Obs::new();
        let (mut rt, mut net, topo) = make_runtime(workers, obs.clone());
        let cycle_us = time_bursts(&mut rt, &mut net, &topo, n);
        rt.shutdown();
        if workers == 4 {
            obs4 = obs;
        }
        us.push((workers, cycle_us));
        rows.push(vec![
            workers.to_string(),
            format!("{cycle_us:.1}"),
            format!("{:.0}", dispatches_per_cycle * 1e6 / cycle_us),
            format!("{:.2}", us[0].1 / cycle_us),
        ]);
    }
    let speedup4 = us[0].1 / us[2].1;
    print_table(
        &format!(
            "E15: {N_APPS} local apps x {BURST}-event bursts, interval-1 \
             checkpoints, disjoint switches"
        ),
        &["workers", "mean us/cycle", "dispatches/s", "speedup"],
        &rows,
    );

    let (e12_d1, e12_d8, e12_ratio) = e12_guard::depth_ratio();
    print_table(
        "E15 regression guard: E12 workload at one worker",
        &["window depth", "mean us/cycle", "speedup"],
        &[
            vec!["1".into(), format!("{e12_d1:.1}"), "1.00".into()],
            vec![
                "8".into(),
                format!("{e12_d8:.1}"),
                format!("{e12_ratio:.2}"),
            ],
        ],
    );

    // The exhibit record: per-worker-count numbers with the 4-worker obs
    // snapshot (worker gauges, per-worker window spans, barrier fastpath/
    // ordered/elided counters) embedded verbatim, plus the E12 guard.
    let obs_json = obs4.json_snapshot();
    let json = format!(
        "{{\n  \"exhibit\": \"worker_scale\",\n  \"apps\": {N_APPS},\n  \
         \"burst\": {BURST},\n  \"switches\": {SWITCHES},\n  \
         \"isolation\": \"local\",\n  \"checkpoint_interval\": 1,\n  \
         \"cycles\": {n},\n  \
         \"workers1_us_per_cycle\": {:.1},\n  \
         \"workers2_us_per_cycle\": {:.1},\n  \
         \"workers4_us_per_cycle\": {:.1},\n  \
         \"speedup_4_workers\": {speedup4:.2},\n  \
         \"e12_depth1_us_per_cycle\": {e12_d1:.1},\n  \
         \"e12_depth8_us_per_cycle\": {e12_d8:.1},\n  \
         \"e12_speedup_workers1\": {e12_ratio:.2},\n  \
         \"obs\": {obs_json}\n}}\n",
        us[0].1, us[1].1, us[2].1,
    );
    match std::fs::write("BENCH_8.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_8.json (4-worker speedup {speedup4:.2}x, e12 guard {e12_ratio:.2}x)"
        ),
        Err(e) => eprintln!("could not write BENCH_8.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_worker_scale");
    g.sample_size(10);
    for &workers in &[1usize, 4] {
        let (mut rt, mut net, topo) = make_runtime(workers, Obs::new());
        g.bench_function(format!("workers{workers}_burst"), |b| {
            b.iter(|| {
                inject_burst(&mut net, &topo);
                rt.run_cycle(&mut net)
            })
        });
        rt.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
