//! E9 — §3.4 atomic network updates: the partial-install problem and the
//! two NetLog modes.
//!
//! An app intends `m` rules but fails after `r`. Three treatments:
//! monolithic (partial rules stay — inconsistent), NetLog buffered (the
//! §4.1 prototype: nothing applied until success — consistent, free
//! abort), NetLog immediate (applied then rolled back — consistent, abort
//! costs one inverse per rule). The table reports residual rules and abort
//! cost for each.

use legosdn::netlog::{NetLog, TxMode};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, BenchmarkId, Criterion};
use legosdn_bench::print_table;
use std::time::Instant;

fn rule(i: u64) -> Message {
    Message::FlowMod(
        FlowMod::add(Match::eth_dst(MacAddr::from_index(500 + i)))
            .action(Action::Output(PortNo::Phys(1))),
    )
}

/// Monolithic semantics: rules execute as emitted; the crash strands them.
fn monolithic_partial(m: u64, r: u64) -> usize {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    for i in 0..r.min(m) {
        net.apply(DatapathId(1 + i % 2), &rule(i)).unwrap();
    }
    // Crash here: remaining m-r rules never issued, installed ones remain.
    net.switches().map(|s| s.table().len()).sum()
}

/// NetLog: open tx, apply r of m, crash → abort. Returns (residual, us).
fn netlog_partial(mode: TxMode, m: u64, r: u64) -> (usize, f64) {
    let topo = Topology::linear(2, 1);
    let mut net = Network::new(&topo);
    let mut nl = NetLog::new(mode);
    let mut tx = nl.begin();
    for i in 0..r.min(m) {
        nl.execute(&mut tx, &mut net, DatapathId(1 + i % 2), &rule(i))
            .unwrap();
    }
    let start = Instant::now();
    nl.abort(tx, &mut net).unwrap();
    let us = start.elapsed().as_secs_f64() * 1e6;
    (net.switches().map(|s| s.table().len()).sum(), us)
}

fn summary() {
    let mut rows = Vec::new();
    for (m, r) in [(8u64, 3u64), (32, 16), (128, 100)] {
        let mono = monolithic_partial(m, r);
        let (buf_res, buf_us) = netlog_partial(TxMode::Buffered, m, r);
        let (imm_res, imm_us) = netlog_partial(TxMode::Immediate, m, r);
        rows.push(vec![
            format!("{r}/{m}"),
            mono.to_string(),
            buf_res.to_string(),
            format!("{buf_us:.1}"),
            imm_res.to_string(),
            format!("{imm_us:.1}"),
        ]);
    }
    print_table(
        "E9: app crashes after installing r of m rules",
        &[
            "r/m",
            "mono residual",
            "buffered residual",
            "buffered abort us",
            "immediate residual",
            "immediate abort us",
        ],
        &rows,
    );
    eprintln!("buffered mode aborts for free but cannot serve reads mid-transaction;");
    eprintln!("immediate mode pays one inverse per applied rule (see E4).\n");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_atomic_updates");
    for r in [16u64, 100] {
        g.bench_with_input(BenchmarkId::new("buffered_abort", r), &r, |b, &r| {
            b.iter(|| netlog_partial(TxMode::Buffered, r + 8, r));
        });
        g.bench_with_input(BenchmarkId::new("immediate_abort", r), &r, |b, &r| {
            b.iter(|| netlog_partial(TxMode::Immediate, r + 8, r));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
