//! E11 — pipelined vs sequential event dispatch (PR 4 tentpole).
//!
//! Four isolated apps subscribe to the same event. Sequential dispatch
//! pays one blocking RPC round-trip per app — cost is the *sum* of app
//! processing times. Pipelined dispatch fans the event out first
//! (`AppVisorProxy::fanout_send`), so the stubs process concurrently and
//! the cycle costs roughly the *slowest* app. The determinism
//! integration test proves both modes leave identical network state;
//! this bench measures what the overlap buys. Results (and the
//! pipelined/sequential ratio) land in `BENCH_4.json`.
//!
//! The per-event app cost here is a fixed service wait (an app blocking
//! on an external lookup — policy server, path database), because that
//! is what overlap recovers regardless of host core count. Pure CPU
//! burn additionally overlaps on multi-core hosts, but a single-core
//! host serializes it in either mode, which would make the bench
//! measure the machine rather than the dispatch design.

use legosdn::controller::app::RestoreError;
use legosdn::crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use std::time::{Duration, Instant};

/// A Tick-subscribed app with a fixed per-event cost — a blocking
/// service wait plus a little hashing, the stand-in for real app work
/// (an external policy lookup, then folding the answer into local
/// state) that dominates dispatch time in loaded controllers.
struct TickWorker {
    name: String,
    acc: u64,
    wait: Duration,
}

impl TickWorker {
    fn new(id: usize, wait: Duration) -> Self {
        TickWorker {
            name: format!("tick-worker-{id}"),
            acc: 0,
            wait,
        }
    }
}

impl SdnApp for TickWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::Tick]
    }

    fn on_event(&mut self, _event: &Event, _ctx: &mut Ctx<'_>) {
        // The external lookup: a fixed wait, identical in both dispatch
        // modes. Stubs wait on their own threads, so pipelined dispatch
        // overlaps these; sequential dispatch sums them.
        std::thread::sleep(self.wait);
        // Fold the "answer" into app state (FNV-1a) so deliveries have a
        // deterministic state effect for snapshot/restore to carry.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.acc;
        for i in 0..1024u32 {
            h ^= u64::from(i);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.acc = h;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.acc.to_le_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| RestoreError("bad snapshot".into()))?;
        self.acc = u64::from_le_bytes(arr);
        Ok(())
    }
}

const N_APPS: usize = 4;
const WAIT: Duration = Duration::from_micros(300); // per-event service wait

fn make_runtime(dispatch: DispatchMode) -> (LegoSdnRuntime, Network) {
    let topo = Topology::linear(2, 1);
    let net = Network::new(&topo);
    let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
        isolation: IsolationMode::Channel,
        dispatch: DispatchConfig {
            mode: dispatch,
            ..DispatchConfig::default()
        },
        obs: ObsConfig::instance(Obs::new()),
        crashpad: CrashPadConfig {
            checkpoints: CheckpointPolicy {
                interval: 64, // keep checkpoint cost out of the timing
                history: 2,
                ..CheckpointPolicy::default()
            },
            policies: PolicyTable::with_default(CompromisePolicy::Absolute),
            transform_direction: TransformDirection::Decompose,
        },
        ..LegoSdnConfig::default()
    });
    for i in 0..N_APPS {
        rt.attach(Box::new(TickWorker::new(i, WAIT))).unwrap();
    }
    (rt, net)
}

/// Mean microseconds per `tick_apps` cycle over `n` cycles.
fn time_ticks(rt: &mut LegoSdnRuntime, net: &mut Network, n: u32) -> f64 {
    for _ in 0..20 {
        rt.tick_apps(net); // warm up stubs, caches, checkpoint stores
    }
    let start = Instant::now();
    for _ in 0..n {
        rt.tick_apps(net);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(n)
}

fn summary() {
    let n = 200u32;
    let (mut rt, mut net) = make_runtime(DispatchMode::Sequential);
    let seq_us = time_ticks(&mut rt, &mut net, n);
    rt.shutdown();
    let (mut rt, mut net) = make_runtime(DispatchMode::Pipelined);
    let pipe_us = time_ticks(&mut rt, &mut net, n);
    rt.shutdown();
    let ratio = seq_us / pipe_us;

    print_table(
        &format!("E11: tick_apps cycle, {N_APPS} isolated Tick subscribers"),
        &["dispatch mode", "mean us/cycle", "speedup"],
        &[
            vec!["sequential".into(), format!("{seq_us:.1}"), "1.00".into()],
            vec![
                "pipelined".into(),
                format!("{pipe_us:.1}"),
                format!("{ratio:.2}"),
            ],
        ],
    );

    // The exhibit record the ISSUE asks for: fanout-vs-sequential numbers
    // with the ratio, written explicitly (the harness's own JSON keys off
    // the executable name).
    let json = format!(
        "{{\n  \"exhibit\": \"pipelined_dispatch\",\n  \"apps\": {N_APPS},\n  \
         \"isolation\": \"channel\",\n  \"cycles\": {n},\n  \
         \"sequential_us_per_cycle\": {seq_us:.1},\n  \
         \"pipelined_us_per_cycle\": {pipe_us:.1},\n  \
         \"speedup\": {ratio:.2}\n}}\n"
    );
    match std::fs::write("BENCH_4.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_4.json (speedup {ratio:.2}x)"),
        Err(e) => eprintln!("could not write BENCH_4.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_dispatch_pipeline");
    g.sample_size(30);
    let (mut rt, mut net) = make_runtime(DispatchMode::Sequential);
    g.bench_function("sequential_tick", |b| b.iter(|| rt.tick_apps(&mut net)));
    rt.shutdown();
    let (mut rt, mut net) = make_runtime(DispatchMode::Pipelined);
    g.bench_function("pipelined_tick", |b| b.iter(|| rt.tick_apps(&mut net)));
    rt.shutdown();
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
