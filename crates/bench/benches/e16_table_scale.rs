//! E16 — indexed flow-table scale (PR 9 tentpole).
//!
//! Two exhibits, recorded into `BENCH_9.json`:
//!
//! 1. **Lookup microbench.** A 4096-entry table (4000 exact TCP 5-tuples
//!    fronted by a 96-entry wildcard tail at lower priorities) is built
//!    identically into the two-tier indexed [`FlowTable`] and the retained
//!    [`LinearFlowTable`] reference. A seeded, zipf-skewed packet stream
//!    (90% hits on installed flows, 10% misses) is replayed through both;
//!    we record lookups/sec and the p99 latency of 64-lookup batches. The
//!    indexed table resolves hits with one deterministic hash probe plus a
//!    wildcard scan that stops at the first lower-ranked candidate, so the
//!    acceptance bar is ≥10x over the linear scan.
//! 2. **Fat-tree replay.** The trace-driven workload engine replays a
//!    flash-crowd stream over `Topology::fat_tree(30)` — 1125 switches —
//!    against a minimal reactive controller, exercising table churn
//!    (add/expire/lookup) at datacenter scale.

use legosdn::netsim::{FlowTable, LinearFlowTable};
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, Criterion};
use legosdn_bench::print_table;
use legosdn_bench::workloads::{flash_crowd, replay_reactive, skewed_index};
use legosdn_testkit::Rng;
use std::time::Instant;

const EXACT_FLOWS: usize = 4000;
const WILD_TAIL: usize = 96;
const STREAM_LEN: usize = 4096;
const BATCH: usize = 64;
const FAT_TREE_K: usize = 30; // (k/2)^2 + k^2 = 1125 switches
const REPLAY_EVENTS: usize = 10_000;

/// Distinct TCP 5-tuples; flow `i` is fully determined by `i`.
fn flow_packet(i: usize) -> (Packet, PortNo) {
    let i = i as u64;
    let pkt = Packet::tcp(
        MacAddr::from_index(1 + i % 97),
        MacAddr::from_index(200 + i % 89),
        Ipv4Addr::from_index(1 + (i % 97) as u32),
        Ipv4Addr::from_index(200 + (i % 89) as u32),
        1024 + (i % 613) as u16,
        80,
    );
    (pkt, PortNo::Phys(1 + (i % 7) as u16))
}

/// Install the same 4k-entry population into any table via its `apply`.
fn populate(mut apply: impl FnMut(&FlowMod)) {
    for i in 0..EXACT_FLOWS {
        let (pkt, in_port) = flow_packet(i);
        let fm =
            FlowMod::add(Match::from_packet(&pkt, in_port)).action(Action::Output(PortNo::Phys(2)));
        apply(&fm);
    }
    // A lower-priority wildcard tail: the rules reactive controllers leave
    // behind (per-destination, per-port). None of them shadow the exact
    // population, all of them sit in the wildcard tier.
    for i in 0..WILD_TAIL {
        let mut mat = Match::eth_dst(MacAddr::from_index(10_000 + i as u64));
        if i % 3 == 0 {
            mat.tp_dst = Some(80);
            mat.eth_type = Some(EtherType::Ipv4);
        }
        let fm = FlowMod::add(mat)
            .priority(10 + (i % 5) as u16)
            .action(Action::Output(PortNo::Phys(3)));
        apply(&fm);
    }
}

fn build_tables() -> (FlowTable, LinearFlowTable) {
    let mut indexed = FlowTable::default();
    let mut linear = LinearFlowTable::default();
    populate(|fm| {
        indexed.apply(fm, SimTime::ZERO).unwrap();
    });
    populate(|fm| {
        linear.apply(fm, SimTime::ZERO).unwrap();
    });
    (indexed, linear)
}

/// A seeded lookup stream: zipf-skewed hits on the installed flows plus
/// 10% misses (tuples never installed).
fn lookup_stream(seed: u64) -> Vec<(Packet, PortNo)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..STREAM_LEN)
        .map(|_| {
            if rng.gen_bool(0.9) {
                // Skew within a random window so hot flows dominate without
                // pinning a single bucket.
                let base = rng.gen_range(0..EXACT_FLOWS);
                let off = skewed_index(&mut rng, 64);
                flow_packet((base + off) % EXACT_FLOWS)
            } else {
                let (pkt, _) = flow_packet(rng.gen_range(0..EXACT_FLOWS));
                (pkt, PortNo::Phys(15)) // wrong in_port: guaranteed miss
            }
        })
        .collect()
}

struct LookupResult {
    lookups_per_sec: f64,
    p99_batch_ns: f64,
    hits: u64,
}

/// Replay `stream` `rounds` times through `lookup`, timing each
/// `BATCH`-lookup chunk.
fn time_lookups(
    stream: &[(Packet, PortNo)],
    rounds: usize,
    mut lookup: impl FnMut(&Packet, PortNo, SimTime) -> bool,
) -> LookupResult {
    let mut batch_ns = Vec::with_capacity(rounds * STREAM_LEN / BATCH);
    let mut hits = 0u64;
    let mut total = 0usize;
    let start = Instant::now();
    for r in 0..rounds {
        let now = SimTime::from_secs(r as u64);
        for chunk in stream.chunks(BATCH) {
            let t0 = Instant::now();
            for (pkt, in_port) in chunk {
                if lookup(pkt, *in_port, now) {
                    hits += 1;
                }
                total += 1;
            }
            batch_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    batch_ns.sort_by(f64::total_cmp);
    let p99_idx = ((batch_ns.len() as f64) * 0.99) as usize;
    LookupResult {
        lookups_per_sec: total as f64 / elapsed,
        p99_batch_ns: batch_ns[p99_idx.min(batch_ns.len() - 1)],
        hits,
    }
}

fn summary() {
    let (mut indexed, mut linear) = build_tables();
    let stream = lookup_stream(42);

    // Warm both implementations once, and check they agree while at it.
    for (pkt, in_port) in &stream {
        assert_eq!(
            indexed.peek(pkt, *in_port).cloned(),
            linear.peek(pkt, *in_port).cloned(),
            "indexed and linear disagree on the bench stream"
        );
    }

    let rounds = 20;
    let lin = time_lookups(&stream, 2, |p, ip, now| linear.lookup(p, ip, now).is_some());
    let idx = time_lookups(&stream, rounds, |p, ip, now| {
        indexed.lookup(p, ip, now).is_some()
    });
    let speedup = idx.lookups_per_sec / lin.lookups_per_sec;
    print_table(
        &format!(
            "E16: lookups over {EXACT_FLOWS} exact + {WILD_TAIL} wildcard entries \
             (skewed stream, 10% misses)"
        ),
        &["table", "lookups/s", "p99 ns/64-batch", "speedup"],
        &[
            vec![
                "linear".into(),
                format!("{:.0}", lin.lookups_per_sec),
                format!("{:.0}", lin.p99_batch_ns),
                "1.00".into(),
            ],
            vec![
                "indexed".into(),
                format!("{:.0}", idx.lookups_per_sec),
                format!("{:.0}", idx.p99_batch_ns),
                format!("{speedup:.2}"),
            ],
        ],
    );
    assert_eq!(
        idx.hits / rounds as u64,
        lin.hits / 2,
        "hit counts diverge between implementations"
    );

    // Datacenter-scale replay: 1125 switches, reactive exact-match rules.
    let topo = Topology::fat_tree(FAT_TREE_K);
    let n_switches = topo.switches.len();
    let mut net = Network::new(&topo);
    let w = flash_crowd(&topo, 11, REPLAY_EVENTS);
    let t0 = Instant::now();
    let stats = replay_reactive(&mut net, &w, 10, 1000);
    let replay_secs = t0.elapsed().as_secs_f64();
    let events_per_sec = stats.events as f64 / replay_secs;
    print_table(
        &format!("E16: flash-crowd replay over fat_tree({FAT_TREE_K}) = {n_switches} switches"),
        &["events", "packet-ins", "flow-mods", "delivered", "events/s"],
        &[vec![
            stats.events.to_string(),
            stats.packet_ins.to_string(),
            stats.flow_mods.to_string(),
            stats.delivered.to_string(),
            format!("{events_per_sec:.0}"),
        ]],
    );

    let obs_json = Obs::global().json_snapshot();
    let json = format!(
        "{{\n  \"exhibit\": \"table_scale\",\n  \
         \"exact_entries\": {EXACT_FLOWS},\n  \"wildcard_entries\": {WILD_TAIL},\n  \
         \"stream_len\": {STREAM_LEN},\n  \
         \"linear_lookups_per_sec\": {:.0},\n  \
         \"indexed_lookups_per_sec\": {:.0},\n  \
         \"linear_p99_batch_ns\": {:.0},\n  \
         \"indexed_p99_batch_ns\": {:.0},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"fat_tree_k\": {FAT_TREE_K},\n  \"switches\": {n_switches},\n  \
         \"replay_events\": {},\n  \"replay_packet_ins\": {},\n  \
         \"replay_flow_mods\": {},\n  \"replay_delivered\": {},\n  \
         \"replay_events_per_sec\": {events_per_sec:.0},\n  \
         \"obs\": {obs_json}\n}}\n",
        lin.lookups_per_sec,
        idx.lookups_per_sec,
        lin.p99_batch_ns,
        idx.p99_batch_ns,
        stats.events,
        stats.packet_ins,
        stats.flow_mods,
        stats.delivered,
    );
    match std::fs::write("BENCH_9.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_9.json (indexed speedup {speedup:.2}x)"),
        Err(e) => eprintln!("could not write BENCH_9.json: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    let (mut indexed, mut linear) = build_tables();
    let stream = lookup_stream(42);
    let mut g = c.benchmark_group("e16_table_scale");
    g.sample_size(10);
    g.bench_function("linear_4k_stream", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for (pkt, in_port) in &stream {
                hits += u32::from(linear.lookup(pkt, *in_port, SimTime::ZERO).is_some());
            }
            hits
        })
    });
    g.bench_function("indexed_4k_stream", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for (pkt, in_port) in &stream {
                hits += u32::from(indexed.lookup(pkt, *in_port, SimTime::ZERO).is_some());
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
