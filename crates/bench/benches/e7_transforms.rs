//! E7 — §3.3: equivalence-compromise transformations.
//!
//! Correctness (the transformed link-downs cover exactly the dead switch's
//! links, both rewrite directions hold) and cost (transform latency scales
//! with switch degree; full equivalence recovery vs plain ignore).

use legosdn::controller::services::TopologyView;
use legosdn::crashpad::{transform, TransformDirection};
use legosdn::netsim::Endpoint;
use legosdn::prelude::*;
use legosdn_bench::harness::{criterion_group, BenchmarkId, Criterion};
use legosdn_bench::print_table;
use std::time::Instant;

/// A star topology view: the hub switch has `degree` links.
fn star_view(degree: u64) -> TopologyView {
    let mut t = TopologyView::default();
    t.switch_up(DatapathId(1), vec![]);
    for i in 0..degree {
        let leaf = DatapathId(10 + i);
        t.switch_up(leaf, vec![]);
        t.link_up(
            Endpoint::new(DatapathId(1), (i + 1) as u16),
            Endpoint::new(leaf, 1),
        );
    }
    t
}

fn summary() {
    let mut rows = Vec::new();
    for degree in [2u64, 4, 8, 16, 48] {
        let topo = star_view(degree);
        let ev = Event::SwitchDown(DatapathId(1));
        let iters = 10_000;
        let start = Instant::now();
        let mut produced = 0usize;
        for _ in 0..iters {
            let out = transform(&ev, &topo, TransformDirection::Decompose).unwrap();
            produced = out.len();
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        rows.push(vec![
            degree.to_string(),
            produced.to_string(),
            format!("{ns:.0}"),
        ]);
    }
    print_table(
        "E7: switch-down → link-downs decomposition vs switch degree",
        &["degree", "events produced", "ns/transform"],
        &rows,
    );

    // Round-trip coverage check: decompose a switch-down, generalize each
    // resulting link-down, confirm the victim switch is among the answers.
    let topo = star_view(4);
    let downs = transform(
        &Event::SwitchDown(DatapathId(1)),
        &topo,
        TransformDirection::Decompose,
    )
    .unwrap();
    let mut generalized_hits = 0;
    for d in &downs {
        if let Some(out) = transform(d, &topo, TransformDirection::Generalize) {
            if out.iter().any(|e| matches!(e, Event::SwitchDown(_))) {
                generalized_hits += 1;
            }
        }
    }
    eprintln!(
        "round-trip: {generalized_hits}/{} link-downs generalize back to a switch-down\n",
        downs.len()
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_transforms");
    for degree in [4u64, 16, 48] {
        let topo = star_view(degree);
        let ev = Event::SwitchDown(DatapathId(1));
        g.bench_with_input(
            BenchmarkId::new("decompose_switch_down", degree),
            &degree,
            |b, _| {
                b.iter(|| transform(&ev, &topo, TransformDirection::Decompose));
            },
        );
    }
    let topo = star_view(8);
    let ld = Event::LinkDown {
        a: Endpoint::new(DatapathId(1), 1),
        b: Endpoint::new(DatapathId(10), 1),
    };
    g.bench_function("generalize_link_down", |b| {
        b.iter(|| transform(&ld, &topo, TransformDirection::Generalize));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    summary();
    benches();
    legosdn_bench::harness::Criterion::default()
        .configure_from_args()
        .final_summary();
}
