//! Minimal causal sequences over SDN event histories — the STS technique
//! the paper plans to adopt for failures that span multiple transactions
//! (§5: "we plan on extending LegoSDN to read a history of snapshots [...]
//! and use techniques like STS to detect the exact set of events that
//! induced the crash. STS allows us to determine which checkpoint to roll
//! back the application to.")
//!
//! The core is `ddmin` (Zeller's delta debugging) over an event history:
//! given a crash reproduced by replaying `H` against a fixed starting
//! state, find a 1-minimal subsequence that still reproduces it. The
//! [`oracle::AppReplayOracle`] replays candidate subsequences into fresh
//! app instances with panic containment.

pub mod ddmin;
pub mod oracle;

pub use ddmin::{ddmin, MinimizeError, MinimizeReport};
pub use oracle::{AppReplayOracle, ReplayOracle};
