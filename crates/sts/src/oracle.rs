//! Replay oracles: decide whether an event subsequence reproduces a crash.

use legosdn_controller::app::{Ctx, SdnApp};
use legosdn_controller::event::Event;
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Answers "does replaying these events reproduce the failure?".
pub trait ReplayOracle {
    /// Replay `events` against a fresh copy of the failure context.
    fn reproduces(&mut self, events: &[Event]) -> bool;
}

/// An oracle that replays candidate subsequences into app instances built
/// by a factory — optionally seeded from a checkpoint, which is exactly how
/// §5 combines STS with the checkpoint history ("STS allows us to determine
/// which checkpoint to roll back the application to").
pub struct AppReplayOracle<F>
where
    F: FnMut() -> Box<dyn SdnApp>,
{
    factory: F,
    /// Snapshot to restore into each fresh instance before replay (`None`
    /// replays from the app's initial state).
    pub start_from: Option<Vec<u8>>,
    pub topology: TopologyView,
    pub devices: DeviceView,
    /// Replays performed so far.
    pub replays: usize,
}

impl<F> AppReplayOracle<F>
where
    F: FnMut() -> Box<dyn SdnApp>,
{
    /// An oracle over fresh instances from `factory`.
    pub fn new(factory: F, topology: TopologyView, devices: DeviceView) -> Self {
        AppReplayOracle {
            factory,
            start_from: None,
            topology,
            devices,
            replays: 0,
        }
    }

    /// Seed each replay from a checkpoint.
    #[must_use]
    pub fn starting_from(mut self, snapshot: Vec<u8>) -> Self {
        self.start_from = Some(snapshot);
        self
    }
}

impl<F> ReplayOracle for AppReplayOracle<F>
where
    F: FnMut() -> Box<dyn SdnApp>,
{
    fn reproduces(&mut self, events: &[Event]) -> bool {
        self.replays += 1;
        let mut app = (self.factory)();
        if let Some(snapshot) = &self.start_from {
            if app.restore(snapshot).is_err() {
                return false;
            }
        }
        for ev in events {
            let mut ctx = Ctx::new(SimTime::ZERO, &self.topology, &self.devices);
            let ok = catch_unwind(AssertUnwindSafe(|| {
                app.on_event(ev, &mut ctx);
            }));
            if ok.is_err() {
                return true; // crash reproduced
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddmin::ddmin;
    use legosdn_controller::app::RestoreError;
    use legosdn_controller::event::EventKind;
    use legosdn_openflow::prelude::DatapathId;

    /// Crashes when it has seen `fuse` switch-down events (a cumulative,
    /// multi-event bug — the §5 motivating case).
    struct FuseApp {
        seen: u32,
        fuse: u32,
    }

    impl SdnApp for FuseApp {
        fn name(&self) -> &str {
            "fuse"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            EventKind::ALL.to_vec()
        }
        fn on_event(&mut self, event: &Event, _ctx: &mut Ctx<'_>) {
            if matches!(event, Event::SwitchDown(_)) {
                self.seen += 1;
                if self.seen >= self.fuse {
                    panic!("fuse blown at {}", self.seen);
                }
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.seen =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn mixed_history() -> Vec<Event> {
        // 3 switch-downs buried in noise.
        let mut h = Vec::new();
        for i in 0..30u64 {
            h.push(Event::SwitchUp(DatapathId(i)));
            if i % 10 == 3 {
                h.push(Event::SwitchDown(DatapathId(i)));
            }
        }
        h
    }

    #[test]
    fn cumulative_bug_minimizes_to_the_fuse_count() {
        let history = mixed_history();
        let mut oracle = AppReplayOracle::new(
            || Box::new(FuseApp { seen: 0, fuse: 3 }),
            TopologyView::default(),
            DeviceView::default(),
        );
        let report = ddmin(&history, &mut oracle).unwrap();
        // Minimal sequence: exactly the 3 switch-downs.
        assert_eq!(report.minimal.len(), 3);
        assert!(report
            .minimal
            .iter()
            .all(|e| matches!(e, Event::SwitchDown(_))));
        assert!(oracle.replays > 0);
    }

    #[test]
    fn checkpoint_seeded_replay_needs_fewer_events() {
        // Seed from a checkpoint where 2 switch-downs were already seen:
        // one more reproduces the crash.
        let history = mixed_history();
        let snapshot = 2u32.to_be_bytes().to_vec();
        let mut oracle = AppReplayOracle::new(
            || Box::new(FuseApp { seen: 0, fuse: 3 }),
            TopologyView::default(),
            DeviceView::default(),
        )
        .starting_from(snapshot);
        let report = ddmin(&history, &mut oracle).unwrap();
        assert_eq!(report.minimal.len(), 1, "{:?}", report.minimal);
    }

    #[test]
    fn healthy_app_is_not_reproducible() {
        let history = vec![Event::SwitchUp(DatapathId(1))];
        let mut oracle = AppReplayOracle::new(
            || Box::new(FuseApp { seen: 0, fuse: 100 }),
            TopologyView::default(),
            DeviceView::default(),
        );
        assert!(ddmin(&history, &mut oracle).is_err());
    }
}
