//! Zeller's `ddmin` delta-debugging algorithm over event sequences.

use crate::oracle::ReplayOracle;
use legosdn_controller::event::Event;
use std::fmt;

/// Result of a minimization.
#[derive(Clone, Debug, PartialEq)]
pub struct MinimizeReport {
    /// A 1-minimal failing subsequence: removing any single event makes the
    /// failure disappear.
    pub minimal: Vec<Event>,
    /// Oracle invocations (replays) consumed.
    pub replays: usize,
    /// Length of the input history.
    pub original_len: usize,
}

/// Minimization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MinimizeError {
    /// The full history does not reproduce the failure — nothing to
    /// minimize (the bug is non-deterministic or externally triggered).
    NotReproducible,
    /// The history was empty.
    EmptyHistory,
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::NotReproducible => {
                write!(f, "full history does not reproduce the failure")
            }
            MinimizeError::EmptyHistory => write!(f, "empty event history"),
        }
    }
}

impl std::error::Error for MinimizeError {}

/// Find a 1-minimal subsequence of `history` that still makes
/// `oracle.reproduces` return true.
pub fn ddmin(
    history: &[Event],
    oracle: &mut dyn ReplayOracle,
) -> Result<MinimizeReport, MinimizeError> {
    if history.is_empty() {
        return Err(MinimizeError::EmptyHistory);
    }
    let mut replays = 0usize;
    let mut test = |events: &[Event], replays: &mut usize| -> bool {
        *replays += 1;
        oracle.reproduces(events)
    };
    if !test(history, &mut replays) {
        return Err(MinimizeError::NotReproducible);
    }

    let mut current: Vec<Event> = history.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunks = partition(&current, n);
        let mut reduced = false;

        // Try each subset alone.
        for chunk in &chunks {
            if test(chunk, &mut replays) {
                current = chunk.clone();
                n = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // Try each complement.
        if n > 2 {
            for i in 0..chunks.len() {
                let complement: Vec<Event> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, c)| c.iter().cloned())
                    .collect();
                if test(&complement, &mut replays) {
                    current = complement;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            continue;
        }

        // Refine granularity.
        if n < current.len() {
            n = (2 * n).min(current.len());
        } else {
            break;
        }
    }

    Ok(MinimizeReport {
        minimal: current,
        replays,
        original_len: history.len(),
    })
}

/// Split `events` into `n` nearly-equal contiguous chunks.
fn partition(events: &[Event], n: usize) -> Vec<Vec<Event>> {
    let n = n.min(events.len()).max(1);
    let base = events.len() / n;
    let extra = events.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut idx = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push(events[idx..idx + len].to_vec());
        idx += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::DatapathId;

    fn ev(d: u64) -> Event {
        Event::SwitchUp(DatapathId(d))
    }

    /// Oracle: fails iff the sequence contains all of `required` in order.
    struct SubsetOracle {
        required: Vec<Event>,
    }

    impl ReplayOracle for SubsetOracle {
        fn reproduces(&mut self, events: &[Event]) -> bool {
            let mut it = events.iter();
            self.required.iter().all(|r| it.any(|e| e == r))
        }
    }

    #[test]
    fn partition_covers_everything() {
        let events: Vec<Event> = (0..10).map(ev).collect();
        for n in 1..=10 {
            let chunks = partition(&events, n);
            assert_eq!(chunks.len(), n);
            let flat: Vec<Event> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, events);
        }
    }

    #[test]
    fn single_culprit_is_found() {
        let history: Vec<Event> = (0..64).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: vec![ev(37)],
        };
        let report = ddmin(&history, &mut oracle).unwrap();
        assert_eq!(report.minimal, vec![ev(37)]);
        assert_eq!(report.original_len, 64);
        // Sanity: far fewer replays than brute force (2^64).
        assert!(report.replays < 200, "used {} replays", report.replays);
    }

    #[test]
    fn pair_of_culprits_is_found() {
        let history: Vec<Event> = (0..32).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: vec![ev(5), ev(29)],
        };
        let report = ddmin(&history, &mut oracle).unwrap();
        assert_eq!(report.minimal, vec![ev(5), ev(29)]);
    }

    #[test]
    fn three_scattered_culprits() {
        let history: Vec<Event> = (0..48).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: vec![ev(1), ev(24), ev(47)],
        };
        let report = ddmin(&history, &mut oracle).unwrap();
        assert_eq!(report.minimal, vec![ev(1), ev(24), ev(47)]);
    }

    #[test]
    fn whole_history_needed_stays_whole() {
        let history: Vec<Event> = (0..8).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: history.clone(),
        };
        let report = ddmin(&history, &mut oracle).unwrap();
        assert_eq!(report.minimal.len(), 8);
    }

    #[test]
    fn non_reproducible_is_reported() {
        let history: Vec<Event> = (0..4).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: vec![ev(99)],
        };
        assert_eq!(
            ddmin(&history, &mut oracle),
            Err(MinimizeError::NotReproducible)
        );
    }

    #[test]
    fn empty_history_is_reported() {
        let mut oracle = SubsetOracle { required: vec![] };
        assert_eq!(ddmin(&[], &mut oracle), Err(MinimizeError::EmptyHistory));
    }

    #[test]
    fn minimality_property_holds() {
        // For every event in the minimal sequence, removing it breaks
        // reproduction (1-minimality).
        let history: Vec<Event> = (0..40).map(ev).collect();
        let mut oracle = SubsetOracle {
            required: vec![ev(3), ev(17), ev(33)],
        };
        let report = ddmin(&history, &mut oracle).unwrap();
        for skip in 0..report.minimal.len() {
            let without: Vec<Event> = report
                .minimal
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, e)| e.clone())
                .collect();
            assert!(
                !oracle.reproduces(&without),
                "removing element {skip} still reproduces — not 1-minimal"
            );
        }
    }
}
