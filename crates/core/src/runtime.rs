//! The LegoSDN runtime: the re-designed controller of paper §3.
//!
//! Composition (Figure 1, right side):
//!
//! ```text
//!   Network ⇄ EventTranslator (controller core)
//!                 │ events                    ▲ commands
//!                 ▼                           │
//!            Crash-Pad dispatch ──► NetLog transactions ──► invariant gate
//!                 │                                               │
//!            AppVisor proxy ⇄ stubs (isolated apps)        byzantine recovery
//! ```
//!
//! Per app-event dispatch: checkpoint if due → deliver through the app's
//! fault domain → on fail-stop, Crash-Pad recovers (restore + ignore/
//! transform per policy) → the app's commands run inside a NetLog
//! transaction → byzantine output is caught by the invariant checker and
//! the transaction rolled back, after which Crash-Pad recovers the app's
//! internal state too.
//!
//! Crashes never propagate: the controller core and every other app keep
//! running — the paper's two fate-sharing relationships are gone.
//!
//! Apps are partitioned across `dispatch.workers` shards (DESIGN.md §13):
//! each [`crate::workers::WorkerShard`] owns its own AppVisor proxy and
//! Crash-Pad, and under pipelined dispatch each worker runs the window
//! machinery on its own thread, committing through the shared
//! [`legosdn_netlog::CommitBarrier`] so the output stays bit-identical to
//! the single-threaded reference.

use crate::config::{DispatchMode, IsolationMode, LegoSdnConfig, ResourceLimits};
use crate::host::{Host, ProxyAdapter};
use crate::workers::{
    commit_outcome, delivery_label, select_app, AppRecord, CommitLane, ShardApp, ShardCtx,
    ShardRouter, SlotStore, WindowSlot, WorkerRun, WorkerShard, TXS_PER_POS,
};
use legosdn_appvisor::{AppHandle, AppVisorProxy, TransportKind};
use legosdn_controller::app::SdnApp;
use legosdn_controller::event::Event;
use legosdn_controller::translate::EventTranslator;
use legosdn_crashpad::{CrashPad, DeliveryResult, DispatchResult, LocalSandbox, RecoverableApp};
use legosdn_invariants::Checker;
use legosdn_netlog::{CommitBarrier, NetLog};
use legosdn_obs::{Obs, TraceId};
use legosdn_openflow::prelude::Message;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Identifier of an attached app.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AppId(pub usize);

/// Runtime-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// App-facing events produced by translation.
    pub events_translated: u64,
    /// (app, event) deliveries attempted.
    pub dispatches: u64,
    /// Commands executed against the network.
    pub commands_executed: u64,
    /// Commands suppressed by resource limits.
    pub commands_suppressed: u64,
    /// Fail-stop failures recovered.
    pub failstop_recoveries: u64,
    /// Byzantine outputs blocked (transaction aborted / buffer dropped).
    pub byzantine_blocked: u64,
    /// Apps currently dead (No-Compromise).
    pub apps_dead: u64,
    /// Events skipped because an app was dead or suspended.
    pub events_skipped: u64,
    /// Apps suspended by resource limits.
    pub apps_suspended: u64,
    /// Controller upgrades performed.
    pub upgrades: u64,
    /// `run_cycle`/`tick_apps` invocations.
    pub cycles: u64,
}

/// Report of one run cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LegoCycleReport {
    pub events: usize,
    pub commands: usize,
    pub recoveries: usize,
    pub byzantine_blocked: usize,
    /// Wall-clock duration of the cycle in nanoseconds.
    pub elapsed_ns: u64,
}

/// Per-app resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    pub events_consumed: u64,
    pub commands_emitted: u64,
    pub last_snapshot_bytes: u64,
}

/// Why an app is not being scheduled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppStatus {
    Running,
    /// Dead under a No-Compromise policy.
    Dead,
    /// Suspended by a resource limit.
    Suspended(&'static str),
}

/// Attach failure.
#[derive(Clone, Debug, PartialEq)]
pub struct AttachError(pub String);

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attach failed: {}", self.0)
    }
}

impl std::error::Error for AttachError {}

/// A [`ShardCtx`] over one of `self`'s shards, splitting the borrow so
/// sibling fields (`report`, `netlog`, `translator`) stay usable in the
/// same expression.
macro_rules! shard_cx {
    ($self:ident, $w:expr) => {
        ShardCtx {
            shard: &mut $self.shards[$w],
            stats: &mut $self.stats,
            obs: &$self.obs,
            checker: $self.checker.as_ref(),
            shutdown_on_no_compromise: $self.config.shutdown_network_on_no_compromise,
        }
    };
}

/// The LegoSDN runtime.
pub struct LegoSdnRuntime {
    config: LegoSdnConfig,
    translator: EventTranslator,
    netlog: NetLog,
    checker: Option<Checker>,
    /// Worker shards in id order; apps are hashed onto them at attach.
    shards: Vec<WorkerShard>,
    /// Global attach index → (shard, local index).
    router: ShardRouter,
    stats: RuntimeStats,
    obs: Obs,
    /// Translated events seen by the trace sampler (monotonic; doubles as
    /// the `seq` half of [`TraceId`], so ids stay unique across cycles).
    trace_seen: u64,
    /// First transaction id of the next cycle. Every dispatch mode
    /// advances it identically (`events × apps × TXS_PER_POS` per cycle),
    /// so transaction ids are a pure function of the event/app position —
    /// the invariant that lets sharded fastpath commits land out of order
    /// with a txlog that still reads in sequential order.
    txid_cursor: u64,
    /// Some committed batch carried a `send_flow_removed` FlowMod; table
    /// entries persist, so the commit fastpath stays off for all later
    /// cycles (an Add displacing a notify-flagged entry would enqueue a
    /// `FlowRemoved` out of order).
    notify_flows_seen: bool,
    /// Per-app-name dispatch-cost EWMA (nanoseconds), integrated from
    /// the `dispatch_app_ns` histograms the workers feed. Drives the
    /// load-aware shard balancer (DESIGN.md §15). Placement is
    /// residue-independent (commits are admitted in global position
    /// order), so this timing-derived signal cannot perturb the
    /// determinism contract.
    cost_ewma: HashMap<String, u64>,
    /// Last-seen (sum, count) per `dispatch_app_ns` histogram, so each
    /// EWMA update integrates only the newest observations.
    cost_prev: HashMap<String, (u64, u64)>,
}

impl LegoSdnRuntime {
    /// A runtime with the given configuration. Observability is wired
    /// here, once, for every layer, from the `obs` section:
    /// [`crate::config::ObsConfig::instance`] if set, [`Obs::global`] if
    /// merely enabled, a throwaway private instance when disabled.
    ///
    /// Call [`LegoSdnConfig::build`] first to validate; this constructor
    /// tolerates unvalidated configs by clamping (workers/depth floor 1)
    /// rather than panicking.
    #[must_use]
    pub fn new(config: LegoSdnConfig) -> Self {
        let obs = match (&config.obs.instance, config.obs.enabled) {
            (Some(obs), _) => obs.clone(),
            (None, true) => Obs::global(),
            (None, false) => Obs::new(),
        };
        let mut netlog = NetLog::new(config.netlog_mode);
        netlog.set_obs(obs.clone());
        let workers = config.dispatch.workers.max(1);
        let shards = (0..workers)
            .map(|id| {
                let mut crashpad = CrashPad::new(config.crashpad.clone());
                crashpad.set_obs(obs.clone());
                let mut proxy_config = config.io.proxy.clone();
                proxy_config.io = config.io.mode;
                proxy_config.worker = id;
                let mut proxy = AppVisorProxy::new(proxy_config);
                proxy.set_obs(obs.clone());
                WorkerShard {
                    id,
                    proxy,
                    crashpad,
                    apps: Vec::new(),
                }
            })
            .collect();
        obs.gauge("core", "workers", "")
            .set(i64::try_from(workers).unwrap_or(i64::MAX));
        LegoSdnRuntime {
            translator: EventTranslator::new(),
            netlog,
            checker: config.checker.clone(),
            shards,
            router: ShardRouter::default(),
            stats: RuntimeStats::default(),
            obs,
            trace_seen: 0,
            txid_cursor: 1,
            notify_flows_seen: false,
            cost_ewma: HashMap::new(),
            cost_prev: HashMap::new(),
            config,
        }
    }

    /// Sampling gate for the flight recorder: begin a trace for this
    /// event if it is the `trace_sample`th since the last traced one.
    /// Returns the id for scope switching (`None`: not sampled).
    /// Recorder scopes are per-thread, so sampling works at any worker
    /// count — each worker tags its own slice of the window with the
    /// event's trace id.
    fn trace_for_event(&mut self, event: &Event) -> Option<TraceId> {
        let sample = self.config.obs.trace_sample;
        if sample == 0 {
            return None;
        }
        self.trace_seen += 1;
        if !(self.trace_seen - 1).is_multiple_of(sample) {
            return None;
        }
        let id = TraceId {
            cycle: self.stats.cycles,
            seq: self.trace_seen,
        };
        self.obs.trace_begin(id, &format!("{:?}", event.kind()));
        Some(id)
    }

    /// Build a push frame of this runtime's observability state for
    /// `campaign`: the cumulative metric snapshot plus the journal delta
    /// after `since` (see [`legosdn_obs::Obs::frame`]). This is the
    /// runtime-level entry point a custom export loop would use; the
    /// stock [`legosdn_obs::PushExporter`] calls the same machinery.
    #[must_use]
    pub fn obs_frame(
        &self,
        campaign: &str,
        since: Option<u64>,
        max_records: usize,
    ) -> legosdn_obs::PushFrame {
        self.obs.frame(campaign, since, max_records)
    }

    /// Journal records with sequence numbers after `since` (all retained
    /// records when `None`) — the raw snapshot-delta without the metric
    /// snapshot around it.
    #[must_use]
    pub fn obs_delta(&self, since: Option<u64>) -> Vec<legosdn_obs::Record> {
        self.obs.journal().snapshot_since(since)
    }

    /// Attach an app in the configured isolation mode.
    pub fn attach(&mut self, app: Box<dyn SdnApp>) -> Result<AppId, AttachError> {
        self.attach_with_limits(app, self.config.resource_limits)
    }

    /// Attach an app with specific resource limits (paper §3.4). The app
    /// lands on the least-loaded shard by the dispatch-cost EWMA
    /// (deterministic tie-break: fewest apps, then lowest worker id) —
    /// with no cost signal yet, that is a pure count-balanced
    /// round-robin, so the same roster shards the same way on every run.
    pub fn attach_with_limits(
        &mut self,
        app: Box<dyn SdnApp>,
        limits: ResourceLimits,
    ) -> Result<AppId, AttachError> {
        let name = app.name().to_string();
        let subscriptions = app.subscriptions();
        let global = self.router.len();
        let worker = (0..self.shards.len())
            .min_by_key(|&w| {
                let load: u64 = self.shards[w]
                    .apps
                    .iter()
                    .map(|a| self.cost_ewma.get(&a.rec.name).copied().unwrap_or(0))
                    .sum();
                (load, self.shards[w].apps.len(), w)
            })
            .unwrap_or(0);
        let shard = &mut self.shards[worker];
        let host = match self.config.isolation {
            IsolationMode::Local => Host::Local(LocalSandbox::new(app)),
            IsolationMode::Channel => Host::Isolated(
                shard
                    .proxy
                    .launch_app(app, TransportKind::Channel)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
            IsolationMode::Udp => Host::Isolated(
                shard
                    .proxy
                    .launch_app(app, TransportKind::Udp)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
            IsolationMode::Tcp => Host::Isolated(
                shard
                    .proxy
                    .launch_app(app, TransportKind::Tcp)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
        };
        shard.apps.push(ShardApp {
            global,
            rec: AppRecord {
                name,
                subscriptions,
                host,
                status: AppStatus::Running,
                limits,
                usage: ResourceUsage::default(),
            },
        });
        let local = shard.apps.len() - 1;
        self.obs
            .gauge("core", "worker_apps", &format!("w{worker}"))
            .set(i64::try_from(shard.apps.len()).unwrap_or(i64::MAX));
        self.router.push(worker, local);
        Ok(AppId(global))
    }

    fn rec(&self, global: usize) -> Option<&AppRecord> {
        let (w, l) = self.router.get(global)?;
        Some(&self.shards[w].apps[l].rec)
    }

    /// Names of attached apps, in attach order.
    #[must_use]
    pub fn app_names(&self) -> Vec<String> {
        (0..self.router.len())
            .map(|g| self.rec(g).expect("router indexes every app").name.clone())
            .collect()
    }

    /// An app's scheduling status.
    pub fn app_status(&self, id: AppId) -> Option<&AppStatus> {
        self.rec(id.0).map(|a| &a.status)
    }

    /// An app's resource usage.
    pub fn app_usage(&self, id: AppId) -> Option<ResourceUsage> {
        self.rec(id.0).map(|a| a.usage)
    }

    /// The worker shard an app was hashed onto.
    pub fn worker_of(&self, id: AppId) -> Option<usize> {
        self.router.get(id.0).map(|(w, _)| w)
    }

    /// The worker-shard count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The observability handle this runtime (and its Crash-Pad, NetLog,
    /// and AppVisor layers) reports into. Cloning is an `Arc` bump, so a
    /// long-running driver can hand it to an ops endpoint
    /// (`legosdn_obs::ObsServer`) without touching the hot path.
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// Shard 0's Crash-Pad engine (tickets, checkpoints, policies).
    /// Single-worker runtimes — the default — have exactly one shard, so
    /// this is *the* Crash-Pad; sharded runtimes keep one per worker, and
    /// per-app engines are reached through the app's shard.
    #[must_use]
    pub fn crashpad(&self) -> &CrashPad {
        &self.shards[0].crashpad
    }

    /// Mutable Crash-Pad access (operator policy updates at runtime).
    /// Shard 0's engine; see [`LegoSdnRuntime::crashpad`].
    pub fn crashpad_mut(&mut self) -> &mut CrashPad {
        &mut self.shards[0].crashpad
    }

    /// The Crash-Pad engine owning a specific app.
    pub fn crashpad_for(&self, id: AppId) -> Option<&CrashPad> {
        let (w, _) = self.router.get(id.0)?;
        Some(&self.shards[w].crashpad)
    }

    /// The NetLog engine (transaction log, counter cache).
    #[must_use]
    pub fn netlog(&self) -> &NetLog {
        &self.netlog
    }

    /// The controller core's views.
    #[must_use]
    pub fn translator(&self) -> &EventTranslator {
        &self.translator
    }

    /// The controller is never crashed by app failures; this exists for
    /// symmetry with the monolithic baseline in experiments.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        false
    }

    /// Drain network events, translate, and dispatch under full protection.
    ///
    /// Under [`DispatchMode::Pipelined`] with a window depth above 1 — or
    /// more than one worker shard — the whole burst is translated up
    /// front and dispatched through the cross-event window scheduler
    /// (per-worker under shards); otherwise each raw event's translations
    /// dispatch before the next raw is translated (the original loop).
    /// [`DispatchMode::Sequential`] always runs the single-threaded
    /// reference, whatever the worker count.
    pub fn run_cycle(&mut self, net: &mut Network) -> LegoCycleReport {
        let _span = self.obs.span("core.run_cycle");
        let started = Instant::now();
        // Placement changes only ever land here, at a cycle boundary —
        // never while a window is in flight.
        self.rebalance_shards();
        self.stats.cycles += 1;
        let mut report = LegoCycleReport::default();
        let lookahead = self.config.dispatch.lookahead_cycles.max(1);
        let windowed = self.config.dispatch.mode == DispatchMode::Pipelined
            && (self.config.dispatch.window.depth > 1 || self.shards.len() > 1);
        if windowed {
            let slots = self.translate_burst(net, &mut report);
            self.dispatch_windowed(net, slots, lookahead, &mut report);
        } else {
            let tx_cycle_base = self.txid_cursor;
            let n_apps = self.router.len() as u64;
            for raw in net.poll_events() {
                let events = self.translator.process(net, raw);
                self.stats.events_translated += events.len() as u64;
                self.obs
                    .counter("core", "events_translated", "")
                    .add(events.len() as u64);
                for ev in events {
                    let ordinal = report.events as u64;
                    report.events += 1;
                    let trace = self.trace_for_event(&ev);
                    self.obs.trace_scope(trace);
                    let tx_event_base = tx_cycle_base + ordinal * n_apps * TXS_PER_POS;
                    self.dispatch_event(net, &ev, &mut report, tx_event_base);
                    self.obs.trace_scope(None);
                }
            }
            // Cross-cycle windowing on the per-event path (DESIGN.md
            // §15): keep dispatching the follow-on events this cycle's
            // commits triggered, up to `lookahead_cycles` bursts'
            // worth, for as long as their translation is pure. The cap
            // is checked before each raw pop, so one raw translating
            // to several events may overshoot it — exactly like the
            // windowed scheduler, which keeps the two paths
            // bit-identical at matching lookahead.
            let cap = report.events.saturating_mul(lookahead);
            while report.events < cap {
                let Some(raw) = net.peek_event() else { break };
                if !extendable(raw) {
                    break;
                }
                let raw = net.pop_event().expect("peeked above");
                let events = self.translator.process(net, raw);
                self.stats.events_translated += events.len() as u64;
                self.obs
                    .counter("core", "events_translated", "")
                    .add(events.len() as u64);
                for ev in events {
                    let ordinal = report.events as u64;
                    report.events += 1;
                    let trace = self.trace_for_event(&ev);
                    self.obs.trace_scope(trace);
                    let tx_event_base = tx_cycle_base + ordinal * n_apps * TXS_PER_POS;
                    self.dispatch_event(net, &ev, &mut report, tx_event_base);
                    self.obs.trace_scope(None);
                }
            }
        }
        self.txid_cursor += report.events as u64 * self.router.len() as u64 * TXS_PER_POS;
        report.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report
    }

    /// Translate the cycle's entire raw-event burst up front, snapshotting
    /// the translator's views per event so each delivery sees exactly the
    /// views sequential dispatch would have handed it. `Network::now()`
    /// only advances via an explicit `advance()`, so the captured `now` is
    /// constant across the cycle either way.
    fn translate_burst(
        &mut self,
        net: &mut Network,
        report: &mut LegoCycleReport,
    ) -> Vec<WindowSlot> {
        let cycle = self.stats.cycles;
        let mut bt = BurstTranslator {
            translator: &mut self.translator,
            stats: &mut self.stats,
            obs: &self.obs,
            trace_seen: &mut self.trace_seen,
            trace_sample: self.config.obs.trace_sample,
            cycle,
        };
        let mut slots = Vec::new();
        for raw in net.poll_events() {
            report.events += bt.translate_raw(net, raw, &mut slots);
        }
        slots
    }

    /// Integrate the newest `dispatch_app_ns` observations into the
    /// per-app-name cost EWMA (integer, 3/4 old + 1/4 new).
    fn refresh_app_costs(&mut self) {
        let names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.apps.iter().map(|a| a.rec.name.clone()))
            .collect();
        for name in names {
            let h = self.obs.histogram("core", "dispatch_app_ns", &name);
            let (sum, count) = (h.sum(), h.count());
            let (psum, pcount) = self.cost_prev.get(&name).copied().unwrap_or((0, 0));
            if count > pcount {
                let avg = sum.saturating_sub(psum) / (count - pcount);
                let e = self.cost_ewma.entry(name.clone()).or_insert(avg);
                *e = (*e * 3 + avg) / 4;
                self.cost_prev.insert(name, (sum, count));
            }
        }
    }

    /// Load-aware shard re-balance (DESIGN.md §15): refresh the per-app
    /// cost EWMA, export per-worker load gauges, and — when a
    /// first-fit-decreasing plan improves the bottleneck load by more
    /// than 10% — migrate apps (with their Crash-Pad checkpoint state)
    /// between shards. Movable apps are Local-hosted ones whose name is
    /// unique in the roster: checkpoint state is keyed by app name, and
    /// stubs are pinned to the proxy that launched them. Runs only at
    /// cycle start, so placement never changes under a live window, and
    /// commits stay admitted in global position order regardless of
    /// placement — the residue is placement-independent.
    fn rebalance_shards(&mut self) {
        let workers = self.shards.len();
        if workers < 2 {
            return;
        }
        self.refresh_app_costs();
        let current: Vec<u64> = self
            .shards
            .iter()
            .map(|s| {
                s.apps
                    .iter()
                    .map(|a| self.cost_ewma.get(&a.rec.name).copied().unwrap_or(0))
                    .sum()
            })
            .collect();
        for (w, &load) in current.iter().enumerate() {
            self.obs
                .gauge("core", "worker_load", &format!("w{w}"))
                .set(i64::try_from(load).unwrap_or(i64::MAX));
        }
        let cur_max = current.iter().copied().max().unwrap_or(0);
        if cur_max == 0 {
            return;
        }
        let mut name_counts: HashMap<String, usize> = HashMap::new();
        for s in &self.shards {
            for a in &s.apps {
                *name_counts.entry(a.rec.name.clone()).or_insert(0) += 1;
            }
        }
        let mut movable: Vec<(u64, usize)> = Vec::new();
        let mut planned = vec![0u64; workers];
        let mut counts = vec![0usize; workers];
        for (w, s) in self.shards.iter().enumerate() {
            for a in &s.apps {
                let cost = self.cost_ewma.get(&a.rec.name).copied().unwrap_or(0);
                if name_counts.get(&a.rec.name) == Some(&1) && matches!(a.rec.host, Host::Local(_))
                {
                    movable.push((cost, a.global));
                } else {
                    planned[w] += cost;
                    counts[w] += 1;
                }
            }
        }
        if movable.is_empty() {
            return;
        }
        // First-fit decreasing with deterministic tie-breaks: heaviest
        // app first (attach order breaks cost ties), each onto the
        // least-loaded worker (fewest planned apps, then lowest id,
        // break load ties).
        movable.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut target: Vec<(usize, usize)> = Vec::new();
        for &(cost, global) in &movable {
            let w = (0..workers)
                .min_by_key(|&w| (planned[w], counts[w], w))
                .unwrap_or(0);
            planned[w] += cost;
            counts[w] += 1;
            target.push((global, w));
        }
        let new_max = planned.iter().copied().max().unwrap_or(0);
        // Migration shuffles checkpoint state and cache affinity;
        // demand a real (>10%) win on the bottleneck load.
        if new_max.saturating_mul(10) >= cur_max.saturating_mul(9) {
            return;
        }
        let mut moved = false;
        for (global, to) in target {
            let (from, local) = self
                .shards
                .iter()
                .enumerate()
                .find_map(|(w, s)| {
                    s.apps
                        .iter()
                        .position(|a| a.global == global)
                        .map(|l| (w, l))
                })
                .expect("movable app is attached");
            if from == to {
                continue;
            }
            let app = self.shards[from].apps.remove(local);
            let name = app.rec.name.clone();
            if let Some(state) = self.shards[from].crashpad.checkpoints.extract(&name) {
                self.shards[to].crashpad.checkpoints.adopt(&name, state);
            }
            // Keep each shard's roster sorted by global attach index —
            // the windowed sweep relies on local order == global order.
            let at = self.shards[to]
                .apps
                .iter()
                .position(|a| a.global > global)
                .unwrap_or(self.shards[to].apps.len());
            self.shards[to].apps.insert(at, app);
            moved = true;
        }
        if !moved {
            return;
        }
        self.router.rebuild(&self.shards);
        for (w, s) in self.shards.iter().enumerate() {
            self.obs
                .gauge("core", "worker_apps", &format!("w{w}"))
                .set(i64::try_from(s.apps.len()).unwrap_or(i64::MAX));
        }
        self.obs.counter("core", "rebalance_count", "").inc();
    }

    /// Deliver a Tick to subscribed apps.
    pub fn tick_apps(&mut self, net: &mut Network) -> LegoCycleReport {
        let _span = self.obs.span("core.tick_apps");
        let started = Instant::now();
        self.stats.cycles += 1;
        let mut report = LegoCycleReport::default();
        let ev = Event::Tick(net.now());
        report.events += 1;
        let trace = self.trace_for_event(&ev);
        self.obs.trace_scope(trace);
        let tx_event_base = self.txid_cursor;
        self.dispatch_event(net, &ev, &mut report, tx_event_base);
        self.obs.trace_scope(None);
        self.txid_cursor += self.router.len() as u64 * TXS_PER_POS;
        report.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report
    }

    fn dispatch_event(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut LegoCycleReport,
        tx_event_base: u64,
    ) {
        match self.config.dispatch.mode {
            DispatchMode::Sequential => self.dispatch_sequential(net, event, report, tx_event_base),
            DispatchMode::Pipelined => self.dispatch_pipelined(net, event, report, tx_event_base),
        }
    }

    /// Commit one app's outcome on the per-event (non-windowed) path:
    /// live translator views, position-derived transaction ids, sticky
    /// notify-flag bookkeeping.
    fn commit_on_lane(
        &mut self,
        net: &mut Network,
        global: usize,
        event: &Event,
        result: DispatchResult,
        report: &mut LegoCycleReport,
        tx_event_base: u64,
    ) {
        let (w, l) = self.router.loc(global);
        let mut lane = CommitLane {
            net,
            netlog: &mut self.netlog,
            notify_seen: false,
        };
        let mut cx = shard_cx!(self, w);
        commit_outcome(
            &mut cx,
            &mut lane,
            l,
            event,
            result,
            report,
            (&self.translator.topology, &self.translator.devices),
            tx_event_base + global as u64 * TXS_PER_POS,
        );
        let notify = lane.notify_seen;
        self.notify_flows_seen |= notify;
    }

    /// The original monolithic loop: one blocking Crash-Pad round-trip
    /// per app, in attach order.
    fn dispatch_sequential(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut LegoCycleReport,
        tx_event_base: u64,
    ) {
        let kind = event.kind();
        for global in 0..self.router.len() {
            let (w, l) = self.router.loc(global);
            if !select_app(&mut shard_cx!(self, w), l, kind) {
                continue;
            }
            self.dispatch_to_app(net, global, event, report, tx_event_base);
        }
    }

    /// Phased pipeline over the same roster (see [`DispatchMode`]):
    ///
    /// - **prepare**: select apps, checkpoint each if due;
    /// - **deliver**: fan the event out to isolated stubs per shard (they
    ///   process on their own threads), run local sandboxes inline
    ///   meanwhile;
    /// - **gather**: classify each outcome through Crash-Pad in attach
    ///   order — restore/replay/transform runs only for failed apps;
    /// - **commit**: NetLog transactions + byzantine gate per app, in
    ///   attach order.
    ///
    /// Deliveries read only the translator's views and per-app state, so
    /// overlapping them cannot be observed by the apps; everything that
    /// touches the network — commits, byzantine recovery, No-Compromise
    /// shutdown — stays serialized in attach order. Network state and
    /// NetLog transaction order are therefore identical to
    /// [`DispatchMode::Sequential`] (the determinism integration test
    /// holds both modes to that).
    fn dispatch_pipelined(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut LegoCycleReport,
        tx_event_base: u64,
    ) {
        let kind = event.kind();
        let now = net.now();
        self.obs
            .counter("core", "pipelined_dispatch_rounds", "")
            .inc();

        // Phase A — prepare: selection, then up-front checkpoints.
        let selected: Vec<usize> = {
            let _span = self.obs.span("core.dispatch_prepare");
            let selected: Vec<usize> = (0..self.router.len())
                .filter(|&g| {
                    let (w, l) = self.router.loc(g);
                    select_app(&mut shard_cx!(self, w), l, kind)
                })
                .collect();
            for &g in &selected {
                let (w, l) = self.router.loc(g);
                let shard = &mut self.shards[w];
                let name = shard.apps[l].rec.name.clone();
                match &mut shard.apps[l].rec.host {
                    Host::Local(sandbox) => shard.crashpad.prepare(sandbox, &name),
                    Host::Isolated(handle) => {
                        let mut adapter = ProxyAdapter {
                            proxy: &mut shard.proxy,
                            handle: *handle,
                        };
                        shard.crashpad.prepare(&mut adapter, &name);
                    }
                }
            }
            selected
        };

        // Phase B — deliver: each shard's stubs get their frames first so
        // they start processing; local sandboxes run inline while the
        // stubs work; then collect the stub outcomes.
        let mut deliveries: Vec<Option<DeliveryResult>> =
            (0..selected.len()).map(|_| None).collect();
        {
            let _span = self.obs.span("core.dispatch_deliver");
            let mut stub_slots: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            let mut stub_handles: Vec<Vec<AppHandle>> = vec![Vec::new(); self.shards.len()];
            for (pos, &g) in selected.iter().enumerate() {
                let (w, l) = self.router.loc(g);
                if let Host::Isolated(h) = &self.shards[w].apps[l].rec.host {
                    stub_slots[w].push(pos);
                    stub_handles[w].push(*h);
                }
            }
            let tickets: Vec<_> = (0..self.shards.len())
                .map(|w| {
                    (!stub_handles[w].is_empty()).then(|| {
                        self.shards[w].proxy.fanout_send(
                            &stub_handles[w],
                            event,
                            &self.translator.topology,
                            &self.translator.devices,
                            now,
                        )
                    })
                })
                .collect();
            for (pos, &g) in selected.iter().enumerate() {
                let (w, l) = self.router.loc(g);
                let name = self.shards[w].apps[l].rec.name.clone();
                if let Host::Local(sandbox) = &mut self.shards[w].apps[l].rec.host {
                    self.obs.trace_event("send", &name, "local");
                    let delivery = sandbox.deliver(
                        event,
                        &self.translator.topology,
                        &self.translator.devices,
                        now,
                    );
                    self.obs
                        .trace_event("collect", &name, delivery_label(&delivery));
                    deliveries[pos] = Some(delivery);
                }
            }
            for (w, ticket) in tickets.into_iter().enumerate() {
                if let Some(ticket) = ticket {
                    for (&pos, d) in stub_slots[w]
                        .iter()
                        .zip(self.shards[w].proxy.fanout_collect(ticket))
                    {
                        deliveries[pos] = Some(outcome_to_delivery_outcome(d));
                    }
                }
            }
        }

        // Phase C — gather: Crash-Pad bookkeeping per app in attach
        // order; restore + policy transform/replay only for failures.
        let outcomes: Vec<DispatchResult> = {
            let _span = self.obs.span("core.dispatch_gather");
            selected
                .iter()
                .zip(deliveries)
                .map(|(&g, delivery)| {
                    let delivery = delivery.expect("every selected app was delivered");
                    let (w, l) = self.router.loc(g);
                    let shard = &mut self.shards[w];
                    let name = shard.apps[l].rec.name.clone();
                    match &mut shard.apps[l].rec.host {
                        Host::Local(sandbox) => shard.crashpad.complete(
                            sandbox,
                            &name,
                            event,
                            delivery,
                            &self.translator.topology,
                            &self.translator.devices,
                            now,
                        ),
                        Host::Isolated(handle) => {
                            let mut adapter = ProxyAdapter {
                                proxy: &mut shard.proxy,
                                handle: *handle,
                            };
                            shard.crashpad.complete(
                                &mut adapter,
                                &name,
                                event,
                                delivery,
                                &self.translator.topology,
                                &self.translator.devices,
                                now,
                            )
                        }
                    }
                })
                .collect()
        };

        // Phase D — commit: network effects in attach order, exactly as
        // sequential dispatch would issue them.
        let _span = self.obs.span("core.dispatch_commit");
        for (&g, result) in selected.iter().zip(outcomes) {
            self.commit_on_lane(net, g, event, result, report, tx_event_base);
        }
    }

    /// Cross-event window scheduler (DESIGN.md §10, sharded per §13,
    /// cross-cycle per §15): up to `dispatch.window.depth` slots are in
    /// flight per worker at once. Each worker runs the two-cursor
    /// fill/commit machinery over its own shard's apps; commits
    /// synchronize through the [`CommitBarrier`] in global (event,
    /// attach) position order — or overtake it on the provably-disjoint
    /// fastpath — so network state, the txlog, and runtime counters stay
    /// bit-identical to the sequential reference.
    ///
    /// With `lookahead_cycles > 1` the window grows past the initial
    /// burst while commits are still in flight: the runtime pops
    /// follow-on events off the net queue as soon as their translation
    /// is pure (cannot observe mid-window state out of order), appends
    /// them to the shared [`SlotStore`], and the workers' send cursors
    /// run ahead across what used to be a cycle boundary.
    fn dispatch_windowed(
        &mut self,
        net: &mut Network,
        slots: Vec<WindowSlot>,
        lookahead: usize,
        report: &mut LegoCycleReport,
    ) {
        if slots.is_empty() {
            return;
        }
        let depth = self.config.dispatch.window.depth.max(1);
        self.obs
            .gauge("core", "window_depth", "")
            .set(i64::try_from(depth).unwrap_or(i64::MAX));
        let n_apps = self.router.len();
        let sharded = self.shards.len() > 1;
        // The fastpath needs commit-time effects to be exactly the
        // declared touch: a checker observes (and byz-recovery rewrites)
        // live state at commit, and a surviving notify-flagged table
        // entry could emit a FlowRemoved on displacement — either one
        // forces full ordering.
        let fastpath = sharded && self.checker.is_none() && !self.notify_flows_seen;
        let barrier = CommitBarrier::new(fastpath);
        let tx_cycle_base = self.txid_cursor;
        let checker = self.checker.as_ref();
        let shutdown_on_no_compromise = self.config.shutdown_network_on_no_compromise;
        let obs = self.obs.clone();
        // Event cap of the lookahead window: checked before each raw
        // pop, so one raw translating to several events may overshoot.
        let cap = slots.len().saturating_mul(lookahead);
        let store = SlotStore::new(slots);
        let can_extend = cap > store.len();
        let cycle = self.stats.cycles;
        let mut bt = BurstTranslator {
            translator: &mut self.translator,
            stats: &mut self.stats,
            obs: &self.obs,
            trace_seen: &mut self.trace_seen,
            trace_sample: self.config.obs.trace_sample,
            cycle,
        };
        let lane = Mutex::new(CommitLane {
            net,
            netlog: &mut self.netlog,
            notify_seen: false,
        });
        let mut deltas: Vec<(RuntimeStats, LegoCycleReport)> =
            Vec::with_capacity(self.shards.len());
        if !sharded {
            let mut run = WorkerRun {
                shard: &mut self.shards[0],
                store: &store,
                barrier: &barrier,
                lane: &lane,
                obs: obs.clone(),
                checker,
                shutdown_on_no_compromise,
                depth,
                n_apps,
                tx_cycle_base,
                sharded: false,
                wait_more: false,
                wl: String::new(),
                stats: RuntimeStats::default(),
                report: LegoCycleReport::default(),
                pending: Vec::new(),
                inflight: Vec::new(),
                next_send: 0,
                commit_pos: 0,
            };
            // Drain/extend alternation: each run() commits every slot
            // the store holds; each extension appends the follow-on
            // events those commits triggered.
            loop {
                run.run();
                if !can_extend || extend_window(&mut bt, &lane, &store, cap, report) == 0 {
                    break;
                }
            }
            deltas.push((run.stats, run.report));
        } else {
            if !can_extend {
                // The window can never grow: close up front so workers
                // drain the burst and exit without parking.
                store.close();
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        let worker = shard.id;
                        let obs = obs.clone();
                        let barrier = &barrier;
                        let lane = &lane;
                        let store = &store;
                        std::thread::Builder::new()
                            .name(format!("lego-worker-{worker}"))
                            .spawn_scoped(scope, move || {
                                let mut run = WorkerRun {
                                    shard,
                                    store,
                                    barrier,
                                    lane,
                                    obs,
                                    checker,
                                    shutdown_on_no_compromise,
                                    depth,
                                    n_apps,
                                    tx_cycle_base,
                                    sharded: true,
                                    wait_more: true,
                                    wl: format!("w{worker}"),
                                    stats: RuntimeStats::default(),
                                    report: LegoCycleReport::default(),
                                    pending: Vec::new(),
                                    inflight: Vec::new(),
                                    next_send: 0,
                                    commit_pos: 0,
                                };
                                run.run();
                                (run.stats, run.report)
                            })
                            .expect("spawn worker thread")
                    })
                    .collect();
                if can_extend {
                    // Extension loop. The commit cursor is read BEFORE
                    // each drain attempt, so a commit landing between
                    // the drain and the wait advances the cursor past
                    // the snapshot and `wait_cursor_past` returns
                    // immediately — the close can never be missed.
                    // Deadlock-free: workers take the barrier before
                    // the lane, and this thread never holds the lane
                    // while waiting on the barrier.
                    loop {
                        let cursor = barrier.cursor();
                        if extend_window(&mut bt, &lane, &store, cap, report) > 0 {
                            continue;
                        }
                        if cursor >= (store.len() * n_apps) as u64 {
                            break;
                        }
                        barrier.wait_cursor_past(cursor);
                    }
                    store.close();
                }
                for handle in handles {
                    deltas.push(handle.join().expect("worker thread panicked"));
                }
            });
        }
        let lane = lane.into_inner().expect("commit lane poisoned");
        self.notify_flows_seen |= lane.notify_seen;
        for (stats, delta) in deltas {
            self.stats.absorb(&stats);
            report.commands += delta.commands;
            report.recoveries += delta.recoveries;
            report.byzantine_blocked += delta.byzantine_blocked;
        }
        let bs = barrier.stats();
        self.obs
            .counter("netlog", "barrier_fastpath_commits", "")
            .add(bs.fastpath_commits);
        self.obs
            .counter("netlog", "barrier_ordered_commits", "")
            .add(bs.ordered_commits);
        self.obs
            .counter("netlog", "barrier_elided_positions", "")
            .add(bs.elided_positions);
        self.obs
            .counter("netlog", "barrier_shared_switch_conflicts", "")
            .add(bs.shared_switch_conflicts);
    }

    fn dispatch_to_app(
        &mut self,
        net: &mut Network,
        global: usize,
        event: &Event,
        report: &mut LegoCycleReport,
        tx_event_base: u64,
    ) {
        let now = net.now();
        let (w, l) = self.router.loc(global);
        // Crash-Pad protected delivery.
        let result = {
            let shard = &mut self.shards[w];
            let name = shard.apps[l].rec.name.clone();
            match &mut shard.apps[l].rec.host {
                Host::Local(sandbox) => shard.crashpad.dispatch(
                    sandbox,
                    &name,
                    event,
                    &self.translator.topology,
                    &self.translator.devices,
                    now,
                ),
                Host::Isolated(handle) => {
                    let mut adapter = ProxyAdapter {
                        proxy: &mut shard.proxy,
                        handle: *handle,
                    };
                    shard.crashpad.dispatch(
                        &mut adapter,
                        &name,
                        event,
                        &self.translator.topology,
                        &self.translator.devices,
                        now,
                    )
                }
            }
        };
        self.commit_on_lane(net, global, event, result, report, tx_event_base);
    }

    /// §5 STS-guided diagnosis: find the checkpoint and minimal causal
    /// event sequence that reproduce a crash of the given app on
    /// `offending`. The app's current state is preserved around the
    /// search. Typical input for `offending` is the `offending_event` of
    /// the app's latest problem ticket.
    pub fn diagnose(
        &mut self,
        id: AppId,
        offending: &Event,
        now: legosdn_netsim::SimTime,
    ) -> Result<legosdn_crashpad::Diagnosis, legosdn_crashpad::DiagnoseError> {
        let Some((w, l)) = self.router.get(id.0) else {
            return Err(legosdn_crashpad::DiagnoseError::NoHistory);
        };
        let shard = &mut self.shards[w];
        let name = shard.apps[l].rec.name.clone();
        match &mut shard.apps[l].rec.host {
            Host::Local(sandbox) => shard.crashpad.diagnose(
                sandbox,
                &name,
                offending,
                &self.translator.topology,
                &self.translator.devices,
                now,
            ),
            Host::Isolated(handle) => {
                let mut adapter = ProxyAdapter {
                    proxy: &mut shard.proxy,
                    handle: *handle,
                };
                shard.crashpad.diagnose(
                    &mut adapter,
                    &name,
                    offending,
                    &self.translator.topology,
                    &self.translator.devices,
                    now,
                )
            }
        }
    }

    /// §3.4 controller upgrade: restart the controller core without
    /// touching the apps. The topology/device views are rebuilt by
    /// re-handshaking every switch; apps keep their state and their fault
    /// domains — the outage the monolithic reboot causes does not happen.
    pub fn upgrade_controller(&mut self, net: &mut Network) {
        self.translator = EventTranslator::new();
        self.stats.upgrades += 1;
        let dpids: Vec<_> = net.switches().map(|s| s.dpid()).collect();
        for dpid in dpids {
            if net.switch(dpid).map(|s| s.is_up()).unwrap_or(false) {
                let _ = self
                    .translator
                    .process(net, legosdn_netsim::NetEvent::SwitchConnected(dpid));
            }
        }
    }

    /// Resume a suspended app (operator action after a resource review).
    pub fn resume(&mut self, id: AppId, extra_budget: ResourceLimits) -> bool {
        let Some((w, l)) = self.router.get(id.0) else {
            return false;
        };
        let rec = &mut self.shards[w].apps[l].rec;
        if matches!(rec.status, AppStatus::Suspended(_)) {
            rec.status = AppStatus::Running;
            rec.limits = extra_budget;
            return true;
        }
        false
    }

    /// Shut down all isolated stubs on every shard.
    pub fn shutdown(self) {
        for shard in self.shards {
            let _ = shard.proxy.shutdown();
        }
    }
}

use legosdn_netsim::{NetEvent, Network};

/// Adapter shim: the pipelined path collects
/// [`legosdn_appvisor::FanoutDelivery`] values whose `outcome` field is
/// what [`crate::host::outcome_to_delivery`] converts.
fn outcome_to_delivery_outcome(d: legosdn_appvisor::FanoutDelivery) -> DeliveryResult {
    crate::host::outcome_to_delivery(d.outcome)
}

/// Whether a raw event's translation is *pure* — reads nothing but the
/// translator's own views, so translating it mid-window is identical to
/// translating it after the window drains. `PortStatus` probes ports
/// and drains the net queue; `SwitchConnected` handshakes (feature
/// replies, port probes). Either one ends the extension prefix; the
/// remaining raws wait for the next cycle.
fn extendable(raw: &NetEvent) -> bool {
    match raw {
        NetEvent::FromSwitch(_, msg) => !matches!(msg, Message::PortStatus(_)),
        NetEvent::SwitchDisconnected(_) => true,
        NetEvent::SwitchConnected(_) => false,
    }
}

/// The windowed translation engine, split off the runtime so the main
/// thread can translate (fields: translator, stats, trace cursor) while
/// the worker shards are mutably borrowed by the dispatch threads.
struct BurstTranslator<'a> {
    translator: &'a mut EventTranslator,
    stats: &'a mut RuntimeStats,
    obs: &'a Obs,
    trace_seen: &'a mut u64,
    trace_sample: u64,
    cycle: u64,
}

impl BurstTranslator<'_> {
    /// The same sampling gate as `LegoSdnRuntime::trace_for_event`,
    /// over the borrowed trace cursor.
    fn trace_for_event(&mut self, event: &Event) -> Option<TraceId> {
        if self.trace_sample == 0 {
            return None;
        }
        *self.trace_seen += 1;
        if !(*self.trace_seen - 1).is_multiple_of(self.trace_sample) {
            return None;
        }
        let id = TraceId {
            cycle: self.cycle,
            seq: *self.trace_seen,
        };
        self.obs.trace_begin(id, &format!("{:?}", event.kind()));
        Some(id)
    }

    /// Translate one raw event into window slots (with the translator's
    /// views snapshotted per event) and return how many events it
    /// yielded.
    fn translate_raw(
        &mut self,
        net: &mut Network,
        raw: NetEvent,
        out: &mut Vec<WindowSlot>,
    ) -> usize {
        let events = self.translator.process(net, raw);
        let n = events.len();
        self.stats.events_translated += n as u64;
        self.obs
            .counter("core", "events_translated", "")
            .add(n as u64);
        for ev in events {
            let trace = self.trace_for_event(&ev);
            out.push(WindowSlot {
                event: ev,
                topology: self.translator.topology.clone(),
                devices: self.translator.devices.clone(),
                now: net.now(),
                trace,
            });
        }
        n
    }
}

/// Grow the window: pop the pure prefix of the net queue (under a brief
/// lane lock — commits and translation serialize on the same network),
/// translate it, and append the slots to the store. Returns how many
/// slots were appended; 0 means the queue head is non-extendable,
/// empty, or the lookahead cap is reached. Event-producing commits are
/// always barrier-Ordered, so the queue grows in strict commit-position
/// order and this incremental prefix-popping yields exactly the
/// sequence a post-drain batch pop would.
fn extend_window(
    bt: &mut BurstTranslator<'_>,
    lane: &Mutex<CommitLane<'_>>,
    store: &SlotStore,
    cap: usize,
    report: &mut LegoCycleReport,
) -> usize {
    let mut appended = 0;
    loop {
        if report.events >= cap {
            return appended;
        }
        let mut out = Vec::new();
        {
            let mut guard = lane.lock().expect("commit lane poisoned");
            let net: &mut Network = guard.net;
            match net.peek_event() {
                Some(raw) if extendable(raw) => {}
                _ => return appended,
            }
            let raw = net.pop_event().expect("peeked above");
            bt.translate_raw(net, raw, &mut out);
        }
        for slot in out {
            report.events += 1;
            store.append(slot);
            appended += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DispatchConfig, ObsConfig};
    use legosdn_apps::{BugEffect, BugTrigger, FaultyApp, Hub, LearningSwitch};
    use legosdn_controller::event::EventKind;
    use legosdn_crashpad::{
        CheckpointPolicy, CompromisePolicy, CrashPadConfig, PolicyTable, TransformDirection,
    };
    use legosdn_netlog::TxMode;
    use legosdn_netsim::Topology;
    use legosdn_openflow::prelude::*;

    fn runtime(isolation: IsolationMode) -> LegoSdnRuntime {
        LegoSdnRuntime::new(LegoSdnConfig {
            isolation,
            ..LegoSdnConfig::default()
        })
    }

    fn net2() -> (Network, Topology) {
        let topo = Topology::linear(2, 1);
        (Network::new(&topo), topo)
    }

    #[test]
    fn construction_time_obs_wiring_reaches_every_layer() {
        let obs = Obs::new();
        let (mut net, topo) = net2();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            obs: ObsConfig::instance(obs.clone()),
            ..LegoSdnConfig::default()
        });
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        // The runtime's own counters and the Crash-Pad journal records
        // both landed in the private instance, with no set_obs call.
        assert!(obs.counter("core", "dispatches", "").get() > 0);
        assert!(obs
            .journal()
            .snapshot()
            .iter()
            .any(|r| r.kind.is_detection()));
        // The construction-time worker gauge landed too.
        assert_eq!(obs.gauge("core", "workers", "").get(), 1);
    }

    #[test]
    fn journal_capacity_section_bounds_the_private_journal() {
        let rt = LegoSdnRuntime::new(LegoSdnConfig {
            obs: ObsConfig::journal_capacity(4),
            ..LegoSdnConfig::default()
        });
        assert_eq!(rt.obs().journal().capacity(), 4);
    }

    #[test]
    fn obs_frame_and_delta_expose_the_snapshot() {
        let obs = Obs::new();
        let rt = LegoSdnRuntime::new(LegoSdnConfig {
            obs: ObsConfig::instance(obs.clone()),
            ..LegoSdnConfig::default()
        });
        obs.record(legosdn_obs::RecordKind::HeartbeatMiss { app: "a".into() });
        obs.record(legosdn_obs::RecordKind::HeartbeatMiss { app: "b".into() });
        let frame = rt.obs_frame("alpha", None, 4096);
        assert_eq!(frame.campaign, "alpha");
        assert_eq!(frame.records.len(), 2);
        assert_eq!(rt.obs_delta(Some(0)).len(), 1);
    }

    #[test]
    fn pipelined_dispatch_contains_crashes_and_counts_phases() {
        let (mut net, topo) = net2();
        let obs = Obs::new();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined(),
            obs: ObsConfig::instance(obs.clone()),
            ..LegoSdnConfig::default()
        });
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // Healthy neighbor still produced network output.
        assert!(report.commands > 0, "{report:?}");
        // Per-phase instrumentation landed.
        assert!(obs.counter("core", "pipelined_dispatch_rounds", "").get() > 0);
        for phase in [
            "dispatch_prepare",
            "dispatch_deliver",
            "dispatch_gather",
            "dispatch_commit",
        ] {
            assert!(
                obs.histogram("core", phase, "").count() > 0,
                "missing span histogram for {phase}"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn windowed_dispatch_contains_crashes_and_records_window_metrics() {
        let (mut net, topo) = net2();
        let obs = Obs::new();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            isolation: IsolationMode::Channel,
            dispatch: DispatchConfig::pipelined().window(4),
            obs: ObsConfig::instance(obs.clone()),
            ..LegoSdnConfig::default()
        });
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        // A burst of four packet-ins in one cycle, with the poison in the
        // middle: slots after the crash must be cancelled, the app
        // restored, and the tail re-sent from the recovered state.
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(7)))
            .unwrap();
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(8)))
            .unwrap();
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events >= 4, "{report:?}");
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // Healthy neighbor still produced network output for the burst.
        assert!(report.commands > 0, "{report:?}");
        // Both apps saw every event exactly once (crashed deliveries are
        // replay-recovered, cancelled ones re-sent): the dispatch count
        // must equal what sequential dispatch would record.
        assert_eq!(rt.stats().dispatches, 2 * report.events as u64);
        // Window instrumentation landed.
        assert_eq!(obs.gauge("core", "window_depth", "").get(), 4);
        assert!(obs.histogram("core", "window_queue_ns", "").count() >= 4);
        for phase in ["window_fill", "window_commit"] {
            assert!(
                obs.histogram("core", phase, "").count() > 0,
                "missing span histogram for {phase}"
            );
        }
        // The system keeps processing later events after the window drains.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(10)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events > 0);
        rt.shutdown();
    }

    #[test]
    fn sharded_dispatch_spreads_apps_and_matches_per_worker_metrics() {
        let (mut net, topo) = net2();
        let obs = Obs::new();
        let mut rt = LegoSdnRuntime::new(
            LegoSdnConfig {
                isolation: IsolationMode::Channel,
                dispatch: DispatchConfig::pipelined().window(2).workers(4),
                obs: ObsConfig::instance(obs.clone()),
                ..LegoSdnConfig::default()
            }
            .build()
            .unwrap(),
        );
        assert_eq!(rt.workers(), 4);
        let mut ids = Vec::new();
        for _ in 0..6 {
            ids.push(rt.attach(Box::new(Hub::new())).unwrap());
        }
        // Six identically-named apps spread over more than one shard (the
        // ordinal is hashed in), and the router reports their homes.
        let spread: std::collections::BTreeSet<usize> =
            ids.iter().map(|&id| rt.worker_of(id).unwrap()).collect();
        assert!(spread.len() > 1, "apps never spread across workers");
        assert_eq!(obs.gauge("core", "workers", "").get(), 4);

        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events >= 2, "{report:?}");
        // Every (packet-in, app) pair dispatched exactly once across
        // shards (the handshake cycle's events have no subscribers here).
        assert_eq!(rt.stats().dispatches, 6 * report.events as u64);
        // Per-worker span labels landed for at least one busy worker.
        let fills: u64 = (0..4)
            .map(|w| {
                obs.histogram("core", "window_fill", &format!("w{w}"))
                    .count()
            })
            .sum();
        assert!(fills > 0, "no per-worker window_fill spans recorded");
        rt.shutdown();
    }

    #[test]
    fn healthy_learning_switch_delivers_traffic() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net); // handshake + discovery
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        // First packet floods (unknown dst), reply teaches, then direct.
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        net.inject(b, Packet::ethernet(b, a)).unwrap();
        rt.run_cycle(&mut net);
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert!(trace.delivered_to(b) || trace.packet_ins > 0);
        assert!(rt.stats().commands_executed > 0);
        assert!(!rt.is_crashed());
    }

    #[test]
    fn app_crash_does_not_kill_controller_or_other_apps() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // The learning switch still ran and emitted output for the event.
        assert!(rt.stats().dispatches >= 2);
        // And the system keeps processing later events.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events > 0);
    }

    #[test]
    fn isolated_channel_app_crash_is_contained() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Channel);
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1);
        // Recovered: a later clean packet still floods.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.commands > 0, "{report:?}");
        rt.shutdown();
    }

    #[test]
    fn byzantine_blackhole_is_blocked_and_rolled_back() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Blackhole,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.byzantine_blocked >= 1, "{report:?}");
        // The drop-all rule must NOT be on any switch.
        for sw in net.switches() {
            assert!(
                sw.table().iter().all(|e| e.priority != u16::MAX),
                "black-hole rule survived on {:?}",
                sw.dpid()
            );
        }
    }

    #[test]
    fn byzantine_loop_blocked_in_buffered_mode() {
        let (mut net, topo) = net2();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            netlog_mode: TxMode::Buffered,
            ..LegoSdnConfig::default()
        });
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::ForwardingLoop,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.byzantine_blocked >= 1);
        for sw in net.switches() {
            assert!(sw.table().iter().all(|e| e.priority != u16::MAX));
        }
    }

    #[test]
    fn no_compromise_app_dies_and_stays_dead() {
        let (mut net, topo) = net2();
        let mut policies = PolicyTable::with_default(CompromisePolicy::Absolute);
        policies.set_app("hub#buggy", CompromisePolicy::NoCompromise);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy::default(),
                policies,
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        let id = rt
            .attach(Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnEventKind(EventKind::PacketIn),
                BugEffect::Crash,
            )))
            .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert_eq!(rt.app_status(id), Some(&AppStatus::Dead));
        assert_eq!(rt.stats().apps_dead, 1);
        // Dead app skips future events; controller unaffected.
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert!(rt.stats().events_skipped > 0);
        assert!(!rt.is_crashed());
    }

    #[test]
    fn resource_limit_suspends_runaway_app() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        let id = rt
            .attach_with_limits(
                Box::new(Hub::new()),
                ResourceLimits {
                    max_events: Some(2),
                    ..ResourceLimits::default()
                },
            )
            .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for _ in 0..4 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        assert!(matches!(rt.app_status(id), Some(AppStatus::Suspended(_))));
        assert!(rt.stats().apps_suspended >= 1);
        // Operator resumes with a bigger budget.
        assert!(rt.resume(
            id,
            ResourceLimits {
                max_events: Some(100),
                ..ResourceLimits::default()
            }
        ));
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.commands > 0);
    }

    #[test]
    fn controller_upgrade_keeps_app_state() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        let checkpoint_events = rt
            .crashpad()
            .checkpoints
            .events_delivered("learning-switch");
        assert!(checkpoint_events > 0);
        let links_before = rt.translator().topology.n_links();
        rt.upgrade_controller(&mut net);
        assert_eq!(rt.stats().upgrades, 1);
        // Topology rediscovered without a network outage...
        assert_eq!(rt.translator().topology.n_links(), links_before);
        // ...and the app was NOT restarted: its event history continues.
        assert_eq!(
            rt.crashpad()
                .checkpoints
                .events_delivered("learning-switch"),
            checkpoint_events
        );
    }

    #[test]
    fn tickets_accumulate_for_triage() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for _ in 0..3 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        assert_eq!(rt.crashpad().tickets.len(), 3);
        let rendered = rt.crashpad().tickets.iter().next().unwrap().render();
        assert!(rendered.contains("hub#buggy"));
    }
}
