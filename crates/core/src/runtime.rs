//! The LegoSDN runtime: the re-designed controller of paper §3.
//!
//! Composition (Figure 1, right side):
//!
//! ```text
//!   Network ⇄ EventTranslator (controller core)
//!                 │ events                    ▲ commands
//!                 ▼                           │
//!            Crash-Pad dispatch ──► NetLog transactions ──► invariant gate
//!                 │                                               │
//!            AppVisor proxy ⇄ stubs (isolated apps)        byzantine recovery
//! ```
//!
//! Per app-event dispatch: checkpoint if due → deliver through the app's
//! fault domain → on fail-stop, Crash-Pad recovers (restore + ignore/
//! transform per policy) → the app's commands run inside a NetLog
//! transaction → byzantine output is caught by the invariant checker and
//! the transaction rolled back, after which Crash-Pad recovers the app's
//! internal state too.
//!
//! Crashes never propagate: the controller core and every other app keep
//! running — the paper's two fate-sharing relationships are gone.

use crate::config::{DispatchMode, IsolationMode, LegoSdnConfig, ResourceLimits};
use crate::host::{outcome_to_delivery, Host, ProxyAdapter};
use legosdn_appvisor::{AppHandle, AppVisorProxy, TransportKind};
use legosdn_controller::app::{Command, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_controller::translate::EventTranslator;
use legosdn_crashpad::{
    CompromisePolicy, CrashPad, DeliveryResult, DispatchResult, LocalSandbox, RecoverableApp,
    RecoveryTaken,
};
use legosdn_invariants::{shutdown_network, Checker};
use legosdn_netlog::{NetLog, TxMode};
use legosdn_netsim::{Network, SimTime};
use legosdn_obs::{Obs, TraceId};
use legosdn_openflow::prelude::Message;
use std::fmt;
use std::time::Instant;

/// Identifier of an attached app.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AppId(pub usize);

/// Runtime-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// App-facing events produced by translation.
    pub events_translated: u64,
    /// (app, event) deliveries attempted.
    pub dispatches: u64,
    /// Commands executed against the network.
    pub commands_executed: u64,
    /// Commands suppressed by resource limits.
    pub commands_suppressed: u64,
    /// Fail-stop failures recovered.
    pub failstop_recoveries: u64,
    /// Byzantine outputs blocked (transaction aborted / buffer dropped).
    pub byzantine_blocked: u64,
    /// Apps currently dead (No-Compromise).
    pub apps_dead: u64,
    /// Events skipped because an app was dead or suspended.
    pub events_skipped: u64,
    /// Apps suspended by resource limits.
    pub apps_suspended: u64,
    /// Controller upgrades performed.
    pub upgrades: u64,
    /// `run_cycle`/`tick_apps` invocations.
    pub cycles: u64,
}

/// Report of one run cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LegoCycleReport {
    pub events: usize,
    pub commands: usize,
    pub recoveries: usize,
    pub byzantine_blocked: usize,
    /// Wall-clock duration of the cycle in nanoseconds.
    pub elapsed_ns: u64,
}

/// Per-app resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    pub events_consumed: u64,
    pub commands_emitted: u64,
    pub last_snapshot_bytes: u64,
}

/// Why an app is not being scheduled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppStatus {
    Running,
    /// Dead under a No-Compromise policy.
    Dead,
    /// Suspended by a resource limit.
    Suspended(&'static str),
}

struct AppRecord {
    name: String,
    subscriptions: Vec<EventKind>,
    host: Host,
    status: AppStatus,
    limits: ResourceLimits,
    usage: ResourceUsage,
}

/// One translated event awaiting windowed dispatch, with the views it
/// must be delivered against — the translator's views *as of its
/// translation*, which is exactly what sequential dispatch would have
/// handed the apps before translating the next raw event.
struct WindowSlot {
    event: Event,
    topology: TopologyView,
    devices: DeviceView,
    now: SimTime,
    /// Flight-recorder trace for this event, if it was sampled. Window
    /// operations switch the obs trace scope to this id so every layer
    /// hook (proxy queue/collect, Crash-Pad recovery, NetLog commit)
    /// lands in the right causal timeline.
    trace: Option<TraceId>,
}

/// One speculative in-flight (event, app) delivery to an isolated stub.
struct WindowEntry {
    /// Index into `LegoSdnRuntime::apps`.
    app_idx: usize,
    handle: AppHandle,
    /// Tag of the snapshot queued just before the delivery, if one was
    /// due (`None`: not due, or its send failed along with the
    /// delivery's).
    snap: Option<u64>,
    /// Tag of the queued delivery; `None` means the send itself failed
    /// and the collect classifies it as a comm failure.
    seq: Option<u64>,
    /// When the delivery was queued (feeds the per-event queue-latency
    /// histogram at collect time).
    queued_at: Instant,
}

/// Attach failure.
#[derive(Clone, Debug, PartialEq)]
pub struct AttachError(pub String);

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attach failed: {}", self.0)
    }
}

impl std::error::Error for AttachError {}

/// Stable trace-event outcome label for a raw delivery.
fn delivery_label(d: &DeliveryResult) -> &'static str {
    match d {
        DeliveryResult::Ok(_) => "ok",
        DeliveryResult::Crashed { .. } => "crashed",
        DeliveryResult::CommFailure => "comm_failure",
    }
}

/// The LegoSDN runtime.
pub struct LegoSdnRuntime {
    config: LegoSdnConfig,
    translator: EventTranslator,
    crashpad: CrashPad,
    netlog: NetLog,
    checker: Option<Checker>,
    proxy: AppVisorProxy,
    apps: Vec<AppRecord>,
    stats: RuntimeStats,
    obs: Obs,
    /// Translated events seen by the trace sampler (monotonic; doubles as
    /// the `seq` half of [`TraceId`], so ids stay unique across cycles).
    trace_seen: u64,
}

impl LegoSdnRuntime {
    /// A runtime with the given configuration. Observability is wired here,
    /// once, for every layer: [`LegoSdnConfig::obs`] if set (see
    /// [`LegoSdnConfig::with_obs`] / [`LegoSdnConfig::with_journal_capacity`]),
    /// otherwise [`Obs::global`].
    #[must_use]
    pub fn new(config: LegoSdnConfig) -> Self {
        let obs = config.obs.clone().unwrap_or_else(Obs::global);
        let mut crashpad = CrashPad::new(config.crashpad.clone());
        crashpad.set_obs(obs.clone());
        let mut netlog = NetLog::new(config.netlog_mode);
        netlog.set_obs(obs.clone());
        let mut proxy = AppVisorProxy::new(config.proxy.clone());
        proxy.set_obs(obs.clone());
        LegoSdnRuntime {
            translator: EventTranslator::new(),
            crashpad,
            netlog,
            checker: config.checker.clone(),
            proxy,
            apps: Vec::new(),
            stats: RuntimeStats::default(),
            obs,
            trace_seen: 0,
            config,
        }
    }

    /// Sampling gate for the flight recorder: begin a trace for this
    /// event if it is the `trace_sample`th since the last traced one.
    /// Returns the id for scope switching (`None`: not sampled).
    fn trace_for_event(&mut self, event: &Event) -> Option<TraceId> {
        let sample = self.config.trace_sample;
        if sample == 0 {
            return None;
        }
        self.trace_seen += 1;
        if !(self.trace_seen - 1).is_multiple_of(sample) {
            return None;
        }
        let id = TraceId {
            cycle: self.stats.cycles,
            seq: self.trace_seen,
        };
        self.obs.trace_begin(id, &format!("{:?}", event.kind()));
        Some(id)
    }

    /// Build a push frame of this runtime's observability state for
    /// `campaign`: the cumulative metric snapshot plus the journal delta
    /// after `since` (see [`legosdn_obs::Obs::frame`]). This is the
    /// runtime-level entry point a custom export loop would use; the
    /// stock [`legosdn_obs::PushExporter`] calls the same machinery.
    #[must_use]
    pub fn obs_frame(
        &self,
        campaign: &str,
        since: Option<u64>,
        max_records: usize,
    ) -> legosdn_obs::PushFrame {
        self.obs.frame(campaign, since, max_records)
    }

    /// Journal records with sequence numbers after `since` (all retained
    /// records when `None`) — the raw snapshot-delta without the metric
    /// snapshot around it.
    #[must_use]
    pub fn obs_delta(&self, since: Option<u64>) -> Vec<legosdn_obs::Record> {
        self.obs.journal().snapshot_since(since)
    }

    /// Attach an app in the configured isolation mode.
    pub fn attach(&mut self, app: Box<dyn SdnApp>) -> Result<AppId, AttachError> {
        self.attach_with_limits(app, self.config.resource_limits)
    }

    /// Attach an app with specific resource limits (paper §3.4).
    pub fn attach_with_limits(
        &mut self,
        app: Box<dyn SdnApp>,
        limits: ResourceLimits,
    ) -> Result<AppId, AttachError> {
        let name = app.name().to_string();
        let subscriptions = app.subscriptions();
        let host = match self.config.isolation {
            IsolationMode::Local => Host::Local(LocalSandbox::new(app)),
            IsolationMode::Channel => Host::Isolated(
                self.proxy
                    .launch_app(app, TransportKind::Channel)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
            IsolationMode::Udp => Host::Isolated(
                self.proxy
                    .launch_app(app, TransportKind::Udp)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
            IsolationMode::Tcp => Host::Isolated(
                self.proxy
                    .launch_app(app, TransportKind::Tcp)
                    .map_err(|e| AttachError(e.to_string()))?,
            ),
        };
        self.apps.push(AppRecord {
            name,
            subscriptions,
            host,
            status: AppStatus::Running,
            limits,
            usage: ResourceUsage::default(),
        });
        Ok(AppId(self.apps.len() - 1))
    }

    /// Names of attached apps.
    #[must_use]
    pub fn app_names(&self) -> Vec<String> {
        self.apps.iter().map(|a| a.name.clone()).collect()
    }

    /// An app's scheduling status.
    pub fn app_status(&self, id: AppId) -> Option<&AppStatus> {
        self.apps.get(id.0).map(|a| &a.status)
    }

    /// An app's resource usage.
    pub fn app_usage(&self, id: AppId) -> Option<ResourceUsage> {
        self.apps.get(id.0).map(|a| a.usage)
    }

    /// Runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The observability handle this runtime (and its Crash-Pad, NetLog,
    /// and AppVisor layers) reports into. Cloning is an `Arc` bump, so a
    /// long-running driver can hand it to an ops endpoint
    /// (`legosdn_obs::ObsServer`) without touching the hot path.
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// The Crash-Pad engine (tickets, checkpoints, policies).
    #[must_use]
    pub fn crashpad(&self) -> &CrashPad {
        &self.crashpad
    }

    /// Mutable Crash-Pad access (operator policy updates at runtime).
    pub fn crashpad_mut(&mut self) -> &mut CrashPad {
        &mut self.crashpad
    }

    /// The NetLog engine (transaction log, counter cache).
    #[must_use]
    pub fn netlog(&self) -> &NetLog {
        &self.netlog
    }

    /// The controller core's views.
    #[must_use]
    pub fn translator(&self) -> &EventTranslator {
        &self.translator
    }

    /// The controller is never crashed by app failures; this exists for
    /// symmetry with the monolithic baseline in experiments.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        false
    }

    /// Drain network events, translate, and dispatch under full protection.
    ///
    /// Under [`DispatchMode::Pipelined`] with a window depth above 1 the
    /// whole burst is translated up front and dispatched through the
    /// cross-event window scheduler; otherwise each raw event's
    /// translations dispatch before the next raw is translated (the
    /// original loop).
    pub fn run_cycle(&mut self, net: &mut Network) -> LegoCycleReport {
        let _span = self.obs.span("core.run_cycle");
        let started = Instant::now();
        self.stats.cycles += 1;
        let mut report = LegoCycleReport::default();
        if self.config.dispatch == DispatchMode::Pipelined && self.config.window.depth > 1 {
            let slots = self.translate_burst(net, &mut report);
            self.dispatch_windowed(net, &slots, &mut report);
        } else {
            for raw in net.poll_events() {
                let events = self.translator.process(net, raw);
                self.stats.events_translated += events.len() as u64;
                self.obs
                    .counter("core", "events_translated", "")
                    .add(events.len() as u64);
                for ev in events {
                    report.events += 1;
                    let trace = self.trace_for_event(&ev);
                    self.obs.trace_scope(trace);
                    self.dispatch_event(net, &ev, &mut report);
                    self.obs.trace_scope(None);
                }
            }
        }
        report.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report
    }

    /// Translate the cycle's entire raw-event burst up front, snapshotting
    /// the translator's views per event so each delivery sees exactly the
    /// views sequential dispatch would have handed it. `Network::now()`
    /// only advances via an explicit `advance()`, so the captured `now` is
    /// constant across the cycle either way.
    fn translate_burst(
        &mut self,
        net: &mut Network,
        report: &mut LegoCycleReport,
    ) -> Vec<WindowSlot> {
        let mut slots = Vec::new();
        for raw in net.poll_events() {
            let events = self.translator.process(net, raw);
            self.stats.events_translated += events.len() as u64;
            self.obs
                .counter("core", "events_translated", "")
                .add(events.len() as u64);
            for ev in events {
                report.events += 1;
                let trace = self.trace_for_event(&ev);
                slots.push(WindowSlot {
                    event: ev,
                    topology: self.translator.topology.clone(),
                    devices: self.translator.devices.clone(),
                    now: net.now(),
                    trace,
                });
            }
        }
        slots
    }

    /// Deliver a Tick to subscribed apps.
    pub fn tick_apps(&mut self, net: &mut Network) -> LegoCycleReport {
        let _span = self.obs.span("core.tick_apps");
        let started = Instant::now();
        self.stats.cycles += 1;
        let mut report = LegoCycleReport::default();
        let ev = Event::Tick(net.now());
        report.events += 1;
        let trace = self.trace_for_event(&ev);
        self.obs.trace_scope(trace);
        self.dispatch_event(net, &ev, &mut report);
        self.obs.trace_scope(None);
        report.elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report
    }

    fn dispatch_event(&mut self, net: &mut Network, event: &Event, report: &mut LegoCycleReport) {
        match self.config.dispatch {
            DispatchMode::Sequential => self.dispatch_sequential(net, event, report),
            DispatchMode::Pipelined => self.dispatch_pipelined(net, event, report),
        }
    }

    /// Subscription / status / event-budget gate for one app. Returns
    /// `true` when the app should receive the event, charging the event
    /// to its budget. Both dispatch modes use this, so selection (and
    /// its suspension side effects) is identical across them.
    fn select_app(&mut self, idx: usize, kind: EventKind) -> bool {
        if !self.apps[idx].subscriptions.contains(&kind) {
            return false;
        }
        if self.apps[idx].status != AppStatus::Running {
            self.stats.events_skipped += 1;
            return false;
        }
        if let Some(max) = self.apps[idx].limits.max_events {
            if self.apps[idx].usage.events_consumed >= max {
                self.apps[idx].status = AppStatus::Suspended("event budget exhausted");
                self.stats.apps_suspended += 1;
                self.stats.events_skipped += 1;
                return false;
            }
        }
        self.stats.dispatches += 1;
        self.obs.counter("core", "dispatches", "").inc();
        self.apps[idx].usage.events_consumed += 1;
        self.obs
            .trace_event("fill", &self.apps[idx].name, "selected");
        true
    }

    /// The original monolithic loop: one blocking Crash-Pad round-trip
    /// per app, in attach order.
    fn dispatch_sequential(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut LegoCycleReport,
    ) {
        let kind = event.kind();
        for idx in 0..self.apps.len() {
            if !self.select_app(idx, kind) {
                continue;
            }
            self.dispatch_to_app(net, idx, event, report);
        }
    }

    /// Phased pipeline over the same roster (see [`DispatchMode`]):
    ///
    /// - **prepare**: select apps, checkpoint each if due;
    /// - **deliver**: fan the event out to isolated stubs (they process
    ///   on their own threads), run local sandboxes inline meanwhile;
    /// - **gather**: classify each outcome through Crash-Pad in attach
    ///   order — restore/replay/transform runs only for failed apps;
    /// - **commit**: NetLog transactions + byzantine gate per app, in
    ///   attach order.
    ///
    /// Deliveries read only the translator's views and per-app state, so
    /// overlapping them cannot be observed by the apps; everything that
    /// touches the network — commits, byzantine recovery, No-Compromise
    /// shutdown — stays serialized in attach order. Network state and
    /// NetLog transaction order are therefore identical to
    /// [`DispatchMode::Sequential`] (the determinism integration test
    /// holds both modes to that).
    fn dispatch_pipelined(
        &mut self,
        net: &mut Network,
        event: &Event,
        report: &mut LegoCycleReport,
    ) {
        let kind = event.kind();
        let now = net.now();
        self.obs
            .counter("core", "pipelined_dispatch_rounds", "")
            .inc();

        // Phase A — prepare: selection, then up-front checkpoints.
        let selected: Vec<usize> = {
            let _span = self.obs.span("core.dispatch_prepare");
            let selected: Vec<usize> = (0..self.apps.len())
                .filter(|&i| self.select_app(i, kind))
                .collect();
            for &idx in &selected {
                let name = self.apps[idx].name.clone();
                match &mut self.apps[idx].host {
                    Host::Local(sandbox) => self.crashpad.prepare(sandbox, &name),
                    Host::Isolated(handle) => {
                        let mut adapter = ProxyAdapter {
                            proxy: &mut self.proxy,
                            handle: *handle,
                        };
                        self.crashpad.prepare(&mut adapter, &name);
                    }
                }
            }
            selected
        };

        // Phase B — deliver: stubs get their frames first so they start
        // processing; local sandboxes run inline while the stubs work;
        // then collect the stub outcomes.
        let mut deliveries: Vec<Option<DeliveryResult>> =
            (0..selected.len()).map(|_| None).collect();
        {
            let _span = self.obs.span("core.dispatch_deliver");
            let mut stub_slots: Vec<usize> = Vec::new();
            let mut stub_handles: Vec<AppHandle> = Vec::new();
            for (pos, &idx) in selected.iter().enumerate() {
                if let Host::Isolated(h) = &self.apps[idx].host {
                    stub_slots.push(pos);
                    stub_handles.push(*h);
                }
            }
            let ticket = (!stub_handles.is_empty()).then(|| {
                self.proxy.fanout_send(
                    &stub_handles,
                    event,
                    &self.translator.topology,
                    &self.translator.devices,
                    now,
                )
            });
            for (pos, &idx) in selected.iter().enumerate() {
                let name = self.apps[idx].name.clone();
                if let Host::Local(sandbox) = &mut self.apps[idx].host {
                    self.obs.trace_event("send", &name, "local");
                    let delivery = sandbox.deliver(
                        event,
                        &self.translator.topology,
                        &self.translator.devices,
                        now,
                    );
                    self.obs
                        .trace_event("collect", &name, delivery_label(&delivery));
                    deliveries[pos] = Some(delivery);
                }
            }
            if let Some(ticket) = ticket {
                for (&pos, d) in stub_slots.iter().zip(self.proxy.fanout_collect(ticket)) {
                    deliveries[pos] = Some(outcome_to_delivery(d.outcome));
                }
            }
        }

        // Phase C — gather: Crash-Pad bookkeeping per app in attach
        // order; restore + policy transform/replay only for failures.
        let outcomes: Vec<DispatchResult> = {
            let _span = self.obs.span("core.dispatch_gather");
            selected
                .iter()
                .zip(deliveries)
                .map(|(&idx, delivery)| {
                    let delivery = delivery.expect("every selected app was delivered");
                    let name = self.apps[idx].name.clone();
                    match &mut self.apps[idx].host {
                        Host::Local(sandbox) => self.crashpad.complete(
                            sandbox,
                            &name,
                            event,
                            delivery,
                            &self.translator.topology,
                            &self.translator.devices,
                            now,
                        ),
                        Host::Isolated(handle) => {
                            let mut adapter = ProxyAdapter {
                                proxy: &mut self.proxy,
                                handle: *handle,
                            };
                            self.crashpad.complete(
                                &mut adapter,
                                &name,
                                event,
                                delivery,
                                &self.translator.topology,
                                &self.translator.devices,
                                now,
                            )
                        }
                    }
                })
                .collect()
        };

        // Phase D — commit: network effects in attach order, exactly as
        // sequential dispatch would issue them.
        let _span = self.obs.span("core.dispatch_commit");
        for (&idx, result) in selected.iter().zip(outcomes) {
            self.commit_outcome(net, idx, event, result, report);
        }
    }

    /// Cross-event window scheduler (DESIGN.md §10): up to
    /// `config.window.depth` slots are in flight to the isolated stubs at
    /// once. Two cursors walk the slot list — `next_send` speculatively
    /// selects apps and queues (snapshot-if-due, delivery) pairs on each
    /// stub's FIFO RPC stream; `commit_pos` collects, gathers, and
    /// commits strictly in (event, attach) order. A stub therefore
    /// processes event *k+1* while the proxy is still gathering *k*, but
    /// per-app delivery order equals translation order and every network
    /// effect lands exactly as sequential dispatch would issue it.
    ///
    /// Failure on slot *k* cancels that app's queued *k+1..* deliveries
    /// (their speculative selection is rolled back), recovery runs per
    /// the existing Crash-Pad plan, and the cancelled slots are
    /// re-selected and re-sent from the recovered state before the window
    /// refills.
    fn dispatch_windowed(
        &mut self,
        net: &mut Network,
        slots: &[WindowSlot],
        report: &mut LegoCycleReport,
    ) {
        if slots.is_empty() {
            return;
        }
        let depth = self.config.window.depth;
        self.obs
            .gauge("core", "window_depth", "")
            .set(i64::try_from(depth).unwrap_or(i64::MAX));
        let mut pending: Vec<Vec<WindowEntry>> = (0..slots.len()).map(|_| Vec::new()).collect();
        let mut inflight: Vec<u64> = vec![0; self.apps.len()];
        let mut next_send = 0usize;
        let mut commit_pos = 0usize;
        while commit_pos < slots.len() {
            {
                let _span = self.obs.span("core.window_fill");
                while next_send < slots.len() && next_send < commit_pos + depth {
                    pending[next_send] = self.window_send_slot(&slots[next_send], &mut inflight);
                    next_send += 1;
                }
            }
            {
                let _span = self.obs.span("core.window_commit");
                let entries = std::mem::take(&mut pending[commit_pos]);
                let slot = &slots[commit_pos];
                self.obs.trace_scope(slot.trace);
                let kind = slot.event.kind();
                let mut entries = entries.into_iter().peekable();
                for idx in 0..self.apps.len() {
                    if entries.peek().is_some_and(|e| e.app_idx == idx) {
                        let entry = entries.next().expect("peeked");
                        inflight[idx] -= 1;
                        self.window_commit_entry(
                            net,
                            entry,
                            slots,
                            commit_pos,
                            next_send,
                            &mut pending,
                            &mut inflight,
                            report,
                        );
                    } else if matches!(self.apps[idx].host, Host::Local(_))
                        && self.select_app(idx, kind)
                    {
                        // Local sandboxes have no stub to overlap with:
                        // they run inline at commit, against the slot's
                        // captured views.
                        let name = self.apps[idx].name.clone();
                        let result = {
                            let Host::Local(sandbox) = &mut self.apps[idx].host else {
                                unreachable!("checked above");
                            };
                            self.crashpad.prepare(sandbox, &name);
                            self.obs.trace_event("send", &name, "local");
                            let delivery = sandbox.deliver(
                                &slot.event,
                                &slot.topology,
                                &slot.devices,
                                slot.now,
                            );
                            self.obs
                                .trace_event("collect", &name, delivery_label(&delivery));
                            self.crashpad.complete(
                                sandbox,
                                &name,
                                &slot.event,
                                delivery,
                                &slot.topology,
                                &slot.devices,
                                slot.now,
                            )
                        };
                        self.commit_outcome_with(
                            net,
                            idx,
                            &slot.event,
                            result,
                            report,
                            Some((&slot.topology, &slot.devices)),
                        );
                    }
                }
            }
            commit_pos += 1;
        }
        self.obs.trace_scope(None);
    }

    /// Speculatively select and queue one slot's deliveries to the
    /// isolated stubs (locals run inline at commit). Selection side
    /// effects (dispatch counters, event budgets, suspension) apply at
    /// send time and are rolled back entry-by-entry if a failure on an
    /// earlier slot cancels the entry.
    fn window_send_slot(&mut self, slot: &WindowSlot, inflight: &mut [u64]) -> Vec<WindowEntry> {
        self.obs.trace_scope(slot.trace);
        let kind = slot.event.kind();
        let mut entries = Vec::new();
        for idx in 0..self.apps.len() {
            if !matches!(self.apps[idx].host, Host::Isolated(_)) {
                continue;
            }
            if !self.select_app(idx, kind) {
                continue;
            }
            entries.push(self.window_queue_one(idx, slot, inflight));
        }
        entries
    }

    /// Queue (snapshot-if-due, delivery) for one selected stub app.
    /// Snapshot due-ness is projected over the app's uncollected
    /// in-flight deliveries: a snapshot queued on the FIFO stream between
    /// deliveries *k* and *k+1* captures the state after *k* — exactly
    /// the pre-event checkpoint the sequential protocol takes.
    fn window_queue_one(
        &mut self,
        idx: usize,
        slot: &WindowSlot,
        inflight: &mut [u64],
    ) -> WindowEntry {
        let Host::Isolated(handle) = &self.apps[idx].host else {
            unreachable!("windowed entries are stub-only");
        };
        let handle = *handle;
        let name = self.apps[idx].name.clone();
        let snap = if self
            .crashpad
            .checkpoints
            .checkpoint_due_ahead(&name, inflight[idx])
        {
            self.proxy.queue_snapshot(handle).ok().flatten()
        } else {
            None
        };
        let seq = self
            .proxy
            .queue_deliver(handle, &slot.event, &slot.topology, &slot.devices, slot.now)
            .ok()
            .flatten();
        inflight[idx] += 1;
        WindowEntry {
            app_idx: idx,
            handle,
            snap,
            seq,
            queued_at: Instant::now(),
        }
    }

    /// Collect, gather, and commit one in-flight (event, app) entry, then
    /// handle window cancellation/refill if the app failed or was
    /// restored mid-stream.
    #[allow(clippy::too_many_arguments)]
    fn window_commit_entry(
        &mut self,
        net: &mut Network,
        entry: WindowEntry,
        slots: &[WindowSlot],
        commit_pos: usize,
        next_send: usize,
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
        report: &mut LegoCycleReport,
    ) {
        let idx = entry.app_idx;
        let slot = &slots[commit_pos];
        let name = self.apps[idx].name.clone();

        // The snapshot queued before this delivery: collect and book it.
        // The recorded duration is the wait the proxy actually paid here —
        // near zero when the stub answered while the window was busy,
        // which is the cost this scheduler exists to hide.
        if let Some(tag) = entry.snap {
            let waited = Instant::now();
            if let Ok(bytes) = self.proxy.collect_snapshot(entry.handle, tag) {
                let dur_ns = u64::try_from(waited.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.crashpad.record_prepared(&name, bytes, dur_ns);
            }
        }

        self.crashpad.note_dispatch();
        let delivery = match entry.seq {
            Some(seq) => outcome_to_delivery(self.proxy.collect_deliver(entry.handle, seq)),
            None => DeliveryResult::CommFailure,
        };
        self.obs
            .histogram("core", "window_queue_ns", "")
            .observe(u64::try_from(entry.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX));

        let failed = !matches!(delivery, DeliveryResult::Ok(_));
        if failed {
            // Cancel this app's queued later deliveries BEFORE recovery
            // restores it, so the RPC stream is clean when replay begins.
            self.window_cancel_app(idx, commit_pos, slots, pending, inflight);
        }
        let byz_before = self.stats.byzantine_blocked;
        let result = {
            let mut adapter = ProxyAdapter {
                proxy: &mut self.proxy,
                handle: entry.handle,
            };
            self.crashpad.complete(
                &mut adapter,
                &name,
                &slot.event,
                delivery,
                &slot.topology,
                &slot.devices,
                slot.now,
            )
        };
        self.commit_outcome_with(
            net,
            idx,
            &slot.event,
            result,
            report,
            Some((&slot.topology, &slot.devices)),
        );
        let byz_recovered = self.stats.byzantine_blocked > byz_before;
        if byz_recovered && !failed {
            // Byzantine caught at commit: the app was restored mid-stream,
            // so its queued later deliveries ran from the wrong state.
            self.window_cancel_app(idx, commit_pos, slots, pending, inflight);
        }
        if failed || byz_recovered {
            self.window_resend_app(idx, commit_pos, next_send, slots, pending, inflight);
            // The resend loop re-scoped the recorder to the refilled
            // slots; later entries of this commit still belong here.
            self.obs.trace_scope(slot.trace);
        }
    }

    /// Drop an app's in-flight entries beyond `commit_pos` and roll back
    /// their speculative selection, so re-selection sees exactly the
    /// post-recovery state sequential dispatch would.
    fn window_cancel_app(
        &mut self,
        idx: usize,
        commit_pos: usize,
        slots: &[WindowSlot],
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) {
        let name = self.apps[idx].name.clone();
        let mut tags = Vec::new();
        let mut handle = None;
        for (s, slot_entries) in pending.iter_mut().enumerate().skip(commit_pos + 1) {
            if let Some(pos) = slot_entries.iter().position(|e| e.app_idx == idx) {
                let e = slot_entries.remove(pos);
                tags.extend(e.snap);
                tags.extend(e.seq);
                handle = Some(e.handle);
                // Roll the speculative selection back. (The monotonic obs
                // dispatch counter keeps the cancelled send; RuntimeStats
                // is the determinism-bearing surface.)
                self.stats.dispatches -= 1;
                self.apps[idx].usage.events_consumed -= 1;
                inflight[idx] -= 1;
                // The cancellation belongs to the *cancelled* event's
                // timeline, not the failed one currently in scope.
                if let Some(tid) = slots[s].trace {
                    self.obs
                        .trace_event_for(tid, "cancel", &name, "crash_upstream");
                }
            }
        }
        if let Some(h) = handle {
            let _ = self.proxy.cancel_pending(h, &tags);
        }
    }

    /// Re-run selection for an app's cancelled slots (post-recovery
    /// state: a revived app is usually re-selected, a dead or suspended
    /// one is skipped and counted, just as sequential dispatch would) and
    /// queue fresh deliveries for the survivors.
    fn window_resend_app(
        &mut self,
        idx: usize,
        commit_pos: usize,
        next_send: usize,
        slots: &[WindowSlot],
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) {
        for s in (commit_pos + 1)..next_send {
            // Re-queued work records into the re-sent event's trace.
            self.obs.trace_scope(slots[s].trace);
            if !self.select_app(idx, slots[s].event.kind()) {
                continue;
            }
            self.obs
                .trace_event("resend", &self.apps[idx].name, "requeued");
            let entry = self.window_queue_one(idx, &slots[s], inflight);
            let pos = pending[s]
                .iter()
                .position(|e| e.app_idx > idx)
                .unwrap_or(pending[s].len());
            pending[s].insert(pos, entry);
        }
    }

    fn dispatch_to_app(
        &mut self,
        net: &mut Network,
        idx: usize,
        event: &Event,
        report: &mut LegoCycleReport,
    ) {
        let now = net.now();
        let name = self.apps[idx].name.clone();
        // Crash-Pad protected delivery.
        let result = match &mut self.apps[idx].host {
            Host::Local(sandbox) => self.crashpad.dispatch(
                sandbox,
                &name,
                event,
                &self.translator.topology,
                &self.translator.devices,
                now,
            ),
            Host::Isolated(handle) => {
                let mut adapter = ProxyAdapter {
                    proxy: &mut self.proxy,
                    handle: *handle,
                };
                self.crashpad.dispatch(
                    &mut adapter,
                    &name,
                    event,
                    &self.translator.topology,
                    &self.translator.devices,
                    now,
                )
            }
        };
        self.commit_outcome(net, idx, event, result, report);
    }

    /// Act on one app's dispatch outcome: execute its commands under the
    /// NetLog/byzantine guard, or mark it dead. Shared tail of both
    /// dispatch modes.
    fn commit_outcome(
        &mut self,
        net: &mut Network,
        idx: usize,
        event: &Event,
        result: DispatchResult,
        report: &mut LegoCycleReport,
    ) {
        self.commit_outcome_with(net, idx, event, result, report, None);
    }

    /// `commit_outcome` with an explicit view pair for byzantine recovery.
    /// The windowed scheduler translates a whole burst before committing,
    /// so at commit time the live translator views have advanced past the
    /// event being committed — recovery must replay against the views the
    /// event was dispatched with (`views`), or router-style apps rebuild
    /// different state than sequential dispatch would. `None` means the
    /// live views are the event's views (sequential / per-event pipeline).
    fn commit_outcome_with(
        &mut self,
        net: &mut Network,
        idx: usize,
        event: &Event,
        result: DispatchResult,
        report: &mut LegoCycleReport,
        views: Option<(&TopologyView, &DeviceView)>,
    ) {
        let verdict = match &result {
            DispatchResult::Delivered(_) => "delivered",
            DispatchResult::Recovered { .. } => "recovered",
            DispatchResult::AppDead { .. } => "app_dead",
        };
        self.obs
            .trace_event("commit", &self.apps[idx].name, verdict);
        match result {
            DispatchResult::Delivered(commands) => {
                self.execute_guarded(net, idx, event, commands, report, true, views);
            }
            DispatchResult::Recovered {
                commands, recovery, ..
            } => {
                report.recoveries += 1;
                self.stats.failstop_recoveries += 1;
                self.obs
                    .counter("core", "failstop_recoveries", &self.apps[idx].name)
                    .inc();
                // Commands from transformed events are real output; execute
                // them under the same guard (no further byzantine recursion
                // on already-recovered output — drop instead).
                let _ = recovery;
                self.execute_guarded(net, idx, event, commands, report, false, views);
            }
            DispatchResult::AppDead { .. } => {
                self.mark_dead(net, idx, event);
            }
        }
    }

    /// Execute an app's commands inside a NetLog transaction with the
    /// byzantine gate. `allow_recovery` bounds the recursion: output from a
    /// recovery path that is still byzantine is dropped, not re-recovered.
    #[allow(clippy::too_many_arguments)]
    fn execute_guarded(
        &mut self,
        net: &mut Network,
        idx: usize,
        event: &Event,
        commands: Vec<Command>,
        report: &mut LegoCycleReport,
        allow_recovery: bool,
        views: Option<(&TopologyView, &DeviceView)>,
    ) {
        if commands.is_empty() {
            return;
        }
        // Resource limit on emitted commands.
        if let Some(max) = self.apps[idx].limits.max_commands {
            let used = self.apps[idx].usage.commands_emitted;
            if used + commands.len() as u64 > max {
                self.apps[idx].status = AppStatus::Suspended("command budget exhausted");
                self.stats.apps_suspended += 1;
                self.stats.commands_suppressed += commands.len() as u64;
                return;
            }
        }

        let mut tx = self.netlog.begin_for(&self.apps[idx].name);
        for c in &commands {
            // Reads return synchronously in immediate mode; pass stats
            // replies through the counter cache.
            match self.netlog.execute(&mut tx, net, c.dpid, &c.msg) {
                Ok(replies) => {
                    for mut reply in replies {
                        if let Message::StatsReply(ref mut sr) = reply {
                            self.netlog.adjust_stats(c.dpid, sr);
                        }
                        // Replies would flow back to the app as events in a
                        // fully async design; translation handles the async
                        // ones, so synchronous replies are dropped here.
                    }
                }
                Err(_) => { /* unknown/down switch: the op is a no-op */ }
            }
        }

        // Byzantine gate. Only state-altering output can violate network
        // invariants; pure packet-outs/reads skip the (expensive) check.
        let alters_state = commands.iter().any(|c| c.msg.alters_network_state());
        let violations = match (
            alters_state.then_some(()).and(self.checker.as_ref()),
            self.netlog.mode(),
        ) {
            (Some(checker), TxMode::Buffered) => {
                let r = checker.gate(net, tx.buffered_commands());
                (!r.is_clean()).then_some(r.violations.len())
            }
            (Some(checker), TxMode::Immediate) => {
                let r = checker.check(net);
                (!r.is_clean()).then_some(r.violations.len())
            }
            (None, _) => None,
        };

        match violations {
            Some(nviol) => {
                // Abort: buffered mode drops the buffer; immediate mode
                // rolls the network back via the undo log.
                let _ = self.netlog.abort(tx, net);
                report.byzantine_blocked += 1;
                self.stats.byzantine_blocked += 1;
                self.obs
                    .counter("core", "byzantine_blocked", &self.apps[idx].name)
                    .inc();
                let policy = self
                    .crashpad
                    .policies
                    .lookup(&self.apps[idx].name, event.kind());
                if allow_recovery {
                    let recovered = self.recover_byzantine(net, idx, event, nviol, views);
                    // Recovered output (from transformed events) executes
                    // with recovery disabled.
                    self.execute_guarded(net, idx, event, recovered, report, false, views);
                } else {
                    self.stats.commands_suppressed += commands.len() as u64;
                }
                if policy == CompromisePolicy::NoCompromise
                    && self.config.shutdown_network_on_no_compromise
                {
                    shutdown_network(net);
                }
            }
            None => {
                let applied = match self.netlog.commit(tx, net) {
                    Ok(r) => r.ops_applied,
                    Err(_) => 0,
                };
                report.commands += applied;
                self.stats.commands_executed += applied as u64;
                self.obs
                    .counter("core", "commands_executed", "")
                    .add(applied as u64);
                self.apps[idx].usage.commands_emitted += applied as u64;
            }
        }
    }

    fn recover_byzantine(
        &mut self,
        net: &mut Network,
        idx: usize,
        event: &Event,
        violations: usize,
        views: Option<(&TopologyView, &DeviceView)>,
    ) -> Vec<Command> {
        let now = net.now();
        let name = self.apps[idx].name.clone();
        // Replay must see the views the event was dispatched with, which
        // the windowed scheduler supplies (its translator has already
        // advanced past this event by commit time).
        let (topo, dev) = views.unwrap_or((&self.translator.topology, &self.translator.devices));
        let result = match &mut self.apps[idx].host {
            Host::Local(sandbox) => self
                .crashpad
                .recover_byzantine(sandbox, &name, event, violations, topo, dev, now),
            Host::Isolated(handle) => {
                let mut adapter = ProxyAdapter {
                    proxy: &mut self.proxy,
                    handle: *handle,
                };
                self.crashpad.recover_byzantine(
                    &mut adapter,
                    &name,
                    event,
                    violations,
                    topo,
                    dev,
                    now,
                )
            }
        };
        match result {
            DispatchResult::Recovered {
                commands, recovery, ..
            } => {
                if recovery == RecoveryTaken::Transformed {
                    commands
                } else {
                    Vec::new()
                }
            }
            DispatchResult::AppDead { .. } => {
                self.mark_dead(net, idx, event);
                Vec::new()
            }
            DispatchResult::Delivered(c) => c,
        }
    }

    fn mark_dead(&mut self, net: &mut Network, idx: usize, event: &Event) {
        if self.apps[idx].status != AppStatus::Dead {
            self.apps[idx].status = AppStatus::Dead;
            self.stats.apps_dead += 1;
        }
        let policy = self
            .crashpad
            .policies
            .lookup(&self.apps[idx].name, event.kind());
        if policy == CompromisePolicy::NoCompromise && self.config.shutdown_network_on_no_compromise
        {
            shutdown_network(net);
        }
    }

    /// §5 STS-guided diagnosis: find the checkpoint and minimal causal
    /// event sequence that reproduce a crash of the given app on
    /// `offending`. The app's current state is preserved around the
    /// search. Typical input for `offending` is the `offending_event` of
    /// the app's latest problem ticket.
    pub fn diagnose(
        &mut self,
        id: AppId,
        offending: &Event,
        now: legosdn_netsim::SimTime,
    ) -> Result<legosdn_crashpad::Diagnosis, legosdn_crashpad::DiagnoseError> {
        let Some(record) = self.apps.get_mut(id.0) else {
            return Err(legosdn_crashpad::DiagnoseError::NoHistory);
        };
        let name = record.name.clone();
        match &mut record.host {
            Host::Local(sandbox) => self.crashpad.diagnose(
                sandbox,
                &name,
                offending,
                &self.translator.topology,
                &self.translator.devices,
                now,
            ),
            Host::Isolated(handle) => {
                let mut adapter = ProxyAdapter {
                    proxy: &mut self.proxy,
                    handle: *handle,
                };
                self.crashpad.diagnose(
                    &mut adapter,
                    &name,
                    offending,
                    &self.translator.topology,
                    &self.translator.devices,
                    now,
                )
            }
        }
    }

    /// §3.4 controller upgrade: restart the controller core without
    /// touching the apps. The topology/device views are rebuilt by
    /// re-handshaking every switch; apps keep their state and their fault
    /// domains — the outage the monolithic reboot causes does not happen.
    pub fn upgrade_controller(&mut self, net: &mut Network) {
        self.translator = EventTranslator::new();
        self.stats.upgrades += 1;
        let dpids: Vec<_> = net.switches().map(|s| s.dpid()).collect();
        for dpid in dpids {
            if net.switch(dpid).map(|s| s.is_up()).unwrap_or(false) {
                let _ = self
                    .translator
                    .process(net, legosdn_netsim::NetEvent::SwitchConnected(dpid));
            }
        }
    }

    /// Resume a suspended app (operator action after a resource review).
    pub fn resume(&mut self, id: AppId, extra_budget: ResourceLimits) -> bool {
        let Some(app) = self.apps.get_mut(id.0) else {
            return false;
        };
        if matches!(app.status, AppStatus::Suspended(_)) {
            app.status = AppStatus::Running;
            app.limits = extra_budget;
            return true;
        }
        false
    }

    /// Shut down all isolated stubs.
    pub fn shutdown(self) {
        let _ = self.proxy.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_apps::{BugEffect, BugTrigger, FaultyApp, Hub, LearningSwitch};
    use legosdn_crashpad::{CheckpointPolicy, CrashPadConfig, PolicyTable, TransformDirection};
    use legosdn_netsim::Topology;
    use legosdn_openflow::prelude::*;

    fn runtime(isolation: IsolationMode) -> LegoSdnRuntime {
        LegoSdnRuntime::new(LegoSdnConfig {
            isolation,
            ..LegoSdnConfig::default()
        })
    }

    fn net2() -> (Network, Topology) {
        let topo = Topology::linear(2, 1);
        (Network::new(&topo), topo)
    }

    #[test]
    fn construction_time_obs_wiring_reaches_every_layer() {
        let obs = Obs::new();
        let (mut net, topo) = net2();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig::default().with_obs(obs.clone()));
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        // The runtime's own counters and the Crash-Pad journal records
        // both landed in the private instance, with no set_obs call.
        assert!(obs.counter("core", "dispatches", "").get() > 0);
        assert!(obs
            .journal()
            .snapshot()
            .iter()
            .any(|r| r.kind.is_detection()));
    }

    #[test]
    fn with_journal_capacity_bounds_the_private_journal() {
        let rt = LegoSdnRuntime::new(LegoSdnConfig::default().with_journal_capacity(4));
        assert_eq!(rt.obs().journal().capacity(), 4);
    }

    #[test]
    fn obs_frame_and_delta_expose_the_snapshot() {
        let obs = Obs::new();
        let rt = LegoSdnRuntime::new(LegoSdnConfig::default().with_obs(obs.clone()));
        obs.record(legosdn_obs::RecordKind::HeartbeatMiss { app: "a".into() });
        obs.record(legosdn_obs::RecordKind::HeartbeatMiss { app: "b".into() });
        let frame = rt.obs_frame("alpha", None, 4096);
        assert_eq!(frame.campaign, "alpha");
        assert_eq!(frame.records.len(), 2);
        assert_eq!(rt.obs_delta(Some(0)).len(), 1);
    }

    #[test]
    fn pipelined_dispatch_contains_crashes_and_counts_phases() {
        let (mut net, topo) = net2();
        let obs = Obs::new();
        let mut rt = LegoSdnRuntime::new(
            LegoSdnConfig {
                isolation: IsolationMode::Channel,
                ..LegoSdnConfig::default()
            }
            .with_obs(obs.clone())
            .with_dispatch(DispatchMode::Pipelined),
        );
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // Healthy neighbor still produced network output.
        assert!(report.commands > 0, "{report:?}");
        // Per-phase instrumentation landed.
        assert!(obs.counter("core", "pipelined_dispatch_rounds", "").get() > 0);
        for phase in [
            "dispatch_prepare",
            "dispatch_deliver",
            "dispatch_gather",
            "dispatch_commit",
        ] {
            assert!(
                obs.histogram("core", phase, "").count() > 0,
                "missing span histogram for {phase}"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn windowed_dispatch_contains_crashes_and_records_window_metrics() {
        let (mut net, topo) = net2();
        let obs = Obs::new();
        let mut rt = LegoSdnRuntime::new(
            LegoSdnConfig {
                isolation: IsolationMode::Channel,
                ..LegoSdnConfig::default()
            }
            .with_obs(obs.clone())
            .with_dispatch(DispatchMode::Pipelined)
            .with_window(4),
        );
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        // A burst of four packet-ins in one cycle, with the poison in the
        // middle: slots after the crash must be cancelled, the app
        // restored, and the tail re-sent from the recovered state.
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(7)))
            .unwrap();
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(8)))
            .unwrap();
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events >= 4, "{report:?}");
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // Healthy neighbor still produced network output for the burst.
        assert!(report.commands > 0, "{report:?}");
        // Both apps saw every event exactly once (crashed deliveries are
        // replay-recovered, cancelled ones re-sent): the dispatch count
        // must equal what sequential dispatch would record.
        assert_eq!(rt.stats().dispatches, 2 * report.events as u64);
        // Window instrumentation landed.
        assert_eq!(obs.gauge("core", "window_depth", "").get(), 4);
        assert!(obs.histogram("core", "window_queue_ns", "").count() >= 4);
        for phase in ["window_fill", "window_commit"] {
            assert!(
                obs.histogram("core", phase, "").count() > 0,
                "missing span histogram for {phase}"
            );
        }
        // The system keeps processing later events after the window drains.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(10)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events > 0);
        rt.shutdown();
    }

    #[test]
    fn healthy_learning_switch_delivers_traffic() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net); // handshake + discovery
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        // First packet floods (unknown dst), reply teaches, then direct.
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        net.inject(b, Packet::ethernet(b, a)).unwrap();
        rt.run_cycle(&mut net);
        let trace = net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert!(trace.delivered_to(b) || trace.packet_ins > 0);
        assert!(rt.stats().commands_executed > 0);
        assert!(!rt.is_crashed());
    }

    #[test]
    fn app_crash_does_not_kill_controller_or_other_apps() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1, "{report:?}");
        assert!(!rt.is_crashed());
        // The learning switch still ran and emitted output for the event.
        assert!(rt.stats().dispatches >= 2);
        // And the system keeps processing later events.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.events > 0);
    }

    #[test]
    fn isolated_channel_app_crash_is_contained() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Channel);
        let poison = topo.hosts[1].mac;
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(poison),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let a = topo.hosts[0].mac;
        net.inject(a, Packet::ethernet(a, poison)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.recoveries >= 1);
        // Recovered: a later clean packet still floods.
        net.inject(a, Packet::ethernet(a, MacAddr::from_index(9)))
            .unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.commands > 0, "{report:?}");
        rt.shutdown();
    }

    #[test]
    fn byzantine_blackhole_is_blocked_and_rolled_back() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Blackhole,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.byzantine_blocked >= 1, "{report:?}");
        // The drop-all rule must NOT be on any switch.
        for sw in net.switches() {
            assert!(
                sw.table().iter().all(|e| e.priority != u16::MAX),
                "black-hole rule survived on {:?}",
                sw.dpid()
            );
        }
    }

    #[test]
    fn byzantine_loop_blocked_in_buffered_mode() {
        let (mut net, topo) = net2();
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            netlog_mode: TxMode::Buffered,
            ..LegoSdnConfig::default()
        });
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::ForwardingLoop,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.byzantine_blocked >= 1);
        for sw in net.switches() {
            assert!(sw.table().iter().all(|e| e.priority != u16::MAX));
        }
    }

    #[test]
    fn no_compromise_app_dies_and_stays_dead() {
        let (mut net, topo) = net2();
        let mut policies = PolicyTable::with_default(CompromisePolicy::Absolute);
        policies.set_app("hub#buggy", CompromisePolicy::NoCompromise);
        let mut rt = LegoSdnRuntime::new(LegoSdnConfig {
            crashpad: CrashPadConfig {
                checkpoints: CheckpointPolicy::default(),
                policies,
                transform_direction: TransformDirection::Decompose,
            },
            ..LegoSdnConfig::default()
        });
        let id = rt
            .attach(Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnEventKind(EventKind::PacketIn),
                BugEffect::Crash,
            )))
            .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert_eq!(rt.app_status(id), Some(&AppStatus::Dead));
        assert_eq!(rt.stats().apps_dead, 1);
        // Dead app skips future events; controller unaffected.
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        assert!(rt.stats().events_skipped > 0);
        assert!(!rt.is_crashed());
    }

    #[test]
    fn resource_limit_suspends_runaway_app() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        let id = rt
            .attach_with_limits(
                Box::new(Hub::new()),
                ResourceLimits {
                    max_events: Some(2),
                    ..ResourceLimits::default()
                },
            )
            .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for _ in 0..4 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        assert!(matches!(rt.app_status(id), Some(AppStatus::Suspended(_))));
        assert!(rt.stats().apps_suspended >= 1);
        // Operator resumes with a bigger budget.
        assert!(rt.resume(
            id,
            ResourceLimits {
                max_events: Some(100),
                ..ResourceLimits::default()
            }
        ));
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        let report = rt.run_cycle(&mut net);
        assert!(report.commands > 0);
    }

    #[test]
    fn controller_upgrade_keeps_app_state() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(LearningSwitch::new())).unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        net.inject(a, Packet::ethernet(a, b)).unwrap();
        rt.run_cycle(&mut net);
        let checkpoint_events = rt
            .crashpad()
            .checkpoints
            .events_delivered("learning-switch");
        assert!(checkpoint_events > 0);
        let links_before = rt.translator().topology.n_links();
        rt.upgrade_controller(&mut net);
        assert_eq!(rt.stats().upgrades, 1);
        // Topology rediscovered without a network outage...
        assert_eq!(rt.translator().topology.n_links(), links_before);
        // ...and the app was NOT restarted: its event history continues.
        assert_eq!(
            rt.crashpad()
                .checkpoints
                .events_delivered("learning-switch"),
            checkpoint_events
        );
    }

    #[test]
    fn tickets_accumulate_for_triage() {
        let (mut net, topo) = net2();
        let mut rt = runtime(IsolationMode::Local);
        rt.attach(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Crash,
        )))
        .unwrap();
        rt.run_cycle(&mut net);
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for _ in 0..3 {
            net.inject(a, Packet::ethernet(a, b)).unwrap();
            rt.run_cycle(&mut net);
        }
        assert_eq!(rt.crashpad().tickets.len(), 3);
        let rendered = rt.crashpad().tickets.iter().next().unwrap().render();
        assert!(rendered.contains("hub#buggy"));
    }
}
