//! N-version programming for SDN apps (paper §3.4).
//!
//! "LegoSDN can be used to distribute events to the different versions of
//! the same SDN-App, and compare the outputs. [...] the correct output for
//! any given input can be chosen using a majority vote on the outputs from
//! the different versions."
//!
//! [`NVersionApp`] is itself an [`SdnApp`], so it composes with every other
//! LegoSDN mechanism: it can be sandboxed, checkpointed, and policed like
//! any single app. Each version is panic-contained individually; a crashed
//! version simply stops voting until the group is restored.

use legosdn_codec::Codec;
use legosdn_controller::app::{Command, Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::snapshot;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Vote bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Codec)]
pub struct VoteStats {
    /// Events where all live versions agreed.
    pub unanimous: u64,
    /// Events decided by a strict majority over disagreement.
    pub majority_overrides: u64,
    /// Events with no majority (output dropped for safety).
    pub no_majority: u64,
    /// Per-event version crashes (contained).
    pub version_crashes: u64,
}

#[derive(Codec)]
struct Saved {
    stats: VoteStats,
    dead: Vec<bool>,
    versions: Vec<Vec<u8>>,
}

/// An N-version group voting on the output of each event.
pub struct NVersionApp {
    name: String,
    versions: Vec<Box<dyn SdnApp>>,
    dead: Vec<bool>,
    stats: VoteStats,
}

impl NVersionApp {
    /// Group `versions` under `name`.
    ///
    /// # Panics
    /// If `versions` is empty.
    #[must_use]
    pub fn new(name: &str, versions: Vec<Box<dyn SdnApp>>) -> Self {
        assert!(
            !versions.is_empty(),
            "n-version group needs at least one version"
        );
        let dead = vec![false; versions.len()];
        NVersionApp {
            name: name.to_string(),
            versions,
            dead,
            stats: VoteStats::default(),
        }
    }

    /// Voting statistics.
    #[must_use]
    pub fn vote_stats(&self) -> VoteStats {
        self.stats
    }

    /// Number of versions still live.
    #[must_use]
    pub fn live_versions(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }
}

/// Canonical form of a command list for equality voting.
fn ballot(commands: &[Command]) -> Vec<u8> {
    snapshot::to_bytes(&commands.to_vec()).unwrap_or_default()
}

impl SdnApp for NVersionApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        let mut subs: Vec<EventKind> = Vec::new();
        for v in &self.versions {
            for k in v.subscriptions() {
                if !subs.contains(&k) {
                    subs.push(k);
                }
            }
        }
        subs
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        // Run every live version in its own contained scope.
        let mut ballots: BTreeMap<Vec<u8>, (usize, Vec<Command>)> = BTreeMap::new();
        let mut voters = 0usize;
        for (i, version) in self.versions.iter_mut().enumerate() {
            if self.dead[i] {
                continue;
            }
            let mut vctx = Ctx::new(ctx.now, ctx.topology, ctx.devices);
            match catch_unwind(AssertUnwindSafe(|| version.on_event(event, &mut vctx))) {
                Ok(()) => {
                    voters += 1;
                    let commands = vctx.into_commands();
                    let key = ballot(&commands);
                    let entry = ballots.entry(key).or_insert((0, commands));
                    entry.0 += 1;
                }
                Err(_) => {
                    self.stats.version_crashes += 1;
                    self.dead[i] = true;
                }
            }
        }
        if voters == 0 {
            self.stats.no_majority += 1;
            return;
        }
        let (count, winner) = ballots
            .into_values()
            .max_by_key(|(count, _)| *count)
            .expect("voters > 0");
        if count == voters {
            self.stats.unanimous += 1;
        } else if count * 2 > voters {
            self.stats.majority_overrides += 1;
        } else {
            // No strict majority: emit nothing rather than something wrong.
            self.stats.no_majority += 1;
            return;
        }
        for c in winner {
            ctx.send(c.dpid, c.msg);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let saved = Saved {
            stats: self.stats,
            dead: self.dead.clone(),
            versions: self.versions.iter().map(|v| v.snapshot()).collect(),
        };
        snapshot::to_bytes(&saved).expect("plain data")
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let saved: Saved = snapshot::from_bytes(bytes).map_err(|e| RestoreError(e.to_string()))?;
        if saved.versions.len() != self.versions.len() {
            return Err(RestoreError(format!(
                "snapshot has {} versions, group has {}",
                saved.versions.len(),
                self.versions.len()
            )));
        }
        for (v, s) in self.versions.iter_mut().zip(&saved.versions) {
            v.restore(s)?;
        }
        self.stats = saved.stats;
        self.dead = saved.dead;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_apps::{BugEffect, BugTrigger, FaultyApp, Hub};
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;
    use legosdn_openflow::prelude::*;

    fn pin(dst: u64) -> Event {
        Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(dst)),
            },
        )
    }

    fn deliver(app: &mut NVersionApp, ev: &Event) -> Vec<Command> {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(ev, &mut ctx);
        ctx.into_commands()
    }

    fn three_hubs_one_buggy(effect: BugEffect) -> NVersionApp {
        NVersionApp::new(
            "hub-nv",
            vec![
                Box::new(Hub::new()),
                Box::new(Hub::new()),
                Box::new(FaultyApp::new(
                    Box::new(Hub::new()),
                    BugTrigger::OnPacketToMac(MacAddr::from_index(13)),
                    effect,
                )),
            ],
        )
    }

    #[test]
    fn unanimous_versions_pass_output_through() {
        let mut nv = three_hubs_one_buggy(BugEffect::Crash);
        let cmds = deliver(&mut nv, &pin(2));
        assert_eq!(cmds.len(), 1, "one flood voted through");
        assert_eq!(nv.vote_stats().unanimous, 1);
        assert_eq!(nv.live_versions(), 3);
    }

    #[test]
    fn crashed_version_is_outvoted_and_group_survives() {
        let mut nv = three_hubs_one_buggy(BugEffect::Crash);
        let cmds = deliver(&mut nv, &pin(13)); // poisons version 3
        assert_eq!(cmds.len(), 1, "majority still floods");
        assert_eq!(nv.vote_stats().version_crashes, 1);
        assert_eq!(nv.live_versions(), 2);
        // Subsequent events keep working on the surviving majority.
        let cmds = deliver(&mut nv, &pin(2));
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn byzantine_version_is_outvoted() {
        let mut nv = three_hubs_one_buggy(BugEffect::Blackhole);
        let cmds = deliver(&mut nv, &pin(13));
        // The buggy version emitted blackhole+flood; the two clean hubs
        // agreed on flood-only. Majority wins: exactly one packet-out, no
        // blackhole flow-mod.
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0].msg, Message::PacketOut(_)));
        assert_eq!(nv.vote_stats().majority_overrides, 1);
        assert_eq!(nv.live_versions(), 3, "byzantine version keeps running");
    }

    #[test]
    fn all_versions_dead_emits_nothing() {
        let mut nv = NVersionApp::new(
            "all-buggy",
            vec![Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnEventKind(EventKind::PacketIn),
                BugEffect::Crash,
            ))],
        );
        assert!(deliver(&mut nv, &pin(2)).is_empty());
        assert_eq!(nv.live_versions(), 0);
        assert!(deliver(&mut nv, &pin(2)).is_empty());
        assert_eq!(nv.vote_stats().no_majority, 2);
    }

    #[test]
    fn snapshot_restores_versions_and_revives_dead() {
        let mut nv = three_hubs_one_buggy(BugEffect::Crash);
        let healthy = nv.snapshot();
        deliver(&mut nv, &pin(13));
        assert_eq!(nv.live_versions(), 2);
        nv.restore(&healthy).unwrap();
        assert_eq!(nv.live_versions(), 3, "restore revives the crashed version");
        assert_eq!(nv.vote_stats().version_crashes, 0);
    }

    #[test]
    fn subscriptions_are_the_union() {
        let nv = three_hubs_one_buggy(BugEffect::Crash);
        let subs = nv.subscriptions();
        assert!(subs.contains(&EventKind::PacketIn));
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn empty_group_rejected() {
        let _ = NVersionApp::new("empty", vec![]);
    }
}
