//! LegoSDN runtime configuration.

use legosdn_appvisor::{IoMode, ProxyConfig};
use legosdn_crashpad::CrashPadConfig;
use legosdn_invariants::Checker;
use legosdn_netlog::TxMode;
use legosdn_obs::Obs;

/// Where each application's fault domain lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process sandbox with panic containment (fast path; still isolates
    /// crashes from the controller).
    Local,
    /// AppVisor stub on its own thread, RPC over in-memory channels.
    Channel,
    /// AppVisor stub on its own thread, RPC over UDP loopback — the paper's
    /// prototype configuration (§4.1).
    Udp,
    /// AppVisor stub on its own thread, RPC over TCP loopback with length
    /// framing (the reliable-stream alternative).
    Tcp,
}

/// How `dispatch_event` moves one event through the app roster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// One blocking Crash-Pad round-trip per app, in attach order — the
    /// original monolithic loop. Simple and the reference for
    /// determinism.
    Sequential,
    /// Phased pipeline: checkpoint all selected apps up front, fan the
    /// event out to isolated stubs concurrently (local sandboxes run
    /// inline while the stubs work), gather outcomes and recover only
    /// the failures, then commit each app's commands through NetLog in
    /// attach order. Network state and transaction order are identical
    /// to `Sequential`; wall time per event is bounded by the slowest
    /// app instead of the sum. The default since the determinism sweep
    /// proved it observationally identical to `Sequential`.
    #[default]
    Pipelined,
}

impl DispatchMode {
    /// Parse a CLI-style name (`sequential` | `pipelined`).
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s {
            "sequential" => Some(DispatchMode::Sequential),
            "pipelined" => Some(DispatchMode::Pipelined),
            _ => None,
        }
    }
}

/// Cross-event dispatch window for [`DispatchMode::Pipelined`]: up to
/// `depth` translated events from one cycle are in flight to the isolated
/// stubs at once. Each stub's RPC queue carries the deliveries (and any
/// due checkpoint requests) in per-app event order, so an app never sees
/// event *k+1* before it has answered *k*; gather and commit stay fully
/// serialized in (event, attach) order, keeping network state, the NetLog
/// txlog, and runtime counters bit-identical to `Sequential`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchWindow {
    /// Events in flight at once. `1` (the default) is the single-event
    /// pipeline; values above 1 overlap delivery of later events with
    /// gather/commit of earlier ones.
    pub depth: usize,
}

impl Default for DispatchWindow {
    fn default() -> Self {
        DispatchWindow { depth: 1 }
    }
}

impl DispatchWindow {
    /// A window of the given depth (clamped to at least 1).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        DispatchWindow {
            depth: depth.max(1),
        }
    }
}

/// Per-application resource limits (paper §3.4: "an operator can define
/// resource limits for each SDN-App, thus limiting the impact of
/// misbehaving applications").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum events an app may consume (None = unlimited).
    pub max_events: Option<u64>,
    /// Maximum commands an app may emit (None = unlimited).
    pub max_commands: Option<u64>,
    /// Maximum snapshot size in bytes (None = unlimited). Oversized apps
    /// are suspended — a runaway state is itself a resource leak.
    pub max_snapshot_bytes: Option<u64>,
}

/// Full runtime configuration.
#[derive(Clone, Debug)]
pub struct LegoSdnConfig {
    pub isolation: IsolationMode,
    /// Event-dispatch strategy; see [`DispatchMode`].
    pub dispatch: DispatchMode,
    /// Cross-event dispatch window for pipelined dispatch; see
    /// [`DispatchWindow`]. Ignored under [`DispatchMode::Sequential`].
    pub window: DispatchWindow,
    /// NetLog transaction mode: `Immediate` (full NetLog: apply + undo log)
    /// or `Buffered` (the paper-prototype ablation).
    pub netlog_mode: TxMode,
    pub crashpad: CrashPadConfig,
    /// Byzantine-failure detection: gate/inspect app output against network
    /// invariants. `None` disables detection (fail-stop coverage only).
    pub checker: Option<Checker>,
    /// §5: when a No-Compromise app's byzantine output violates invariants,
    /// shut the whole network down rather than run unsafely.
    pub shutdown_network_on_no_compromise: bool,
    /// Default per-app resource limits.
    pub resource_limits: ResourceLimits,
    /// AppVisor proxy tuning (timeouts, heartbeats) for isolated modes.
    pub proxy: ProxyConfig,
    /// Observability instance for the runtime and every sub-layer
    /// (Crash-Pad, NetLog, AppVisor). `None` means [`Obs::global`] —
    /// wired once at construction, so there is no window where layers
    /// report to different instances. Set via
    /// [`LegoSdnConfig::with_obs`] or
    /// [`LegoSdnConfig::with_journal_capacity`].
    pub obs: Option<Obs>,
    /// Causal-trace sampling: begin a flight-recorder trace for every
    /// Nth translated event. `1` (the default) traces every event, `0`
    /// disables tracing entirely; untraced events pay a single relaxed
    /// atomic load per layer hook.
    pub trace_sample: u64,
}

impl Default for LegoSdnConfig {
    fn default() -> Self {
        LegoSdnConfig {
            isolation: IsolationMode::Local,
            dispatch: DispatchMode::default(),
            window: DispatchWindow::default(),
            netlog_mode: TxMode::Immediate,
            crashpad: CrashPadConfig::default(),
            checker: Some(Checker::default()),
            shutdown_network_on_no_compromise: false,
            resource_limits: ResourceLimits::default(),
            proxy: ProxyConfig::default(),
            obs: None,
            trace_sample: 1,
        }
    }
}

impl LegoSdnConfig {
    /// Route the runtime (and all sub-layers) to `obs` instead of the
    /// process-global instance. Tests and multi-runtime processes use
    /// this to keep observability private per runtime.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Shorthand for [`LegoSdnConfig::with_obs`] with a fresh instance
    /// retaining at most `capacity` journal records. The last
    /// `with_obs`/`with_journal_capacity` call wins.
    #[must_use]
    pub fn with_journal_capacity(self, capacity: usize) -> Self {
        self.with_obs(Obs::with_journal_capacity(capacity))
    }

    /// Select the event-dispatch strategy.
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Set the cross-event dispatch window depth (clamped to at least 1).
    #[must_use]
    pub fn with_window(mut self, depth: usize) -> Self {
        self.window = DispatchWindow::new(depth);
        self
    }

    /// Trace every `sample`th translated event (`0` disables tracing).
    #[must_use]
    pub fn with_trace_sample(mut self, sample: u64) -> Self {
        self.trace_sample = sample;
        self
    }

    /// Select how stub channels are serviced: blocking thread-per-stub
    /// or the readiness-polled multiplexed pools (see
    /// [`legosdn_appvisor::IoMode`]). Only isolated modes (`Channel`,
    /// `Udp`, `Tcp`) have stub channels to service.
    #[must_use]
    pub fn with_io(mut self, io: IoMode) -> Self {
        self.proxy.io = io;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_design() {
        let c = LegoSdnConfig::default();
        assert_eq!(c.isolation, IsolationMode::Local);
        // Pipelined has soaked (determinism sweep holds it bit-identical
        // to Sequential) and is now the default; the window stays at 1
        // until the operator widens it.
        assert_eq!(c.dispatch, DispatchMode::Pipelined);
        assert_eq!(c.window, DispatchWindow { depth: 1 });
        assert_eq!(c.netlog_mode, TxMode::Immediate);
        assert!(c.checker.is_some());
        assert_eq!(c.resource_limits, ResourceLimits::default());
        assert!(c.obs.is_none(), "default means Obs::global at build time");
        assert_eq!(c.trace_sample, 1, "every event is traced by default");
    }

    #[test]
    fn window_builder_clamps_to_one() {
        assert_eq!(LegoSdnConfig::default().with_window(8).window.depth, 8);
        assert_eq!(LegoSdnConfig::default().with_window(0).window.depth, 1);
        assert_eq!(DispatchWindow::new(0).depth, 1);
    }

    #[test]
    fn dispatch_mode_parses_cli_names() {
        assert_eq!(
            DispatchMode::parse("sequential"),
            Some(DispatchMode::Sequential)
        );
        assert_eq!(
            DispatchMode::parse("pipelined"),
            Some(DispatchMode::Pipelined)
        );
        assert_eq!(DispatchMode::parse("warp"), None);
        assert_eq!(
            LegoSdnConfig::default()
                .with_dispatch(DispatchMode::Pipelined)
                .dispatch,
            DispatchMode::Pipelined
        );
    }

    #[test]
    fn io_builder_selects_the_polled_path() {
        let c = LegoSdnConfig::default();
        assert_eq!(c.proxy.io, IoMode::Blocking, "blocking is the default");
        let c = c.with_io(IoMode::Polled { io_threads: 4 });
        assert_eq!(c.proxy.io, IoMode::Polled { io_threads: 4 });
        assert_eq!(IoMode::parse("blocking"), Some(IoMode::Blocking));
        assert_eq!(
            IoMode::parse("polled"),
            Some(IoMode::Polled { io_threads: 4 })
        );
        assert_eq!(IoMode::parse("epoll"), None);
    }

    #[test]
    fn trace_sample_builder_sets_the_rate() {
        assert_eq!(
            LegoSdnConfig::default().with_trace_sample(0).trace_sample,
            0
        );
        assert_eq!(
            LegoSdnConfig::default().with_trace_sample(4).trace_sample,
            4
        );
    }

    #[test]
    fn obs_builders_set_the_instance_and_last_call_wins() {
        let mine = Obs::new();
        let c = LegoSdnConfig::default()
            .with_journal_capacity(16)
            .with_obs(mine.clone());
        mine.counter("t", "probe", "").inc();
        assert_eq!(c.obs.as_ref().unwrap().counter("t", "probe", "").get(), 1);

        let c = LegoSdnConfig::default()
            .with_obs(mine)
            .with_journal_capacity(16);
        assert_eq!(c.obs.unwrap().journal().capacity(), 16);
    }
}
