//! LegoSDN runtime configuration.

use legosdn_appvisor::ProxyConfig;
use legosdn_crashpad::CrashPadConfig;
use legosdn_invariants::Checker;
use legosdn_netlog::TxMode;

/// Where each application's fault domain lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process sandbox with panic containment (fast path; still isolates
    /// crashes from the controller).
    Local,
    /// AppVisor stub on its own thread, RPC over in-memory channels.
    Channel,
    /// AppVisor stub on its own thread, RPC over UDP loopback — the paper's
    /// prototype configuration (§4.1).
    Udp,
    /// AppVisor stub on its own thread, RPC over TCP loopback with length
    /// framing (the reliable-stream alternative).
    Tcp,
}

/// Per-application resource limits (paper §3.4: "an operator can define
/// resource limits for each SDN-App, thus limiting the impact of
/// misbehaving applications").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum events an app may consume (None = unlimited).
    pub max_events: Option<u64>,
    /// Maximum commands an app may emit (None = unlimited).
    pub max_commands: Option<u64>,
    /// Maximum snapshot size in bytes (None = unlimited). Oversized apps
    /// are suspended — a runaway state is itself a resource leak.
    pub max_snapshot_bytes: Option<u64>,
}

/// Full runtime configuration.
#[derive(Clone, Debug)]
pub struct LegoSdnConfig {
    pub isolation: IsolationMode,
    /// NetLog transaction mode: `Immediate` (full NetLog: apply + undo log)
    /// or `Buffered` (the paper-prototype ablation).
    pub netlog_mode: TxMode,
    pub crashpad: CrashPadConfig,
    /// Byzantine-failure detection: gate/inspect app output against network
    /// invariants. `None` disables detection (fail-stop coverage only).
    pub checker: Option<Checker>,
    /// §5: when a No-Compromise app's byzantine output violates invariants,
    /// shut the whole network down rather than run unsafely.
    pub shutdown_network_on_no_compromise: bool,
    /// Default per-app resource limits.
    pub resource_limits: ResourceLimits,
    /// AppVisor proxy tuning (timeouts, heartbeats) for isolated modes.
    pub proxy: ProxyConfig,
}

impl Default for LegoSdnConfig {
    fn default() -> Self {
        LegoSdnConfig {
            isolation: IsolationMode::Local,
            netlog_mode: TxMode::Immediate,
            crashpad: CrashPadConfig::default(),
            checker: Some(Checker::default()),
            shutdown_network_on_no_compromise: false,
            resource_limits: ResourceLimits::default(),
            proxy: ProxyConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_design() {
        let c = LegoSdnConfig::default();
        assert_eq!(c.isolation, IsolationMode::Local);
        assert_eq!(c.netlog_mode, TxMode::Immediate);
        assert!(c.checker.is_some());
        assert_eq!(c.resource_limits, ResourceLimits::default());
    }
}
