//! LegoSDN runtime configuration.
//!
//! The configuration is sectioned: [`DispatchConfig`] (strategy, window,
//! worker shards), [`IoConfig`] (stub transport servicing + proxy
//! tuning), and [`ObsConfig`] (observability instance + trace sampling).
//! Build one with struct update syntax plus the section constructors,
//! then validate it with [`LegoSdnConfig::build`]:
//!
//! ```
//! use legosdn::config::{DispatchConfig, IoConfig, LegoSdnConfig};
//!
//! let cfg = LegoSdnConfig {
//!     dispatch: DispatchConfig::pipelined().window(8).workers(4),
//!     io: IoConfig::polled(2),
//!     ..LegoSdnConfig::default()
//! }
//! .build()
//! .expect("valid config");
//! assert_eq!(cfg.dispatch.workers, 4);
//! ```
//!
//! `build()` rejects nonsense up front — window depth 0, zero I/O
//! threads, zero workers, a trace sample with observability disabled —
//! instead of panicking or silently clamping at use sites. The old flat
//! `with_*` builders have completed their deprecation cycle and are gone;
//! struct-literal section updates are the only way to configure.

use legosdn_appvisor::{IoMode, ProxyConfig};
use legosdn_crashpad::CrashPadConfig;
use legosdn_invariants::Checker;
use legosdn_netlog::TxMode;
use legosdn_obs::Obs;
use std::fmt;

/// Where each application's fault domain lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process sandbox with panic containment (fast path; still isolates
    /// crashes from the controller).
    Local,
    /// AppVisor stub on its own thread, RPC over in-memory channels.
    Channel,
    /// AppVisor stub on its own thread, RPC over UDP loopback — the paper's
    /// prototype configuration (§4.1).
    Udp,
    /// AppVisor stub on its own thread, RPC over TCP loopback with length
    /// framing (the reliable-stream alternative).
    Tcp,
}

impl IsolationMode {
    /// Parse a CLI-style name (`local` | `channel` | `udp` | `tcp`).
    pub fn parse(s: &str) -> Option<IsolationMode> {
        match s {
            "local" => Some(IsolationMode::Local),
            "channel" => Some(IsolationMode::Channel),
            "udp" => Some(IsolationMode::Udp),
            "tcp" => Some(IsolationMode::Tcp),
            _ => None,
        }
    }
}

/// How `dispatch_event` moves one event through the app roster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// One blocking Crash-Pad round-trip per app, in attach order — the
    /// original monolithic loop. Simple and the reference for
    /// determinism.
    Sequential,
    /// Phased pipeline: checkpoint all selected apps up front, fan the
    /// event out to isolated stubs concurrently (local sandboxes run
    /// inline while the stubs work), gather outcomes and recover only
    /// the failures, then commit each app's commands through NetLog in
    /// attach order. Network state and transaction order are identical
    /// to `Sequential`; wall time per event is bounded by the slowest
    /// app instead of the sum. The default since the determinism sweep
    /// proved it observationally identical to `Sequential`.
    #[default]
    Pipelined,
}

impl DispatchMode {
    /// Parse a CLI-style name (`sequential` | `pipelined`).
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s {
            "sequential" => Some(DispatchMode::Sequential),
            "pipelined" => Some(DispatchMode::Pipelined),
            _ => None,
        }
    }
}

/// Cross-event dispatch window for [`DispatchMode::Pipelined`]: up to
/// `depth` translated events from one cycle are in flight to the isolated
/// stubs at once. Each stub's RPC queue carries the deliveries (and any
/// due checkpoint requests) in per-app event order, so an app never sees
/// event *k+1* before it has answered *k*; gather and commit stay fully
/// serialized in (event, attach) order, keeping network state, the NetLog
/// txlog, and runtime counters bit-identical to `Sequential`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchWindow {
    /// Events in flight at once. `1` (the default) is the single-event
    /// pipeline; values above 1 overlap delivery of later events with
    /// gather/commit of earlier ones.
    pub depth: usize,
}

impl Default for DispatchWindow {
    fn default() -> Self {
        DispatchWindow { depth: 1 }
    }
}

impl DispatchWindow {
    /// A window of the given depth (clamped to at least 1; the sectioned
    /// [`DispatchConfig::window`] setter instead leaves invalid depths
    /// for [`LegoSdnConfig::build`] to reject).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        DispatchWindow {
            depth: depth.max(1),
        }
    }
}

/// Event-dispatch section: strategy, cross-event window, worker shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchConfig {
    /// Strategy; see [`DispatchMode`].
    pub mode: DispatchMode,
    /// Cross-event window for pipelined dispatch; ignored under
    /// [`DispatchMode::Sequential`].
    pub window: DispatchWindow,
    /// Worker shards: apps are partitioned across `workers` shards by a
    /// load-aware balancer, each with its own AppVisor proxy, Crash-Pad,
    /// and window machinery (DESIGN.md §13, §15). `1` (the default) runs
    /// the single-threaded engine; values above 1 take effect under
    /// [`DispatchMode::Pipelined`] and commit through the cross-shard
    /// barrier, bit-identical to the sequential reference.
    pub workers: usize,
    /// Cross-cycle windowing: one `run_cycle` call may consume follow-on
    /// events triggered by its own commits, up to `lookahead_cycles ×`
    /// the cycle's initial event count, instead of draining the window
    /// at every cycle boundary (DESIGN.md §15). `1` (the default) is
    /// today's behavior — a cycle processes exactly the events queued
    /// when it started. Applies identically in every dispatch mode, so
    /// sharded runs stay bit-identical to the sequential reference at
    /// the same lookahead.
    pub lookahead_cycles: usize,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            mode: DispatchMode::default(),
            window: DispatchWindow::default(),
            workers: 1,
            lookahead_cycles: 1,
        }
    }
}

impl DispatchConfig {
    /// The sequential reference strategy.
    #[must_use]
    pub fn sequential() -> Self {
        DispatchConfig {
            mode: DispatchMode::Sequential,
            ..DispatchConfig::default()
        }
    }

    /// The pipelined strategy (the default).
    #[must_use]
    pub fn pipelined() -> Self {
        DispatchConfig {
            mode: DispatchMode::Pipelined,
            ..DispatchConfig::default()
        }
    }

    /// Set the cross-event window depth. Not clamped: depth 0 is rejected
    /// by [`LegoSdnConfig::build`].
    #[must_use]
    pub fn window(mut self, depth: usize) -> Self {
        self.window = DispatchWindow { depth };
        self
    }

    /// Set the worker-shard count. Not clamped: 0 workers is rejected by
    /// [`LegoSdnConfig::build`].
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the cross-cycle lookahead budget. Not clamped: 0 is rejected
    /// by [`LegoSdnConfig::build`].
    #[must_use]
    pub fn lookahead(mut self, lookahead_cycles: usize) -> Self {
        self.lookahead_cycles = lookahead_cycles;
        self
    }
}

/// Stub I/O section: how stub channels are serviced, plus AppVisor proxy
/// tuning. Only isolated modes (`Channel`, `Udp`, `Tcp`) have stub
/// channels to service.
#[derive(Clone, Debug, Default)]
pub struct IoConfig {
    /// Blocking thread-per-stub or the readiness-polled multiplexed
    /// pools; see [`IoMode`].
    pub mode: IoMode,
    /// AppVisor proxy tuning (timeouts, heartbeats). The proxy's own
    /// `io` field is overwritten with [`IoConfig::mode`] at build /
    /// runtime construction, so `mode` is the single source of truth.
    pub proxy: ProxyConfig,
}

impl IoConfig {
    /// Blocking thread-per-stub servicing (the default).
    #[must_use]
    pub fn blocking() -> Self {
        IoConfig {
            mode: IoMode::Blocking,
            ..IoConfig::default()
        }
    }

    /// Readiness-polled multiplexed servicing with `io_threads` poll
    /// workers per shard. Not clamped: 0 threads is rejected by
    /// [`LegoSdnConfig::build`].
    #[must_use]
    pub fn polled(io_threads: usize) -> Self {
        IoConfig {
            mode: IoMode::Polled { io_threads },
            ..IoConfig::default()
        }
    }

    /// Replace the proxy tuning (its `io` field is still overwritten by
    /// [`IoConfig::mode`]).
    #[must_use]
    pub fn proxy(mut self, proxy: ProxyConfig) -> Self {
        self.proxy = proxy;
        self
    }
}

/// Observability section: which instance the runtime (and every
/// sub-layer) reports into, and how often the flight recorder samples.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Instance for the runtime and every sub-layer (Crash-Pad, NetLog,
    /// AppVisor) — wired once at construction, so there is no window
    /// where layers report to different instances. `None` means
    /// [`Obs::global`].
    pub instance: Option<Obs>,
    /// Causal-trace sampling: begin a flight-recorder trace for every
    /// Nth translated event. `1` (the default) traces every event, `0`
    /// disables tracing entirely; untraced events pay a single relaxed
    /// atomic load per layer hook. Worker shards share one recorder with
    /// per-thread ambient scopes, so sampling works at any
    /// `dispatch.workers` count.
    pub trace_sample: u64,
    /// `false` routes the runtime to a throwaway private instance and
    /// requires `trace_sample == 0` (enforced by
    /// [`LegoSdnConfig::build`]).
    pub enabled: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            instance: None,
            trace_sample: 1,
            enabled: true,
        }
    }
}

impl ObsConfig {
    /// Report to `obs` instead of the process-global instance. Tests and
    /// multi-runtime processes use this to keep observability private
    /// per runtime.
    #[must_use]
    pub fn instance(obs: Obs) -> Self {
        ObsConfig {
            instance: Some(obs),
            ..ObsConfig::default()
        }
    }

    /// Shorthand for [`ObsConfig::instance`] with a fresh instance
    /// retaining at most `capacity` journal records.
    #[must_use]
    pub fn journal_capacity(capacity: usize) -> Self {
        ObsConfig::instance(Obs::with_journal_capacity(capacity))
    }

    /// Observability off: metrics land in a throwaway instance and the
    /// flight recorder never samples.
    #[must_use]
    pub fn disabled() -> Self {
        ObsConfig {
            instance: None,
            trace_sample: 0,
            enabled: false,
        }
    }

    /// Set the flight-recorder sampling rate (`0` disables tracing).
    #[must_use]
    pub fn trace_sample(mut self, sample: u64) -> Self {
        self.trace_sample = sample;
        self
    }
}

/// What [`LegoSdnConfig::build`] rejects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `dispatch.window.depth == 0`: a window must hold at least one event.
    ZeroWindowDepth,
    /// `io.mode == Polled { io_threads: 0 }`: the poll pool needs a thread.
    ZeroIoThreads,
    /// `dispatch.workers == 0`: at least one worker shard must exist.
    ZeroWorkers,
    /// `dispatch.lookahead_cycles == 0`: a cycle must be allowed to
    /// process at least its own events.
    ZeroLookahead,
    /// `obs.trace_sample > 0` with `obs.enabled == false`: traces would
    /// record into a throwaway instance nobody can read.
    TraceWithObsDisabled,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWindowDepth => write!(f, "dispatch.window.depth must be at least 1"),
            ConfigError::ZeroIoThreads => write!(f, "io polled mode needs at least 1 io thread"),
            ConfigError::ZeroWorkers => write!(f, "dispatch.workers must be at least 1"),
            ConfigError::ZeroLookahead => {
                write!(f, "dispatch.lookahead_cycles must be at least 1")
            }
            ConfigError::TraceWithObsDisabled => {
                write!(f, "trace_sample > 0 requires observability enabled")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Per-application resource limits (paper §3.4: "an operator can define
/// resource limits for each SDN-App, thus limiting the impact of
/// misbehaving applications").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum events an app may consume (None = unlimited).
    pub max_events: Option<u64>,
    /// Maximum commands an app may emit (None = unlimited).
    pub max_commands: Option<u64>,
    /// Maximum snapshot size in bytes (None = unlimited). Oversized apps
    /// are suspended — a runaway state is itself a resource leak.
    pub max_snapshot_bytes: Option<u64>,
}

/// Full runtime configuration.
#[derive(Clone, Debug)]
pub struct LegoSdnConfig {
    pub isolation: IsolationMode,
    /// Event-dispatch section; see [`DispatchConfig`].
    pub dispatch: DispatchConfig,
    /// Stub I/O section; see [`IoConfig`].
    pub io: IoConfig,
    /// Observability section; see [`ObsConfig`].
    pub obs: ObsConfig,
    /// NetLog transaction mode: `Immediate` (full NetLog: apply + undo log)
    /// or `Buffered` (the paper-prototype ablation).
    pub netlog_mode: TxMode,
    pub crashpad: CrashPadConfig,
    /// Byzantine-failure detection: gate/inspect app output against network
    /// invariants. `None` disables detection (fail-stop coverage only).
    pub checker: Option<Checker>,
    /// §5: when a No-Compromise app's byzantine output violates invariants,
    /// shut the whole network down rather than run unsafely.
    pub shutdown_network_on_no_compromise: bool,
    /// Default per-app resource limits.
    pub resource_limits: ResourceLimits,
}

impl Default for LegoSdnConfig {
    fn default() -> Self {
        LegoSdnConfig {
            isolation: IsolationMode::Local,
            dispatch: DispatchConfig::default(),
            io: IoConfig::default(),
            obs: ObsConfig::default(),
            netlog_mode: TxMode::Immediate,
            crashpad: CrashPadConfig::default(),
            checker: Some(Checker::default()),
            shutdown_network_on_no_compromise: false,
            resource_limits: ResourceLimits::default(),
        }
    }
}

impl LegoSdnConfig {
    /// Validate the configuration, rejecting nonsense up front instead of
    /// panicking or silently clamping at use sites. Also stamps
    /// `io.proxy.io` from `io.mode`, so the two can never disagree.
    pub fn build(mut self) -> Result<Self, ConfigError> {
        if self.dispatch.window.depth == 0 {
            return Err(ConfigError::ZeroWindowDepth);
        }
        if self.dispatch.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.dispatch.lookahead_cycles == 0 {
            return Err(ConfigError::ZeroLookahead);
        }
        if let IoMode::Polled { io_threads } = self.io.mode {
            if io_threads == 0 {
                return Err(ConfigError::ZeroIoThreads);
            }
        }
        if !self.obs.enabled && self.obs.trace_sample > 0 {
            return Err(ConfigError::TraceWithObsDisabled);
        }
        self.io.proxy.io = self.io.mode;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_design() {
        let c = LegoSdnConfig::default();
        assert_eq!(c.isolation, IsolationMode::Local);
        // Pipelined has soaked (determinism sweep holds it bit-identical
        // to Sequential) and is now the default; the window stays at 1
        // and the runtime stays single-worker until the operator widens
        // them.
        assert_eq!(c.dispatch.mode, DispatchMode::Pipelined);
        assert_eq!(c.dispatch.window, DispatchWindow { depth: 1 });
        assert_eq!(c.dispatch.workers, 1);
        assert_eq!(
            c.dispatch.lookahead_cycles, 1,
            "default lookahead drains the window at each cycle boundary"
        );
        assert_eq!(c.io.mode, IoMode::Blocking);
        assert_eq!(c.netlog_mode, TxMode::Immediate);
        assert!(c.checker.is_some());
        assert_eq!(c.resource_limits, ResourceLimits::default());
        assert!(
            c.obs.instance.is_none(),
            "default means Obs::global at build time"
        );
        assert!(c.obs.enabled);
        assert_eq!(c.obs.trace_sample, 1, "every event is traced by default");
    }

    #[test]
    fn build_accepts_the_default_and_sectioned_configs() {
        assert!(LegoSdnConfig::default().build().is_ok());
        let c = LegoSdnConfig {
            dispatch: DispatchConfig::pipelined().window(8).workers(4),
            io: IoConfig::polled(2),
            ..LegoSdnConfig::default()
        }
        .build()
        .unwrap();
        assert_eq!(c.dispatch.window.depth, 8);
        assert_eq!(c.dispatch.workers, 4);
        assert_eq!(c.io.mode, IoMode::Polled { io_threads: 2 });
        // build() stamps the proxy's io field from the section mode.
        assert_eq!(c.io.proxy.io, IoMode::Polled { io_threads: 2 });
    }

    #[test]
    fn build_rejects_nonsense_up_front() {
        let zero_window = LegoSdnConfig {
            dispatch: DispatchConfig::pipelined().window(0),
            ..LegoSdnConfig::default()
        };
        assert_eq!(
            zero_window.build().unwrap_err(),
            ConfigError::ZeroWindowDepth
        );

        let zero_workers = LegoSdnConfig {
            dispatch: DispatchConfig::pipelined().workers(0),
            ..LegoSdnConfig::default()
        };
        assert_eq!(zero_workers.build().unwrap_err(), ConfigError::ZeroWorkers);

        let zero_lookahead = LegoSdnConfig {
            dispatch: DispatchConfig::pipelined().lookahead(0),
            ..LegoSdnConfig::default()
        };
        assert_eq!(
            zero_lookahead.build().unwrap_err(),
            ConfigError::ZeroLookahead
        );

        let zero_io = LegoSdnConfig {
            io: IoConfig::polled(0),
            ..LegoSdnConfig::default()
        };
        assert_eq!(zero_io.build().unwrap_err(), ConfigError::ZeroIoThreads);

        let trace_without_obs = LegoSdnConfig {
            obs: ObsConfig::disabled().trace_sample(1),
            ..LegoSdnConfig::default()
        };
        assert_eq!(
            trace_without_obs.build().unwrap_err(),
            ConfigError::TraceWithObsDisabled
        );
        assert!(LegoSdnConfig {
            obs: ObsConfig::disabled(),
            ..LegoSdnConfig::default()
        }
        .build()
        .is_ok());
    }

    #[test]
    fn config_errors_render_for_cli_use() {
        for e in [
            ConfigError::ZeroWindowDepth,
            ConfigError::ZeroIoThreads,
            ConfigError::ZeroWorkers,
            ConfigError::ZeroLookahead,
            ConfigError::TraceWithObsDisabled,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn mode_parsers_cover_cli_names() {
        assert_eq!(
            DispatchMode::parse("sequential"),
            Some(DispatchMode::Sequential)
        );
        assert_eq!(
            DispatchMode::parse("pipelined"),
            Some(DispatchMode::Pipelined)
        );
        assert_eq!(DispatchMode::parse("warp"), None);
        assert_eq!(IsolationMode::parse("local"), Some(IsolationMode::Local));
        assert_eq!(
            IsolationMode::parse("channel"),
            Some(IsolationMode::Channel)
        );
        assert_eq!(IsolationMode::parse("udp"), Some(IsolationMode::Udp));
        assert_eq!(IsolationMode::parse("tcp"), Some(IsolationMode::Tcp));
        assert_eq!(IsolationMode::parse("vm"), None);
        assert_eq!(IoMode::parse("blocking"), Some(IoMode::Blocking));
        assert_eq!(
            IoMode::parse("polled"),
            Some(IoMode::Polled { io_threads: 4 })
        );
        assert_eq!(IoMode::parse("epoll"), None);
    }

    #[test]
    fn obs_section_constructors_set_the_instance() {
        let mine = Obs::new();
        let c = LegoSdnConfig {
            obs: ObsConfig::instance(mine.clone()),
            ..LegoSdnConfig::default()
        };
        mine.counter("t", "probe", "").inc();
        assert_eq!(
            c.obs
                .instance
                .as_ref()
                .unwrap()
                .counter("t", "probe", "")
                .get(),
            1
        );
        let c = LegoSdnConfig {
            obs: ObsConfig::journal_capacity(16),
            ..LegoSdnConfig::default()
        };
        assert_eq!(c.obs.instance.unwrap().journal().capacity(), 16);
    }
}
