//! # LegoSDN
//!
//! A faithful, from-scratch reproduction of *"Tolerating SDN Application
//! Failures with LegoSDN"* (Chandrasekaran & Benson, HotNets-XIII 2014):
//! a re-designed SDN controller architecture that eliminates the two
//! fate-sharing relationships of monolithic controllers —
//!
//! 1. **app ⇄ controller**: an application crash must not crash the
//!    controller or other apps (AppVisor isolation, §3.1);
//! 2. **app ⇄ network**: an application failure must not leave the network
//!    inconsistent (NetLog transactions + rollback, §3.2).
//!
//! On top of both, **Crash-Pad** (§3.3) survives deterministic bugs by
//! checkpointing app state before every event and, on failure, restoring
//! the snapshot and *ignoring or transforming* the offending event per an
//! operator policy.
//!
//! ## Quick start
//!
//! ```
//! use legosdn::prelude::*;
//!
//! // A 2-switch network with a host on each switch.
//! let topo = Topology::linear(2, 1);
//! let mut net = Network::new(&topo);
//!
//! // The LegoSDN runtime with default protection.
//! let mut runtime = LegoSdnRuntime::new(LegoSdnConfig::default());
//! runtime.attach(Box::new(LearningSwitch::new())).unwrap();
//!
//! // Buggy app: crashes on any packet to host 2 — under LegoSDN this is
//! // survivable; under a monolithic controller it kills everything.
//! let poison = topo.hosts[1].mac;
//! runtime.attach(Box::new(FaultyApp::new(
//!     Box::new(Hub::new()),
//!     BugTrigger::OnPacketToMac(poison),
//!     BugEffect::Crash,
//! ))).unwrap();
//!
//! runtime.run_cycle(&mut net); // handshake + discovery
//! let src = topo.hosts[0].mac;
//! net.inject(src, Packet::ethernet(src, poison)).unwrap();
//! let report = runtime.run_cycle(&mut net);
//! assert!(report.recoveries >= 1);      // the bug fired and was survived
//! assert!(!runtime.is_crashed());       // the controller never dies
//! ```
//!
//! ## Crate map
//!
//! | Crate | Paper artifact |
//! |---|---|
//! | `legosdn-openflow` | OpenFlow 1.0 subset, wire codec, message inversion |
//! | `legosdn-netsim` | the network (switches, flow tables, dataplane) |
//! | `legosdn-controller` | controller core, app API, monolithic baseline |
//! | `legosdn-appvisor` | AppVisor proxy/stub isolation layer |
//! | `legosdn-netlog` | NetLog transactions, undo log, counter-cache |
//! | `legosdn-crashpad` | Crash-Pad checkpoints, policies, recovery |
//! | `legosdn-invariants` | byzantine-failure detection (policy checker) |
//! | `legosdn-apps` | the app suite + fault injection |
//! | `legosdn-sts` | minimal causal sequences (§5) |
//! | `legosdn` (this crate) | the runtime + §3.4/§5 extensions |

pub mod clone_runner;
pub mod config;
pub mod host;
pub mod nversion;
pub mod runtime;
pub mod workers;

pub use clone_runner::{ClonePair, CloneStats};
pub use config::{
    ConfigError, DispatchConfig, DispatchMode, DispatchWindow, IoConfig, IsolationMode,
    LegoSdnConfig, ObsConfig, ResourceLimits,
};
pub use host::{Host, ProxyAdapter};
pub use nversion::{NVersionApp, VoteStats};
pub use runtime::{
    AppId, AppStatus, AttachError, LegoCycleReport, LegoSdnRuntime, ResourceUsage, RuntimeStats,
};

// Re-export the component crates under stable names.
pub use legosdn_apps as apps;
pub use legosdn_appvisor as appvisor;
pub use legosdn_controller as controller;
pub use legosdn_crashpad as crashpad;
pub use legosdn_invariants as invariants;
pub use legosdn_netlog as netlog;
pub use legosdn_netsim as netsim;
pub use legosdn_obs as obs;
pub use legosdn_openflow as openflow;
pub use legosdn_sts as sts;

pub mod prelude {
    //! Everything a typical consumer needs.
    pub use crate::clone_runner::ClonePair;
    pub use crate::config::{
        ConfigError, DispatchConfig, DispatchMode, DispatchWindow, IoConfig, IsolationMode,
        LegoSdnConfig, ObsConfig, ResourceLimits,
    };
    pub use crate::nversion::NVersionApp;
    pub use crate::runtime::{AppId, AppStatus, LegoCycleReport, LegoSdnRuntime, RuntimeStats};
    pub use legosdn_apps::{
        AclRule, Backend, BugEffect, BugTrigger, FaultyApp, Firewall, Flooder, Hub, LearningSwitch,
        LoadBalancer, ShortestPathRouter, SpanningTree, StatsMonitor,
    };
    pub use legosdn_appvisor::{IoMode, ProxyConfig, StubConfig};
    pub use legosdn_controller::app::{Command, Ctx, SdnApp};
    pub use legosdn_controller::event::{Event, EventKind};
    pub use legosdn_controller::monolithic::MonolithicController;
    pub use legosdn_crashpad::{
        CheckpointPolicy, CompromisePolicy, CrashPadConfig, PolicyTable, TransformDirection,
    };
    pub use legosdn_invariants::{Checker, Invariant};
    pub use legosdn_netlog::TxMode;
    pub use legosdn_netsim::{Network, SimDuration, SimTime, Topology};
    pub use legosdn_obs::{
        AggregateConfig, Aggregator, Obs, ObsError, ObsServer, PushConfig, PushExporter,
        ServeConfig,
    };
    pub use legosdn_openflow::prelude::*;
}
