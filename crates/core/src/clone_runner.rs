//! Hot-standby clones for non-deterministic bugs (paper §5).
//!
//! "LegoSDN can spawn a clone of an SDN-App, and let it run in parallel to
//! the actual SDN-App. LegoSDN can feed both the SDN-App and its clone the
//! same set of events, but only process the responses from the SDN-App and
//! ignore those from its clone. This allows for an easy switch-over
//! operation to the clone, when the primary fails. Since the bug is assumed
//! to be non-deterministic, the clone is unlikely to be affected."

use legosdn_controller::event::Event;
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_crashpad::{DeliveryResult, RecoverableApp};
use legosdn_netsim::SimTime;

/// Clone-pair bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CloneStats {
    /// Events mirrored to the clone.
    pub events_mirrored: u64,
    /// Primary failures absorbed by switching over.
    pub switchovers: u64,
    /// Clone crashes while mirroring (it diverged or the bug bit it too).
    pub clone_crashes: u64,
    /// Failures where both primary and clone crashed on the same event.
    pub double_faults: u64,
}

/// A primary app shadowed by a clone receiving the same events.
///
/// Implements [`RecoverableApp`], so it can sit behind Crash-Pad like any
/// single app: Crash-Pad sees a crash only when *both* replicas fail on the
/// same event (the deterministic-bug case the clone cannot help with).
pub struct ClonePair<P: RecoverableApp, C: RecoverableApp> {
    primary: P,
    clone: C,
    clone_alive: bool,
    stats: CloneStats,
}

impl<P: RecoverableApp, C: RecoverableApp> ClonePair<P, C> {
    /// Pair `primary` with `clone`. The clone must start in an equivalent
    /// state (typically both freshly constructed).
    pub fn new(primary: P, clone: C) -> Self {
        ClonePair {
            primary,
            clone,
            clone_alive: true,
            stats: CloneStats::default(),
        }
    }

    /// Pair statistics.
    #[must_use]
    pub fn stats(&self) -> CloneStats {
        self.stats
    }

    /// Is the standby clone alive?
    #[must_use]
    pub fn clone_alive(&self) -> bool {
        self.clone_alive
    }
}

impl<P: RecoverableApp, C: RecoverableApp> RecoverableApp for ClonePair<P, C> {
    fn deliver(
        &mut self,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DeliveryResult {
        // Mirror to the clone first. Its commands are normally discarded,
        // but kept at hand for a potential switch-over this event.
        let clone_output = if self.clone_alive {
            self.stats.events_mirrored += 1;
            match self.clone.deliver(event, topology, devices, now) {
                DeliveryResult::Ok(cmds) => Some(cmds),
                _ => {
                    self.stats.clone_crashes += 1;
                    self.clone_alive = false;
                    None
                }
            }
        } else {
            None
        };
        // Deliver to the primary; its responses are the real output.
        match self.primary.deliver(event, topology, devices, now) {
            DeliveryResult::Ok(cmds) => DeliveryResult::Ok(cmds),
            failure => match clone_output {
                Some(cmds) => {
                    // Switch-over: the clone survived the event (the bug
                    // really was non-deterministic). Promote its output and
                    // resynchronize the failed replica from its state so
                    // the pair stays redundant.
                    self.stats.switchovers += 1;
                    if let Ok(state) = self.clone.snapshot() {
                        let _ = self.primary.restore(&state);
                    }
                    DeliveryResult::Ok(cmds)
                }
                None => {
                    self.stats.double_faults += 1;
                    failure
                }
            },
        }
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, String> {
        self.primary.snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.primary.restore(bytes)?;
        // Re-sync the standby too; a failed standby restore just leaves it
        // dead (the pair still functions as a lone primary).
        self.clone_alive = self.clone.restore(bytes).is_ok();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_apps::{BugEffect, BugTrigger, FaultyApp, Hub};
    use legosdn_controller::event::EventKind;
    use legosdn_crashpad::LocalSandbox;
    use legosdn_openflow::prelude::*;

    fn pin(dst: u64) -> Event {
        Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(dst)),
            },
        )
    }

    fn nondet_hub(per_mille: u32, seed: u64) -> LocalSandbox {
        LocalSandbox::new(Box::new(FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::WithProbability { per_mille, seed },
            BugEffect::Crash,
        )))
    }

    fn deliver<P: RecoverableApp, C: RecoverableApp>(
        pair: &mut ClonePair<P, C>,
        ev: &Event,
    ) -> DeliveryResult {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        pair.deliver(ev, &topo, &dev, SimTime::ZERO)
    }

    #[test]
    fn healthy_pair_passes_primary_output() {
        let mut pair = ClonePair::new(
            LocalSandbox::new(Box::new(Hub::new())),
            LocalSandbox::new(Box::new(Hub::new())),
        );
        match deliver(&mut pair, &pin(2)) {
            DeliveryResult::Ok(cmds) => assert_eq!(cmds.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(pair.stats().events_mirrored, 1);
        assert_eq!(pair.stats().switchovers, 0);
    }

    #[test]
    fn nondeterministic_crash_switches_over() {
        // Primary crashes with p≈1 (999/1000); clone uses a different seed
        // stream, so the crash points diverge. Drive events until the
        // primary fails and verify the pair keeps answering.
        let mut pair = ClonePair::new(nondet_hub(600, 1), nondet_hub(600, 999));
        let mut survived_via_switchover = false;
        for i in 0..50 {
            match deliver(&mut pair, &pin(i)) {
                DeliveryResult::Ok(_) => {
                    if pair.stats().switchovers > 0 {
                        survived_via_switchover = true;
                        break;
                    }
                }
                _ => break, // double fault — acceptable end
            }
        }
        assert!(
            survived_via_switchover || pair.stats().double_faults > 0,
            "stats: {:?}",
            pair.stats()
        );
    }

    #[test]
    fn deterministic_bug_defeats_the_clone() {
        // Both replicas crash on the same poisoned input: the pair reports
        // the failure upward (Crash-Pad's job from here).
        let bug = || {
            LocalSandbox::new(Box::new(FaultyApp::new(
                Box::new(Hub::new()),
                BugTrigger::OnPacketToMac(MacAddr::from_index(13)),
                BugEffect::Crash,
            )))
        };
        let mut pair = ClonePair::new(bug(), bug());
        assert!(matches!(deliver(&mut pair, &pin(2)), DeliveryResult::Ok(_)));
        if let DeliveryResult::Ok(_) = deliver(&mut pair, &pin(13)) {
            panic!("deterministic bug must not be absorbed")
        }
        assert_eq!(pair.stats().double_faults, 1);
    }

    #[test]
    fn restore_resyncs_both_replicas() {
        let mut pair = ClonePair::new(
            LocalSandbox::new(Box::new(Hub::new())),
            LocalSandbox::new(Box::new(Hub::new())),
        );
        deliver(&mut pair, &pin(2));
        let snap = pair.snapshot().unwrap();
        deliver(&mut pair, &pin(3));
        pair.restore(&snap).unwrap();
        assert!(pair.clone_alive());
        // Both replicas at flooded=1: next event works.
        assert!(matches!(deliver(&mut pair, &pin(4)), DeliveryResult::Ok(_)));
        let _ = EventKind::PacketIn;
    }
}
