//! App hosting: uniform [`RecoverableApp`] access to apps in any isolation
//! mode.

use legosdn_appvisor::{AppHandle, AppVisorProxy, DeliverOutcome, ProxyError};
use legosdn_controller::event::Event;
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_crashpad::{DeliveryResult, LocalSandbox, RecoverableApp};
use legosdn_netsim::SimTime;

/// Where an attached app lives.
pub enum Host {
    /// In-process sandbox.
    Local(LocalSandbox),
    /// Behind the AppVisor proxy (stub thread + transport).
    Isolated(AppHandle),
}

/// Classify a proxy delivery the way Crash-Pad expects: proxy-level
/// errors (unknown handle, transport failure) count as communication
/// failures — the paper's primary crash signal. Shared by the blocking
/// [`ProxyAdapter::deliver`] path and the pipelined fan-out path so both
/// dispatch modes see identical failure semantics.
pub fn outcome_to_delivery(outcome: Result<DeliverOutcome, ProxyError>) -> DeliveryResult {
    match outcome {
        Ok(DeliverOutcome::Commands(cmds)) => DeliveryResult::Ok(cmds),
        Ok(DeliverOutcome::Crashed { panic_message }) => DeliveryResult::Crashed { panic_message },
        Ok(DeliverOutcome::CommFailure) | Err(_) => DeliveryResult::CommFailure,
    }
}

/// Adapter giving Crash-Pad `RecoverableApp` access to a proxy-hosted app.
pub struct ProxyAdapter<'a> {
    pub proxy: &'a mut AppVisorProxy,
    pub handle: AppHandle,
}

impl RecoverableApp for ProxyAdapter<'_> {
    fn deliver(
        &mut self,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> DeliveryResult {
        outcome_to_delivery(
            self.proxy
                .deliver(self.handle, event, topology, devices, now),
        )
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, String> {
        self.proxy.snapshot(self.handle).map_err(|e| e.to_string())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        match self.proxy.restore(self.handle, bytes) {
            Ok(true) => Ok(()),
            Ok(false) => Err("stub rejected the snapshot".into()),
            Err(e) => Err(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_apps::Hub;
    use legosdn_appvisor::{ProxyConfig, TransportKind};
    use legosdn_controller::event::Event;
    use legosdn_openflow::prelude::DatapathId;

    #[test]
    fn proxy_adapter_bridges_deliver_and_checkpointing() {
        let mut proxy = AppVisorProxy::new(ProxyConfig::default());
        let handle = proxy
            .launch_app(Box::new(Hub::new()), TransportKind::Channel)
            .unwrap();
        let mut adapter = ProxyAdapter {
            proxy: &mut proxy,
            handle,
        };
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        // Hub ignores SwitchUp (not subscribed, but delivery still works).
        let r = adapter.deliver(&Event::SwitchUp(DatapathId(1)), &topo, &dev, SimTime::ZERO);
        assert!(matches!(r, DeliveryResult::Ok(_)));
        let snap = adapter.snapshot().unwrap();
        adapter.restore(&snap).unwrap();
        let _ = proxy.shutdown();
    }
}
