//! Worker shards: the runtime's per-worker half (DESIGN.md §13, §15).
//!
//! The runtime partitions attached apps across N worker shards with a
//! load-aware balancer: least-loaded placement at attach, and a
//! cost-EWMA re-balance pass at cycle boundaries (never mid-window).
//! Each shard owns a private AppVisor proxy (its stubs and, under polled
//! I/O, its poll pool) and a private Crash-Pad, so the per-app dispatch
//! path never crosses a shard boundary. The network and the NetLog stay
//! shared: every commit goes through one [`CommitLane`] guarded by a
//! mutex, admitted in sequential order (or provably-safe fastpath order)
//! by the [`legosdn_netlog::CommitBarrier`].
//!
//! Determinism contract: a position's transaction ids are derived from
//! the position itself (`tx_base + pos * TXS_PER_POS + sub`), never from
//! arrival order, and the NetLog log is sorted by id — so the sharded
//! runtime's residue (network state, txlog, stats, per-app delivery
//! order) is bit-identical to the single-threaded reference.

use crate::config::ResourceLimits;
use crate::host::{outcome_to_delivery, Host, ProxyAdapter};
use crate::runtime::{AppStatus, LegoCycleReport, ResourceUsage, RuntimeStats};
use legosdn_appvisor::{AppHandle, AppVisorProxy};
use legosdn_controller::app::Command;
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_crashpad::{
    CompromisePolicy, CrashPad, DeliveryResult, DispatchResult, RecoverableApp, RecoveryTaken,
};
use legosdn_invariants::{shutdown_network, Checker};
use legosdn_netlog::{CommitBarrier, NetLog, TxId, TxMode, TxTouch};
use legosdn_netsim::{Network, SimTime};
use legosdn_obs::{Obs, TraceId};
use legosdn_openflow::prelude::{DatapathId, FlowModCommand, Message};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Transaction-id stride per commit position. Each (event, app) position
/// owns this many consecutive ids: sub 0 is the top-level transaction,
/// sub 1 the byzantine-recovery retry. Deriving ids from the position
/// (not from arrival order) is what lets fastpath commits land out of
/// order while the txlog still reads in sequential order.
pub const TXS_PER_POS: u64 = 4;

/// One attached app: identity, fault-domain host, scheduling state.
pub(crate) struct AppRecord {
    pub(crate) name: String,
    pub(crate) subscriptions: Vec<EventKind>,
    pub(crate) host: Host,
    pub(crate) status: AppStatus,
    pub(crate) limits: ResourceLimits,
    pub(crate) usage: ResourceUsage,
}

/// An app as a shard sees it: its record plus its global attach index
/// (the index sequential dispatch would visit it at).
pub(crate) struct ShardApp {
    pub(crate) global: usize,
    pub(crate) rec: AppRecord,
}

/// One worker's slice of the runtime: a private proxy and Crash-Pad plus
/// the apps hashed onto it, in global attach order.
pub(crate) struct WorkerShard {
    pub(crate) id: usize,
    pub(crate) proxy: AppVisorProxy,
    pub(crate) crashpad: CrashPad,
    pub(crate) apps: Vec<ShardApp>,
}

/// Global-index → (worker, local-index) directory, in attach order.
#[derive(Default)]
pub(crate) struct ShardRouter {
    dir: Vec<(usize, usize)>,
}

impl ShardRouter {
    pub(crate) fn len(&self) -> usize {
        self.dir.len()
    }

    pub(crate) fn push(&mut self, worker: usize, local: usize) {
        self.dir.push((worker, local));
    }

    pub(crate) fn loc(&self, global: usize) -> (usize, usize) {
        self.dir[global]
    }

    pub(crate) fn get(&self, global: usize) -> Option<(usize, usize)> {
        self.dir.get(global).copied()
    }

    /// Rewrite the whole directory from the shards' current rosters.
    /// A re-balance migration shifts the local indices of every app
    /// behind the one that moved, so patching single entries is never
    /// enough — the directory is rebuilt wholesale.
    pub(crate) fn rebuild(&mut self, shards: &[WorkerShard]) {
        for (worker, shard) in shards.iter().enumerate() {
            for (local, app) in shard.apps.iter().enumerate() {
                self.dir[app.global] = (worker, local);
            }
        }
    }
}

/// Stable app→worker assignment: FNV-1a over the app name and its attach
/// ordinal, avalanched, mod the worker count. Pure data — the same
/// roster always shards the same way, on any machine, at any worker
/// count.
///
/// The avalanche finalizer (splitmix64's) matters: raw FNV's low bit is
/// just the XOR of the input bytes' low bits, so for rosters named
/// `app-0`, `app-1`, … the decimal digit's parity cancels the ordinal's
/// and `% 2` degenerates into a contiguous block split. Block-contiguous
/// shards serialize the commit barrier (every position on worker B waits
/// on all of worker A's declarations); mixing the bits first interleaves
/// the roster across shards instead.
#[must_use]
pub fn stable_shard(name: &str, ordinal: usize, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes().chain((ordinal as u64).to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % workers.max(1) as u64) as usize
}

/// One translated event awaiting windowed dispatch, with the views it
/// must be delivered against — the translator's views *as of its
/// translation*, which is exactly what sequential dispatch would have
/// handed the apps before translating the next raw event.
pub(crate) struct WindowSlot {
    pub(crate) event: Event,
    pub(crate) topology: TopologyView,
    pub(crate) devices: DeviceView,
    pub(crate) now: SimTime,
    /// Flight-recorder trace for this event, if it was sampled. Window
    /// operations switch the obs trace scope to this id so every layer
    /// hook (proxy queue/collect, Crash-Pad recovery, NetLog commit)
    /// lands in the right causal timeline. Recorder scopes are
    /// per-thread, so worker threads tag their own work without
    /// fighting over ambient state.
    pub(crate) trace: Option<TraceId>,
}

/// One speculative in-flight (event, app) delivery to an isolated stub.
pub(crate) struct WindowEntry {
    /// Index into the owning shard's `apps`.
    pub(crate) local: usize,
    pub(crate) handle: AppHandle,
    /// Tag of the snapshot queued just before the delivery, if one was
    /// due (`None`: not due, or its send failed along with the
    /// delivery's).
    pub(crate) snap: Option<u64>,
    /// Tag of the queued delivery; `None` means the send itself failed
    /// and the collect classifies it as a comm failure.
    pub(crate) seq: Option<u64>,
    /// When the delivery was queued (feeds the per-event queue-latency
    /// histogram at collect time).
    pub(crate) queued_at: Instant,
}

/// A growable, shareable window of translated events. The runtime seeds
/// it with the cycle's initial burst and — when `lookahead_cycles`
/// allows — appends follow-on events triggered by commits while the
/// workers are still draining the window (DESIGN.md §15). Workers index
/// it by slot number; `Arc` hands each worker a stable view of a slot
/// without holding the store lock across dispatch work.
pub(crate) struct SlotStore {
    state: Mutex<StoreState>,
    cv: Condvar,
}

struct StoreState {
    slots: Vec<Arc<WindowSlot>>,
    closed: bool,
}

impl SlotStore {
    pub(crate) fn new(initial: Vec<WindowSlot>) -> Self {
        Self {
            state: Mutex::new(StoreState {
                slots: initial.into_iter().map(Arc::new).collect(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("slot store poisoned").slots.len()
    }

    pub(crate) fn get(&self, i: usize) -> Arc<WindowSlot> {
        Arc::clone(&self.state.lock().expect("slot store poisoned").slots[i])
    }

    /// Append one slot and wake every worker parked in [`wait_beyond`].
    ///
    /// [`wait_beyond`]: SlotStore::wait_beyond
    pub(crate) fn append(&self, slot: WindowSlot) {
        let mut st = self.state.lock().expect("slot store poisoned");
        st.slots.push(Arc::new(slot));
        self.cv.notify_all();
    }

    /// Mark the window complete: no further appends will come.
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().expect("slot store poisoned");
        st.closed = true;
        self.cv.notify_all();
    }

    /// Block until the store grows past `known` slots (`Some(new_len)`)
    /// or is closed with nothing beyond them (`None`).
    pub(crate) fn wait_beyond(&self, known: usize) -> Option<usize> {
        let mut st = self.state.lock().expect("slot store poisoned");
        while st.slots.len() <= known && !st.closed {
            st = self.cv.wait(st).expect("slot store poisoned");
        }
        (st.slots.len() > known).then_some(st.slots.len())
    }
}

/// The shared commit lane: the one place network effects happen. Workers
/// take it only for the duration of a single transaction, under barrier
/// admission.
pub(crate) struct CommitLane<'a> {
    pub(crate) net: &'a mut Network,
    pub(crate) netlog: &'a mut NetLog,
    /// Sticky within the lane's lifetime: some committed batch carried a
    /// `send_flow_removed` FlowMod. The runtime folds this into its
    /// cross-cycle `notify_flows_seen` flag — once a notify-flagged entry
    /// may exist in any table, a later cycle's fastpath Add could
    /// displace it and enqueue a `FlowRemoved`, so the fastpath stays off
    /// from then on.
    pub(crate) notify_seen: bool,
}

/// A shard's view of the runtime while acting on one app: the shard
/// itself plus the stats sink and shared read-only policy knobs.
pub(crate) struct ShardCtx<'a> {
    pub(crate) shard: &'a mut WorkerShard,
    pub(crate) stats: &'a mut RuntimeStats,
    pub(crate) obs: &'a Obs,
    pub(crate) checker: Option<&'a Checker>,
    pub(crate) shutdown_on_no_compromise: bool,
}

/// Stable trace-event outcome label for a raw delivery.
pub(crate) fn delivery_label(d: &DeliveryResult) -> &'static str {
    match d {
        DeliveryResult::Ok(_) => "ok",
        DeliveryResult::Crashed { .. } => "crashed",
        DeliveryResult::CommFailure => "comm_failure",
    }
}

/// Subscription / status / event-budget gate for one app. Returns `true`
/// when the app should receive the event, charging the event to its
/// budget. Every dispatch mode uses this, so selection (and its
/// suspension side effects) is identical across them.
pub(crate) fn select_app(cx: &mut ShardCtx<'_>, local: usize, kind: EventKind) -> bool {
    let rec = &mut cx.shard.apps[local].rec;
    if !rec.subscriptions.contains(&kind) {
        return false;
    }
    if rec.status != AppStatus::Running {
        cx.stats.events_skipped += 1;
        return false;
    }
    if let Some(max) = rec.limits.max_events {
        if rec.usage.events_consumed >= max {
            rec.status = AppStatus::Suspended("event budget exhausted");
            cx.stats.apps_suspended += 1;
            cx.stats.events_skipped += 1;
            return false;
        }
    }
    cx.stats.dispatches += 1;
    cx.obs.counter("core", "dispatches", "").inc();
    rec.usage.events_consumed += 1;
    cx.obs.trace_event("fill", &rec.name, "selected");
    true
}

/// Whether acting on `result` needs the shared commit lane at all. A
/// position that provably produces no network transaction (no commands,
/// an over-budget suppression, or an app death with network shutdown off)
/// is *elided* at the barrier instead of serialized through it.
pub(crate) fn lane_need(
    cx: &ShardCtx<'_>,
    local: usize,
    event: &Event,
    result: &DispatchResult,
) -> bool {
    let rec = &cx.shard.apps[local].rec;
    match result {
        DispatchResult::Delivered(commands) | DispatchResult::Recovered { commands, .. } => {
            !commands.is_empty()
                && rec
                    .limits
                    .max_commands
                    .is_none_or(|max| rec.usage.commands_emitted + commands.len() as u64 <= max)
        }
        DispatchResult::AppDead { .. } => {
            cx.shutdown_on_no_compromise
                && cx.shard.crashpad.policies.lookup(&rec.name, event.kind())
                    == CompromisePolicy::NoCompromise
        }
    }
}

/// The declared barrier touch of a command batch, plus whether any
/// command requests flow-removed notifications (which poisons the
/// fastpath for the rest of the cycle: an Add displacing a notify-flagged
/// entry would enqueue a `FlowRemoved` event).
pub(crate) fn commands_touch(commands: &[Command]) -> (TxTouch, bool) {
    let mut dpids: Vec<DatapathId> = Vec::new();
    let mut add_only = true;
    let mut notify = false;
    let mut unknown = false;
    for c in commands {
        match &c.msg {
            Message::FlowMod(fm) => {
                if !dpids.contains(&c.dpid) {
                    dpids.push(c.dpid);
                }
                if fm.command != FlowModCommand::Add || fm.buffer_id.is_some() {
                    add_only = false;
                }
                if fm.send_flow_removed {
                    notify = true;
                    add_only = false;
                }
            }
            _ => unknown = true,
        }
    }
    let touch = if unknown {
        TxTouch::Unknown
    } else {
        TxTouch::Flows { dpids, add_only }
    };
    (touch, notify)
}

/// Act on one app's dispatch outcome inside the commit lane: execute its
/// commands under the NetLog/byzantine guard, or mark it dead. Shared
/// tail of every dispatch mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_outcome(
    cx: &mut ShardCtx<'_>,
    lane: &mut CommitLane<'_>,
    local: usize,
    event: &Event,
    result: DispatchResult,
    report: &mut LegoCycleReport,
    views: (&TopologyView, &DeviceView),
    tx_base: u64,
) {
    let verdict = match &result {
        DispatchResult::Delivered(_) => "delivered",
        DispatchResult::Recovered { .. } => "recovered",
        DispatchResult::AppDead { .. } => "app_dead",
    };
    cx.obs
        .trace_event("commit", &cx.shard.apps[local].rec.name, verdict);
    let mut sub = 0u64;
    match result {
        DispatchResult::Delivered(commands) => {
            execute_guarded(
                cx, lane, local, event, commands, report, true, views, tx_base, &mut sub,
            );
        }
        DispatchResult::Recovered {
            commands, recovery, ..
        } => {
            report.recoveries += 1;
            cx.stats.failstop_recoveries += 1;
            cx.obs
                .counter(
                    "core",
                    "failstop_recoveries",
                    &cx.shard.apps[local].rec.name,
                )
                .inc();
            // Commands from transformed events are real output; execute
            // them under the same guard (no further byzantine recursion
            // on already-recovered output — drop instead).
            let _ = recovery;
            execute_guarded(
                cx, lane, local, event, commands, report, false, views, tx_base, &mut sub,
            );
        }
        DispatchResult::AppDead { .. } => {
            mark_dead(cx, Some(lane.net), local, event);
        }
    }
}

/// The lane-free twin of [`commit_outcome`] for positions [`lane_need`]
/// ruled out: identical bookkeeping (trace verdict, recovery counters,
/// budget suppression, app death without network shutdown) with no
/// network transaction.
pub(crate) fn commit_outcome_elided(
    cx: &mut ShardCtx<'_>,
    local: usize,
    event: &Event,
    result: DispatchResult,
    report: &mut LegoCycleReport,
) {
    let verdict = match &result {
        DispatchResult::Delivered(_) => "delivered",
        DispatchResult::Recovered { .. } => "recovered",
        DispatchResult::AppDead { .. } => "app_dead",
    };
    cx.obs
        .trace_event("commit", &cx.shard.apps[local].rec.name, verdict);
    match result {
        DispatchResult::Delivered(commands) => {
            suppress_if_over_budget(cx, local, &commands);
        }
        DispatchResult::Recovered { commands, .. } => {
            report.recoveries += 1;
            cx.stats.failstop_recoveries += 1;
            cx.obs
                .counter(
                    "core",
                    "failstop_recoveries",
                    &cx.shard.apps[local].rec.name,
                )
                .inc();
            suppress_if_over_budget(cx, local, &commands);
        }
        DispatchResult::AppDead { .. } => {
            mark_dead(cx, None, local, event);
        }
    }
}

/// The command-budget gate of [`execute_guarded`] for elided positions:
/// an over-budget batch suspends the app and counts the suppression even
/// though no transaction ever begins.
fn suppress_if_over_budget(cx: &mut ShardCtx<'_>, local: usize, commands: &[Command]) {
    if commands.is_empty() {
        return;
    }
    let rec = &mut cx.shard.apps[local].rec;
    if let Some(max) = rec.limits.max_commands {
        if rec.usage.commands_emitted + commands.len() as u64 > max {
            rec.status = AppStatus::Suspended("command budget exhausted");
            cx.stats.apps_suspended += 1;
            cx.stats.commands_suppressed += commands.len() as u64;
        }
    }
}

/// Execute an app's commands inside a NetLog transaction with the
/// byzantine gate. `allow_recovery` bounds the recursion: output from a
/// recovery path that is still byzantine is dropped, not re-recovered.
/// Transaction ids are position-derived (`tx_base + *sub`) so the txlog
/// order is independent of barrier admission order.
#[allow(clippy::too_many_arguments)]
fn execute_guarded(
    cx: &mut ShardCtx<'_>,
    lane: &mut CommitLane<'_>,
    local: usize,
    event: &Event,
    commands: Vec<Command>,
    report: &mut LegoCycleReport,
    allow_recovery: bool,
    views: (&TopologyView, &DeviceView),
    tx_base: u64,
    sub: &mut u64,
) {
    if commands.is_empty() {
        return;
    }
    // Resource limit on emitted commands.
    if let Some(max) = cx.shard.apps[local].rec.limits.max_commands {
        let used = cx.shard.apps[local].rec.usage.commands_emitted;
        if used + commands.len() as u64 > max {
            cx.shard.apps[local].rec.status = AppStatus::Suspended("command budget exhausted");
            cx.stats.apps_suspended += 1;
            cx.stats.commands_suppressed += commands.len() as u64;
            return;
        }
    }

    if commands
        .iter()
        .any(|c| matches!(&c.msg, Message::FlowMod(fm) if fm.send_flow_removed))
    {
        lane.notify_seen = true;
    }

    let name = cx.shard.apps[local].rec.name.clone();
    let mut tx = lane.netlog.begin_for_at(&name, TxId(tx_base + *sub));
    *sub += 1;
    for c in &commands {
        // Reads return synchronously in immediate mode; pass stats
        // replies through the counter cache.
        match lane.netlog.execute(&mut tx, lane.net, c.dpid, &c.msg) {
            Ok(replies) => {
                for mut reply in replies {
                    if let Message::StatsReply(ref mut sr) = reply {
                        lane.netlog.adjust_stats(c.dpid, sr);
                    }
                    // Replies would flow back to the app as events in a
                    // fully async design; translation handles the async
                    // ones, so synchronous replies are dropped here.
                }
            }
            Err(_) => { /* unknown/down switch: the op is a no-op */ }
        }
    }

    // Byzantine gate. Only state-altering output can violate network
    // invariants; pure packet-outs/reads skip the (expensive) check.
    let alters_state = commands.iter().any(|c| c.msg.alters_network_state());
    let violations = match (
        alters_state.then_some(()).and(cx.checker),
        lane.netlog.mode(),
    ) {
        (Some(checker), TxMode::Buffered) => {
            let r = checker.gate(lane.net, tx.buffered_commands());
            (!r.is_clean()).then_some(r.violations.len())
        }
        (Some(checker), TxMode::Immediate) => {
            let r = checker.check(lane.net);
            (!r.is_clean()).then_some(r.violations.len())
        }
        (None, _) => None,
    };

    match violations {
        Some(nviol) => {
            // Abort: buffered mode drops the buffer; immediate mode
            // rolls the network back via the undo log.
            let _ = lane.netlog.abort(tx, lane.net);
            report.byzantine_blocked += 1;
            cx.stats.byzantine_blocked += 1;
            cx.obs.counter("core", "byzantine_blocked", &name).inc();
            let policy = cx.shard.crashpad.policies.lookup(&name, event.kind());
            if allow_recovery {
                let recovered = recover_byzantine(cx, lane, local, event, nviol, views);
                // Recovered output (from transformed events) executes
                // with recovery disabled.
                execute_guarded(
                    cx, lane, local, event, recovered, report, false, views, tx_base, sub,
                );
            } else {
                cx.stats.commands_suppressed += commands.len() as u64;
            }
            if policy == CompromisePolicy::NoCompromise && cx.shutdown_on_no_compromise {
                shutdown_network(lane.net);
            }
        }
        None => {
            let applied = match lane.netlog.commit(tx, lane.net) {
                Ok(r) => r.ops_applied,
                Err(_) => 0,
            };
            report.commands += applied;
            cx.stats.commands_executed += applied as u64;
            cx.obs
                .counter("core", "commands_executed", "")
                .add(applied as u64);
            cx.shard.apps[local].rec.usage.commands_emitted += applied as u64;
        }
    }
}

fn recover_byzantine(
    cx: &mut ShardCtx<'_>,
    lane: &mut CommitLane<'_>,
    local: usize,
    event: &Event,
    violations: usize,
    views: (&TopologyView, &DeviceView),
) -> Vec<Command> {
    let now = lane.net.now();
    let name = cx.shard.apps[local].rec.name.clone();
    // Replay must see the views the event was dispatched with, which
    // every caller supplies (the windowed scheduler's translator has
    // already advanced past this event by commit time).
    let (topo, dev) = views;
    let result = match &mut cx.shard.apps[local].rec.host {
        Host::Local(sandbox) => cx
            .shard
            .crashpad
            .recover_byzantine(sandbox, &name, event, violations, topo, dev, now),
        Host::Isolated(handle) => {
            let mut adapter = ProxyAdapter {
                proxy: &mut cx.shard.proxy,
                handle: *handle,
            };
            cx.shard.crashpad.recover_byzantine(
                &mut adapter,
                &name,
                event,
                violations,
                topo,
                dev,
                now,
            )
        }
    };
    match result {
        DispatchResult::Recovered {
            commands, recovery, ..
        } => {
            if recovery == RecoveryTaken::Transformed {
                commands
            } else {
                Vec::new()
            }
        }
        DispatchResult::AppDead { .. } => {
            mark_dead(cx, Some(lane.net), local, event);
            Vec::new()
        }
        DispatchResult::Delivered(c) => c,
    }
}

/// Mark an app dead. `net` is `None` on elided positions, where
/// [`lane_need`] already proved No-Compromise network shutdown is off.
pub(crate) fn mark_dead(
    cx: &mut ShardCtx<'_>,
    net: Option<&mut Network>,
    local: usize,
    event: &Event,
) {
    let rec = &mut cx.shard.apps[local].rec;
    if rec.status != AppStatus::Dead {
        rec.status = AppStatus::Dead;
        cx.stats.apps_dead += 1;
    }
    let policy = cx
        .shard
        .crashpad
        .policies
        .lookup(&cx.shard.apps[local].rec.name, event.kind());
    if policy == CompromisePolicy::NoCompromise && cx.shutdown_on_no_compromise {
        if let Some(net) = net {
            shutdown_network(net);
        }
    }
}

/// One worker's execution of a cycle's window: the fill → collect →
/// commit machinery of DESIGN.md §10 over a growable [`SlotStore`],
/// scoped to the shard's apps, with every commit admitted by the shared
/// [`CommitBarrier`].
///
/// The same engine runs the single-worker configuration (inline on the
/// runtime's thread, `sharded == false`, `wait_more == false` so each
/// [`run`] call drains what the store holds and returns for more) and
/// the multi-worker one (on `lego-worker-N` scoped threads,
/// `sharded == true`, `wait_more == true` so workers park in the store
/// until the runtime closes it). Recorder scopes are per-thread, so
/// both configurations record full flight-recorder traces. Stats and
/// the cycle report accumulate into worker-local zero-initialized
/// deltas the runtime merges after the cycle — identical totals at any
/// worker count.
///
/// [`run`]: WorkerRun::run
pub(crate) struct WorkerRun<'env, 'net> {
    pub(crate) shard: &'env mut WorkerShard,
    pub(crate) store: &'env SlotStore,
    pub(crate) barrier: &'env CommitBarrier,
    pub(crate) lane: &'env Mutex<CommitLane<'net>>,
    pub(crate) obs: Obs,
    pub(crate) checker: Option<&'env Checker>,
    pub(crate) shutdown_on_no_compromise: bool,
    pub(crate) depth: usize,
    /// Total apps across all shards — the position stride per slot.
    pub(crate) n_apps: usize,
    /// First transaction id of the cycle (position 0, sub 0).
    pub(crate) tx_cycle_base: u64,
    pub(crate) sharded: bool,
    /// When caught up with the store, park in [`SlotStore::wait_beyond`]
    /// for more slots (worker threads, fed by the runtime's extension
    /// loop) instead of returning to the caller (single-worker drain
    /// mode, where the caller alternates draining with extending).
    pub(crate) wait_more: bool,
    /// Worker label for span histograms: empty when single-worker (the
    /// runtime's historical metric names), `"wN"` per worker otherwise.
    pub(crate) wl: String,
    pub(crate) stats: RuntimeStats,
    pub(crate) report: LegoCycleReport,
    /// Cross-call window state (single-worker drain mode re-enters
    /// [`run`] after each extension): speculative in-flight entries per
    /// slot, uncollected deliveries per app, and the fill/commit
    /// cursors.
    ///
    /// [`run`]: WorkerRun::run
    pub(crate) pending: Vec<Vec<WindowEntry>>,
    pub(crate) inflight: Vec<u64>,
    pub(crate) next_send: usize,
    pub(crate) commit_pos: usize,
}

impl WorkerRun<'_, '_> {
    /// Switch this thread's flight-recorder scope. Scopes are
    /// per-thread, so each worker tags its own fill/commit work with
    /// the slot's trace without disturbing its peers.
    fn scope(&self, trace: Option<TraceId>) {
        self.obs.trace_scope(trace);
    }

    fn cx(&mut self) -> ShardCtx<'_> {
        ShardCtx {
            shard: &mut *self.shard,
            stats: &mut self.stats,
            obs: &self.obs,
            checker: self.checker,
            shutdown_on_no_compromise: self.shutdown_on_no_compromise,
        }
    }

    /// Barrier position of `(slot, local app)`: the index sequential
    /// dispatch would commit it at.
    fn pos_of(&self, slot: usize, local: usize) -> u64 {
        (slot * self.n_apps + self.shard.apps[local].global) as u64
    }

    /// Run the window over this shard's apps: drain every slot the
    /// store currently holds (and, under `wait_more`, every slot the
    /// runtime appends until it closes the store).
    pub(crate) fn run(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        let mut inflight = std::mem::take(&mut self.inflight);
        if inflight.len() < self.shard.apps.len() {
            inflight.resize(self.shard.apps.len(), 0);
        }
        let mut next_send = self.next_send;
        let mut commit_pos = self.commit_pos;
        loop {
            let len = self.store.len();
            if commit_pos >= len {
                if !self.wait_more {
                    break;
                }
                match self.store.wait_beyond(len) {
                    Some(_) => continue,
                    None => break,
                }
            }
            if pending.len() < len {
                pending.resize_with(len, Vec::new);
            }
            {
                let _span = self.obs.span_labeled("core.window_fill", &self.wl);
                while next_send < len && next_send < commit_pos + self.depth {
                    pending[next_send] = self.send_slot(next_send, &mut inflight);
                    next_send += 1;
                }
            }
            {
                let _span = self.obs.span_labeled("core.window_commit", &self.wl);
                self.commit_slot(commit_pos, next_send, &mut pending, &mut inflight);
            }
            commit_pos += 1;
        }
        self.scope(None);
        self.pending = pending;
        self.inflight = inflight;
        self.next_send = next_send;
        self.commit_pos = commit_pos;
    }

    /// Speculatively select and queue one slot's deliveries to the
    /// isolated stubs (locals run inline at commit). Selection side
    /// effects (dispatch counters, event budgets, suspension) apply at
    /// send time and are rolled back entry-by-entry if a failure on an
    /// earlier slot cancels the entry.
    fn send_slot(&mut self, s: usize, inflight: &mut [u64]) -> Vec<WindowEntry> {
        let slot = self.store.get(s);
        self.scope(slot.trace);
        let kind = slot.event.kind();
        let mut entries = Vec::new();
        for local in 0..self.shard.apps.len() {
            if !matches!(self.shard.apps[local].rec.host, Host::Isolated(_)) {
                continue;
            }
            if !select_app(&mut self.cx(), local, kind) {
                continue;
            }
            entries.push(self.queue_one(local, &slot, inflight));
        }
        entries
    }

    /// Queue (snapshot-if-due, delivery) for one selected stub app.
    /// Snapshot due-ness is projected over the app's uncollected
    /// in-flight deliveries: a snapshot queued on the FIFO stream between
    /// deliveries *k* and *k+1* captures the state after *k* — exactly
    /// the pre-event checkpoint the sequential protocol takes.
    fn queue_one(&mut self, local: usize, slot: &WindowSlot, inflight: &mut [u64]) -> WindowEntry {
        let Host::Isolated(handle) = &self.shard.apps[local].rec.host else {
            unreachable!("windowed entries are stub-only");
        };
        let handle = *handle;
        let name = self.shard.apps[local].rec.name.clone();
        let snap = if self
            .shard
            .crashpad
            .checkpoints
            .checkpoint_due_ahead(&name, inflight[local])
        {
            self.shard.proxy.queue_snapshot(handle).ok().flatten()
        } else {
            None
        };
        let seq = self
            .shard
            .proxy
            .queue_deliver(handle, &slot.event, &slot.topology, &slot.devices, slot.now)
            .ok()
            .flatten();
        inflight[local] += 1;
        WindowEntry {
            local,
            handle,
            snap,
            seq,
            queued_at: Instant::now(),
        }
    }

    /// Commit one slot: sweep the shard's apps in local (= global) order,
    /// settling each position exactly once — a collected stub entry, an
    /// inline local-sandbox dispatch, or an elision at the barrier.
    ///
    /// When sharded, every selected local sandbox's (snapshot, deliver,
    /// gather) runs *before* any barrier interaction. Deliveries read the
    /// slot's captured views, never the commits — the same independence
    /// the stub path already exploits by queueing deliveries in the fill
    /// phase — so hoisting them is unobservable in the output, but it
    /// means this worker's declarations land while its peers are still
    /// busy instead of trickling out between barrier waits. Interleaving
    /// slow local work with `acquire` would otherwise lock-step the
    /// shards (each settle waits on every earlier position's declaration,
    /// and each declaration waits on that worker's previous settle).
    fn commit_slot(
        &mut self,
        commit_pos: usize,
        next_send: usize,
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) {
        let slot = self.store.get(commit_pos);
        self.scope(slot.trace);
        let kind = slot.event.kind();
        let entries = std::mem::take(&mut pending[commit_pos]);
        let mut entries = entries.into_iter().peekable();
        let mut eager = std::collections::VecDeque::new();
        if self.sharded {
            for local in 0..self.shard.apps.len() {
                if matches!(self.shard.apps[local].rec.host, Host::Local(_))
                    && select_app(&mut self.cx(), local, kind)
                {
                    let result = self.deliver_local(local, &slot);
                    eager.push_back((local, result));
                }
            }
        }
        // Harvest sweep: collect every position's outcome and declare
        // its barrier touch the moment it is known, so this worker's
        // declarations for the whole slot land before its first
        // admission wait. Peers deciding fastpath eligibility see the
        // declared touches that much sooner.
        let mut settles: Vec<(usize, Option<DispatchResult>, bool, bool)> = Vec::new();
        for local in 0..self.shard.apps.len() {
            if entries.peek().is_some_and(|e| e.local == local) {
                let entry = entries.next().expect("peeked");
                inflight[local] -= 1;
                let (result, failed) =
                    self.harvest_entry(entry, &slot, commit_pos, pending, inflight);
                self.declare_or_queue(local, commit_pos, &slot, result, true, failed, &mut settles);
            } else if eager.front().is_some_and(|e| e.0 == local) {
                let (_, result) = eager.pop_front().expect("peeked");
                self.declare_or_queue(local, commit_pos, &slot, result, false, false, &mut settles);
            } else {
                let selected = !self.sharded
                    && matches!(self.shard.apps[local].rec.host, Host::Local(_))
                    && select_app(&mut self.cx(), local, kind);
                if selected {
                    // A local sandbox has no stub to overlap with: it
                    // runs inline at commit, against the slot's
                    // captured views.
                    let result = self.deliver_local(local, &slot);
                    self.declare_or_queue(
                        local,
                        commit_pos,
                        &slot,
                        result,
                        false,
                        false,
                        &mut settles,
                    );
                } else {
                    self.barrier.finish_empty(self.pos_of(commit_pos, local));
                }
            }
        }
        // Settle sweep, in the same local order: admission + lane
        // commit, then the window repair (cancel/resend) the inline
        // path used to perform per entry.
        for (local, result, is_stub, failed) in settles {
            let byz_before = self.stats.byzantine_blocked;
            if let Some(result) = result {
                self.settle_declared(local, commit_pos, &slot, result);
            }
            let byz_recovered = self.stats.byzantine_blocked > byz_before;
            if is_stub && byz_recovered && !failed {
                // Byzantine caught at commit: the app was restored
                // mid-stream, so its queued later deliveries ran from
                // the wrong state.
                self.cancel_app(local, commit_pos, pending, inflight);
            }
            if is_stub && (failed || byz_recovered) {
                self.resend_app(local, commit_pos, next_send, pending, inflight);
                // The resend loop re-scoped the recorder to the
                // refilled slots; later settles still belong here.
                self.scope(slot.trace);
            }
        }
    }

    /// Run one local-sandbox dispatch (checkpoint-if-due, deliver,
    /// gather/recover) against the slot's captured views, without
    /// touching the barrier.
    fn deliver_local(&mut self, local: usize, slot: &WindowSlot) -> DispatchResult {
        let name = self.shard.apps[local].rec.name.clone();
        let started = Instant::now();
        let result = {
            let obs = self.obs.clone();
            let Host::Local(sandbox) = &mut self.shard.apps[local].rec.host else {
                unreachable!("checked by the caller");
            };
            self.shard.crashpad.prepare(sandbox, &name);
            obs.trace_event("send", &name, "local");
            let delivery = sandbox.deliver(&slot.event, &slot.topology, &slot.devices, slot.now);
            obs.trace_event("collect", &name, delivery_label(&delivery));
            self.shard.crashpad.complete(
                sandbox,
                &name,
                &slot.event,
                delivery,
                &slot.topology,
                &slot.devices,
                slot.now,
            )
        };
        // Per-app dispatch cost, fed back to the runtime's load-aware
        // re-balancer (DESIGN.md §15).
        self.obs
            .histogram("core", "dispatch_app_ns", &name)
            .observe(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        result
    }

    /// Collect and gather one in-flight (event, app) entry: snapshot
    /// collect, delivery collect, failure-path cancellation (before
    /// recovery restores the app, so the RPC stream is clean when
    /// replay begins), and the Crash-Pad's completion/recovery.
    /// Returns the dispatch outcome plus whether the delivery failed;
    /// settling happens later, after the whole slot has declared.
    fn harvest_entry(
        &mut self,
        entry: WindowEntry,
        slot: &WindowSlot,
        commit_pos: usize,
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) -> (DispatchResult, bool) {
        let local = entry.local;
        let name = self.shard.apps[local].rec.name.clone();

        // The snapshot queued before this delivery: collect and book it.
        // The recorded duration is the wait the proxy actually paid here —
        // near zero when the stub answered while the window was busy,
        // which is the cost this scheduler exists to hide.
        if let Some(tag) = entry.snap {
            let waited = Instant::now();
            if let Ok(bytes) = self.shard.proxy.collect_snapshot(entry.handle, tag) {
                let dur_ns = u64::try_from(waited.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.shard.crashpad.record_prepared(&name, bytes, dur_ns);
            }
        }

        self.shard.crashpad.note_dispatch();
        let delivery = match entry.seq {
            Some(seq) => outcome_to_delivery(self.shard.proxy.collect_deliver(entry.handle, seq)),
            None => DeliveryResult::CommFailure,
        };
        let queue_ns = u64::try_from(entry.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.obs
            .histogram("core", "window_queue_ns", &self.wl)
            .observe(queue_ns);
        // Queue latency doubles as the stub's load signal for the
        // runtime's re-balancer: a stub that keeps the window waiting
        // is a stub worth spreading away from its shard-mates.
        self.obs
            .histogram("core", "dispatch_app_ns", &name)
            .observe(queue_ns);

        let failed = !matches!(delivery, DeliveryResult::Ok(_));
        if failed {
            // Cancel this app's queued later deliveries BEFORE recovery
            // restores it, so the RPC stream is clean when replay begins.
            self.cancel_app(local, commit_pos, pending, inflight);
        }
        let result = {
            let mut adapter = ProxyAdapter {
                proxy: &mut self.shard.proxy,
                handle: entry.handle,
            };
            self.shard.crashpad.complete(
                &mut adapter,
                &name,
                &slot.event,
                delivery,
                &slot.topology,
                &slot.devices,
                slot.now,
            )
        };
        (result, failed)
    }

    /// Declare one harvested position at the barrier, or elide it on
    /// the spot if it needs no network transaction. Lane-needing
    /// positions are queued for the settle sweep; elided failed stubs
    /// are queued too (result already settled) so the settle sweep
    /// still repairs their window.
    #[allow(clippy::too_many_arguments)]
    fn declare_or_queue(
        &mut self,
        local: usize,
        commit_pos: usize,
        slot: &WindowSlot,
        result: DispatchResult,
        is_stub: bool,
        failed: bool,
        settles: &mut Vec<(usize, Option<DispatchResult>, bool, bool)>,
    ) {
        let pos = self.pos_of(commit_pos, local);
        if !lane_need(&self.cx(), local, &slot.event, &result) {
            let mut cx = ShardCtx {
                shard: &mut *self.shard,
                stats: &mut self.stats,
                obs: &self.obs,
                checker: self.checker,
                shutdown_on_no_compromise: self.shutdown_on_no_compromise,
            };
            commit_outcome_elided(&mut cx, local, &slot.event, result, &mut self.report);
            self.barrier.finish_empty(pos);
            if is_stub && failed {
                settles.push((local, None, is_stub, failed));
            }
            return;
        }
        let (touch, notify) = match &result {
            DispatchResult::Delivered(commands) | DispatchResult::Recovered { commands, .. } => {
                commands_touch(commands)
            }
            DispatchResult::AppDead { .. } => (TxTouch::Unknown, false),
        };
        if notify {
            self.barrier.poison_fastpath();
        }
        self.barrier.declare(pos, self.shard.id, touch);
        settles.push((local, Some(result), is_stub, failed));
    }

    /// Settle one already-declared position: wait for admission and run
    /// the commit inside the shared lane.
    fn settle_declared(
        &mut self,
        local: usize,
        commit_pos: usize,
        slot: &WindowSlot,
        result: DispatchResult,
    ) {
        let pos = self.pos_of(commit_pos, local);
        let _admission = self.barrier.acquire(pos);
        {
            let mut lane = self.lane.lock().expect("commit lane poisoned");
            let mut cx = ShardCtx {
                shard: &mut *self.shard,
                stats: &mut self.stats,
                obs: &self.obs,
                checker: self.checker,
                shutdown_on_no_compromise: self.shutdown_on_no_compromise,
            };
            commit_outcome(
                &mut cx,
                &mut lane,
                local,
                &slot.event,
                result,
                &mut self.report,
                (&slot.topology, &slot.devices),
                self.tx_cycle_base + pos * TXS_PER_POS,
            );
        }
        self.barrier.release(pos);
    }

    /// Drop an app's in-flight entries beyond `commit_pos` and roll back
    /// their speculative selection, so re-selection sees exactly the
    /// post-recovery state sequential dispatch would.
    fn cancel_app(
        &mut self,
        local: usize,
        commit_pos: usize,
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) {
        let name = self.shard.apps[local].rec.name.clone();
        let mut tags = Vec::new();
        let mut handle = None;
        for (s, slot_entries) in pending.iter_mut().enumerate().skip(commit_pos + 1) {
            if let Some(pos) = slot_entries.iter().position(|e| e.local == local) {
                let e = slot_entries.remove(pos);
                tags.extend(e.snap);
                tags.extend(e.seq);
                handle = Some(e.handle);
                // Roll the speculative selection back. (The monotonic obs
                // dispatch counter keeps the cancelled send; RuntimeStats
                // is the determinism-bearing surface.)
                self.stats.dispatches -= 1;
                self.shard.apps[local].rec.usage.events_consumed -= 1;
                inflight[local] -= 1;
                // The cancellation belongs to the *cancelled* event's
                // timeline, not the failed one currently in scope.
                if let Some(tid) = self.store.get(s).trace {
                    self.obs
                        .trace_event_for(tid, "cancel", &name, "crash_upstream");
                }
            }
        }
        if let Some(h) = handle {
            let _ = self.shard.proxy.cancel_pending(h, &tags);
        }
    }

    /// Re-run selection for an app's cancelled slots (post-recovery
    /// state: a revived app is usually re-selected, a dead or suspended
    /// one is skipped and counted, just as sequential dispatch would) and
    /// queue fresh deliveries for the survivors.
    fn resend_app(
        &mut self,
        local: usize,
        commit_pos: usize,
        next_send: usize,
        pending: &mut [Vec<WindowEntry>],
        inflight: &mut [u64],
    ) {
        for (s, pend) in pending
            .iter_mut()
            .enumerate()
            .take(next_send)
            .skip(commit_pos + 1)
        {
            let slot = self.store.get(s);
            // Re-queued work records into the re-sent event's trace.
            self.scope(slot.trace);
            if !select_app(&mut self.cx(), local, slot.event.kind()) {
                continue;
            }
            self.obs
                .trace_event("resend", &self.shard.apps[local].rec.name, "requeued");
            let entry = self.queue_one(local, &slot, inflight);
            let pos = pend
                .iter()
                .position(|e| e.local > local)
                .unwrap_or(pend.len());
            pend.insert(pos, entry);
        }
    }
}

impl RuntimeStats {
    /// Fold a worker's zero-initialized per-cycle delta into the global
    /// totals. Field-complete on purpose: a worker only ever touches the
    /// dispatch-path counters, and the untouched ones add zero.
    pub(crate) fn absorb(&mut self, d: &RuntimeStats) {
        self.events_translated += d.events_translated;
        self.dispatches += d.dispatches;
        self.commands_executed += d.commands_executed;
        self.commands_suppressed += d.commands_suppressed;
        self.failstop_recoveries += d.failstop_recoveries;
        self.byzantine_blocked += d.byzantine_blocked;
        self.apps_dead += d.apps_dead;
        self.events_skipped += d.events_skipped;
        self.apps_suspended += d.apps_suspended;
        self.upgrades += d.upgrades;
        self.cycles += d.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_shard_is_stable_and_in_range() {
        for workers in 1..=8 {
            for ordinal in 0..32 {
                let a = stable_shard("learning-switch", ordinal, workers);
                let b = stable_shard("learning-switch", ordinal, workers);
                assert_eq!(a, b);
                assert!(a < workers);
            }
        }
        // Distinct ordinals of the same name do spread (the whole point
        // of hashing the ordinal in).
        let spread: std::collections::BTreeSet<usize> =
            (0..16).map(|o| stable_shard("hub", o, 4)).collect();
        assert!(spread.len() > 1, "identical ordinals never spread");
    }

    #[test]
    fn commands_touch_classifies_the_fastpath_gate() {
        use legosdn_openflow::prelude::*;
        let add = |dpid: u64| Command {
            dpid: DatapathId(dpid),
            msg: Message::FlowMod(FlowMod::add(Match::exact_eth(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
            ))),
        };
        let (touch, notify) = commands_touch(&[add(1), add(2), add(1)]);
        assert!(!notify);
        match touch {
            TxTouch::Flows { dpids, add_only } => {
                assert!(add_only);
                assert_eq!(dpids, vec![DatapathId(1), DatapathId(2)]);
            }
            other => panic!("expected Flows, got {other:?}"),
        }

        // A delete is flows-touching but not add-only.
        let mut del = add(3);
        if let Message::FlowMod(fm) = &mut del.msg {
            fm.command = FlowModCommand::Delete;
        }
        let (touch, _) = commands_touch(&[del]);
        assert!(matches!(
            touch,
            TxTouch::Flows {
                add_only: false,
                ..
            }
        ));

        // send_flow_removed poisons (displacement hazard) and is not
        // add-only.
        let mut notify_add = add(4);
        if let Message::FlowMod(fm) = &mut notify_add.msg {
            fm.send_flow_removed = true;
        }
        let (touch, notify) = commands_touch(&[notify_add]);
        assert!(notify);
        assert!(matches!(
            touch,
            TxTouch::Flows {
                add_only: false,
                ..
            }
        ));

        // Anything that is not a FlowMod is an unknown touch.
        let po = Command {
            dpid: DatapathId(5),
            msg: Message::PacketOut(PacketOut {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                actions: vec![Action::Output(PortNo::Flood)],
                packet: None,
            }),
        };
        let (touch, _) = commands_touch(&[add(1), po]);
        assert!(matches!(touch, TxTouch::Unknown));
    }
}
