//! Property-based tests: wire-codec roundtrips, match algebra, and
//! inversion laws over randomly generated protocol values.

use legosdn_openflow::prelude::*;
use legosdn_openflow::inverse::{inverse_of, restore_flow, PreState};
use legosdn_openflow::messages::{ErrorMsg, PortMod, SwitchFeatures};
use legosdn_openflow::wire;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

fn arb_portno() -> impl Strategy<Value = PortNo> {
    prop_oneof![
        (1u16..0xff00).prop_map(PortNo::Phys),
        Just(PortNo::InPort),
        Just(PortNo::Flood),
        Just(PortNo::All),
        Just(PortNo::Controller),
        Just(PortNo::Local),
        Just(PortNo::None),
    ]
}

fn arb_ethertype() -> impl Strategy<Value = EtherType> {
    prop_oneof![
        Just(EtherType::Ipv4),
        Just(EtherType::Arp),
        Just(EtherType::Lldp),
        any::<u16>().prop_map(EtherType::from_wire),
    ]
}

fn arb_ipproto() -> impl Strategy<Value = IpProto> {
    prop_oneof![
        Just(IpProto::Icmp),
        Just(IpProto::Tcp),
        Just(IpProto::Udp),
        any::<u8>().prop_map(IpProto::from_wire),
    ]
}

prop_compose! {
    fn arb_packet()(
        eth_src in arb_mac(),
        eth_dst in arb_mac(),
        eth_type in arb_ethertype(),
        vlan in prop_oneof![Just(VlanId::NONE), (0u16..4096).prop_map(VlanId)],
        vlan_pcp in 0u8..8,
        has_ip in any::<bool>(),
        ip_src in arb_ipv4(),
        ip_dst in arb_ipv4(),
        ip_proto in proptest::option::of(arb_ipproto()),
        ip_tos in any::<u8>(),
        tp_src in proptest::option::of(any::<u16>()),
        tp_dst in proptest::option::of(any::<u16>()),
        payload_len in 0u32..10_000,
    ) -> Packet {
        Packet {
            eth_src, eth_dst, eth_type, vlan, vlan_pcp,
            ip_src: has_ip.then_some(ip_src),
            ip_dst: has_ip.then_some(ip_dst),
            ip_proto, ip_tos, tp_src, tp_dst, payload_len,
        }
    }
}

prop_compose! {
    fn arb_match()(
        in_port in proptest::option::of(arb_portno()),
        eth_src in proptest::option::of(arb_mac()),
        eth_dst in proptest::option::of(arb_mac()),
        vlan in proptest::option::of((0u16..4096).prop_map(VlanId)),
        vlan_pcp in proptest::option::of(0u8..8),
        eth_type in proptest::option::of(arb_ethertype()),
        ip_tos in proptest::option::of(any::<u8>()),
        ip_proto in proptest::option::of(arb_ipproto()),
        ip_src in proptest::option::of((arb_ipv4(), 1u8..=32)),
        ip_dst in proptest::option::of((arb_ipv4(), 1u8..=32)),
        tp_src in proptest::option::of(any::<u16>()),
        tp_dst in proptest::option::of(any::<u16>()),
    ) -> Match {
        // Normalize prefixes: the wire format stores the network address
        // masked, so generate already-masked networks.
        let norm = |p: Option<(Ipv4Addr, u8)>| p.map(|(a, l)| {
            (Ipv4Addr(a.0 & legosdn_openflow::types::prefix_mask(l)), l)
        });
        Match {
            in_port, eth_src, eth_dst, vlan, vlan_pcp, eth_type, ip_tos, ip_proto,
            ip_src: norm(ip_src), ip_dst: norm(ip_dst), tp_src, tp_dst,
        }
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        arb_portno().prop_map(Action::Output),
        (0u16..4096).prop_map(|v| Action::SetVlanId(VlanId(v))),
        (0u8..8).prop_map(Action::SetVlanPcp),
        Just(Action::StripVlan),
        arb_mac().prop_map(Action::SetEthSrc),
        arb_mac().prop_map(Action::SetEthDst),
        arb_ipv4().prop_map(Action::SetIpSrc),
        arb_ipv4().prop_map(Action::SetIpDst),
        any::<u8>().prop_map(Action::SetIpTos),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
    ]
}

fn arb_flowmod_command() -> impl Strategy<Value = FlowModCommand> {
    prop_oneof![
        Just(FlowModCommand::Add),
        Just(FlowModCommand::Modify),
        Just(FlowModCommand::ModifyStrict),
        Just(FlowModCommand::Delete),
        Just(FlowModCommand::DeleteStrict),
    ]
}

prop_compose! {
    fn arb_flowmod()(
        command in arb_flowmod_command(),
        mat in arb_match(),
        cookie in any::<u64>(),
        priority in any::<u16>(),
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        out_port in arb_portno(),
        send_flow_removed in any::<bool>(),
        check_overlap in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 0..8),
    ) -> FlowMod {
        FlowMod {
            command, mat, cookie, priority, idle_timeout, hard_timeout,
            buffer_id: BufferId::NONE, out_port, send_flow_removed,
            check_overlap, actions,
        }
    }
}

prop_compose! {
    fn arb_snapshot()(
        mat in arb_match(),
        priority in any::<u16>(),
        cookie in any::<u64>(),
        idle_timeout in any::<u16>(),
        hard_timeout in any::<u16>(),
        remaining_hard in proptest::option::of(0u32..86_400),
        duration_sec in 0u32..86_400,
        packet_count in any::<u64>(),
        byte_count in any::<u64>(),
        send_flow_removed in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 0..4),
    ) -> FlowEntrySnapshot {
        FlowEntrySnapshot {
            mat, priority, cookie, idle_timeout, hard_timeout, remaining_hard,
            duration_sec, packet_count, byte_count, send_flow_removed, actions,
        }
    }
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Hello),
        Just(Message::FeaturesRequest),
        Just(Message::BarrierRequest),
        Just(Message::BarrierReply),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoReply),
        arb_flowmod().prop_map(Message::FlowMod),
        (proptest::option::of(arb_packet()), arb_portno(),
         proptest::collection::vec(arb_action(), 0..4))
            .prop_map(|(packet, in_port, actions)| Message::PacketOut(PacketOut {
                buffer_id: BufferId::NONE, in_port, actions, packet,
            })),
        (arb_packet(), arb_portno(), any::<bool>()).prop_map(|(packet, in_port, action)| {
            Message::PacketIn(PacketIn {
                buffer_id: BufferId::NONE,
                in_port,
                reason: if action { PacketInReason::Action } else { PacketInReason::NoMatch },
                packet,
            })
        }),
        (arb_match(), any::<u64>(), any::<u16>(), 0u32..100_000, any::<u16>(), any::<u64>(), any::<u64>())
            .prop_map(|(mat, cookie, priority, duration_sec, idle_timeout, pc, bc)| {
                Message::FlowRemoved(FlowRemoved {
                    mat, cookie, priority,
                    reason: FlowRemovedReason::IdleTimeout,
                    duration_sec, idle_timeout,
                    packet_count: pc, byte_count: bc,
                })
            }),
        (1u16..0xff00, arb_mac(), any::<bool>()).prop_map(|(p, hw_addr, down)| {
            Message::PortMod(PortMod { port_no: PortNo::Phys(p), hw_addr, down })
        }),
        proptest::collection::vec(arb_snapshot(), 0..5)
            .prop_map(|flows| Message::StatsReply(StatsReply::Flow(flows))),
        (any::<u64>(), 0u32..1000, any::<u8>()).prop_map(|(dpid, n_buffers, n_tables)| {
            Message::FeaturesReply(SwitchFeatures {
                datapath_id: DatapathId(dpid),
                n_buffers,
                n_tables,
                ports: vec![],
            })
        }),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(|data| {
            Message::Error(ErrorMsg {
                err_type: ErrorType::BadRequest,
                code: ErrorCode::Unsupported,
                data,
            })
        }),
    ]
}

// ---------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode == identity for every message and xid.
    #[test]
    fn codec_roundtrip(msg in arb_message(), xid in any::<u32>()) {
        let bytes = wire::encode(&msg, Xid(xid));
        let (decoded, dxid) = wire::decode(&bytes).expect("decode");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(dxid, Xid(xid));
    }

    /// The header length field always equals the frame length.
    #[test]
    fn frame_len_matches(msg in arb_message()) {
        let bytes = wire::encode(&msg, Xid(0));
        prop_assert_eq!(wire::frame_len(&bytes).unwrap(), bytes.len());
    }

    /// No prefix of a valid frame decodes successfully.
    #[test]
    fn truncated_never_decodes(msg in arb_message(), frac in 0.0f64..1.0) {
        let bytes = wire::encode(&msg, Xid(1));
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(wire::decode(&bytes[..cut]).is_err());
    }

    /// Exact matches built from a packet always match that packet.
    #[test]
    fn from_packet_matches_self(pkt in arb_packet(), port in 1u16..100) {
        let m = Match::from_packet(&pkt, PortNo::Phys(port));
        prop_assert!(m.matches(&pkt, PortNo::Phys(port)));
    }

    /// Subsumption is reflexive and Match::any() is a top element.
    #[test]
    fn subsumption_laws(m in arb_match()) {
        prop_assert!(m.subsumes(&m));
        prop_assert!(Match::any().subsumes(&m));
        if m.specificity() > 0 {
            prop_assert!(!m.subsumes(&Match::any()));
        }
    }

    /// If `a` subsumes `b` and a packet matches `b`, it matches `a`.
    /// (Tested through fully-concrete `b`s built from packets.)
    #[test]
    fn subsumption_implies_matching(pkt in arb_packet(), wide in arb_match(), port in 1u16..50) {
        let narrow = Match::from_packet(&pkt, PortNo::Phys(port));
        if wide.subsumes(&narrow) {
            prop_assert!(wide.matches(&pkt, PortNo::Phys(port)),
                "{wide:?} subsumes exact match of packet but does not match packet");
        }
    }

    /// restore_flow rebuilds an Add carrying the snapshot's identity.
    #[test]
    fn restore_flow_preserves_identity(s in arb_snapshot()) {
        let fm = restore_flow(&s);
        prop_assert_eq!(fm.command, FlowModCommand::Add);
        prop_assert_eq!(fm.mat, s.mat);
        prop_assert_eq!(fm.priority, s.priority);
        prop_assert_eq!(fm.cookie, s.cookie);
        prop_assert_eq!(fm.actions, s.actions);
    }

    /// The inverse of a fresh Add is exactly one strict delete of the same
    /// match+priority.
    #[test]
    fn inverse_add_is_delete(fm in arb_flowmod()) {
        let mut fm = fm;
        fm.command = FlowModCommand::Add;
        let inv = inverse_of(&Message::FlowMod(fm.clone()), &PreState::DisplacedFlows(vec![]));
        let msgs = inv.into_messages();
        prop_assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::FlowMod(d) => {
                prop_assert_eq!(d.command, FlowModCommand::DeleteStrict);
                prop_assert_eq!(&d.mat, &fm.mat);
                prop_assert_eq!(d.priority, fm.priority);
            }
            other => prop_assert!(false, "expected flow-mod, got {other:?}"),
        }
    }

    /// The inverse of a delete restores every deleted entry.
    #[test]
    fn inverse_delete_restores_all(snaps in proptest::collection::vec(arb_snapshot(), 0..6)) {
        let fm = FlowMod::delete(Match::any());
        let inv = inverse_of(&Message::FlowMod(fm), &PreState::DeletedFlows(snaps.clone()));
        let msgs = inv.into_messages();
        prop_assert_eq!(msgs.len(), snaps.len());
    }
}
