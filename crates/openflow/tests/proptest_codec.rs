//! Property-based tests: wire-codec roundtrips, match algebra, and
//! inversion laws over randomly generated protocol values.

use legosdn_openflow::inverse::{inverse_of, restore_flow, PreState};
use legosdn_openflow::messages::{ErrorMsg, MessageKind, PortMod, SwitchFeatures};
use legosdn_openflow::prelude::*;
use legosdn_openflow::wire;
use legosdn_testkit::{forall, Rng};

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

fn arb_u8(rng: &mut Rng) -> u8 {
    rng.next_u64() as u8
}

fn arb_u16(rng: &mut Rng) -> u16 {
    rng.next_u64() as u16
}

fn arb_mac(rng: &mut Rng) -> MacAddr {
    MacAddr::new(std::array::from_fn(|_| arb_u8(rng)))
}

fn arb_ipv4(rng: &mut Rng) -> Ipv4Addr {
    Ipv4Addr(rng.next_u64() as u32)
}

fn arb_portno(rng: &mut Rng) -> PortNo {
    match rng.gen_range(0u32..7) {
        0 => PortNo::Phys(rng.gen_range(1u16..0xff00)),
        1 => PortNo::InPort,
        2 => PortNo::Flood,
        3 => PortNo::All,
        4 => PortNo::Controller,
        5 => PortNo::Local,
        _ => PortNo::None,
    }
}

fn arb_ethertype(rng: &mut Rng) -> EtherType {
    match rng.gen_range(0u32..4) {
        0 => EtherType::Ipv4,
        1 => EtherType::Arp,
        2 => EtherType::Lldp,
        _ => EtherType::from_wire(arb_u16(rng)),
    }
}

fn arb_ipproto(rng: &mut Rng) -> IpProto {
    match rng.gen_range(0u32..4) {
        0 => IpProto::Icmp,
        1 => IpProto::Tcp,
        2 => IpProto::Udp,
        _ => IpProto::from_wire(arb_u8(rng)),
    }
}

fn arb_packet(rng: &mut Rng) -> Packet {
    let has_ip = rng.gen_bool(0.5);
    let ip_src = arb_ipv4(rng);
    let ip_dst = arb_ipv4(rng);
    Packet {
        eth_src: arb_mac(rng),
        eth_dst: arb_mac(rng),
        eth_type: arb_ethertype(rng),
        vlan: if rng.gen_bool(0.5) {
            VlanId::NONE
        } else {
            VlanId(rng.gen_range(0u16..4096))
        },
        vlan_pcp: rng.gen_range(0u8..8),
        ip_src: has_ip.then_some(ip_src),
        ip_dst: has_ip.then_some(ip_dst),
        ip_proto: rng.gen_option(arb_ipproto),
        ip_tos: arb_u8(rng),
        tp_src: rng.gen_option(arb_u16),
        tp_dst: rng.gen_option(arb_u16),
        payload_len: rng.gen_range(0u32..10_000),
    }
}

fn arb_match(rng: &mut Rng) -> Match {
    // Normalize prefixes: the wire format stores the network address
    // masked, so generate already-masked networks.
    let prefix = |rng: &mut Rng| {
        let (a, l) = (arb_ipv4(rng), rng.gen_range_inclusive(1u8..=32));
        (Ipv4Addr(a.0 & legosdn_openflow::types::prefix_mask(l)), l)
    };
    Match {
        in_port: rng.gen_option(arb_portno),
        eth_src: rng.gen_option(arb_mac),
        eth_dst: rng.gen_option(arb_mac),
        vlan: rng.gen_option(|r| VlanId(r.gen_range(0u16..4096))),
        vlan_pcp: rng.gen_option(|r| r.gen_range(0u8..8)),
        eth_type: rng.gen_option(arb_ethertype),
        ip_tos: rng.gen_option(arb_u8),
        ip_proto: rng.gen_option(arb_ipproto),
        ip_src: if rng.gen_bool(0.5) {
            Some(prefix(rng))
        } else {
            None
        },
        ip_dst: if rng.gen_bool(0.5) {
            Some(prefix(rng))
        } else {
            None
        },
        tp_src: rng.gen_option(arb_u16),
        tp_dst: rng.gen_option(arb_u16),
    }
}

fn arb_action(rng: &mut Rng) -> Action {
    match rng.gen_range(0u32..11) {
        0 => Action::Output(arb_portno(rng)),
        1 => Action::SetVlanId(VlanId(rng.gen_range(0u16..4096))),
        2 => Action::SetVlanPcp(rng.gen_range(0u8..8)),
        3 => Action::StripVlan,
        4 => Action::SetEthSrc(arb_mac(rng)),
        5 => Action::SetEthDst(arb_mac(rng)),
        6 => Action::SetIpSrc(arb_ipv4(rng)),
        7 => Action::SetIpDst(arb_ipv4(rng)),
        8 => Action::SetIpTos(arb_u8(rng)),
        9 => Action::SetTpSrc(arb_u16(rng)),
        _ => Action::SetTpDst(arb_u16(rng)),
    }
}

fn arb_flowmod_command(rng: &mut Rng) -> FlowModCommand {
    *rng.pick(&[
        FlowModCommand::Add,
        FlowModCommand::Modify,
        FlowModCommand::ModifyStrict,
        FlowModCommand::Delete,
        FlowModCommand::DeleteStrict,
    ])
}

fn arb_flowmod(rng: &mut Rng) -> FlowMod {
    FlowMod {
        command: arb_flowmod_command(rng),
        mat: arb_match(rng),
        cookie: rng.next_u64(),
        priority: arb_u16(rng),
        idle_timeout: arb_u16(rng),
        hard_timeout: arb_u16(rng),
        buffer_id: BufferId::NONE,
        out_port: arb_portno(rng),
        send_flow_removed: rng.gen_bool(0.5),
        check_overlap: rng.gen_bool(0.5),
        actions: rng.gen_vec(0..8, arb_action),
    }
}

fn arb_snapshot(rng: &mut Rng) -> FlowEntrySnapshot {
    FlowEntrySnapshot {
        mat: arb_match(rng),
        priority: arb_u16(rng),
        cookie: rng.next_u64(),
        idle_timeout: arb_u16(rng),
        hard_timeout: arb_u16(rng),
        remaining_hard: rng.gen_option(|r| r.gen_range(0u32..86_400)),
        duration_sec: rng.gen_range(0u32..86_400),
        packet_count: rng.next_u64(),
        byte_count: rng.next_u64(),
        send_flow_removed: rng.gen_bool(0.5),
        actions: rng.gen_vec(0..4, arb_action),
    }
}

fn arb_message(rng: &mut Rng) -> Message {
    match rng.gen_range(0u32..15) {
        0 => Message::Hello,
        1 => Message::FeaturesRequest,
        2 => Message::BarrierRequest,
        3 => Message::BarrierReply,
        4 => Message::EchoRequest(rng.gen_vec(0..64, arb_u8)),
        5 => Message::EchoReply(rng.gen_vec(0..64, arb_u8)),
        6 => Message::FlowMod(arb_flowmod(rng)),
        7 => Message::PacketOut(PacketOut {
            buffer_id: BufferId::NONE,
            in_port: arb_portno(rng),
            actions: rng.gen_vec(0..4, arb_action),
            packet: rng.gen_option(arb_packet),
        }),
        8 => Message::PacketIn(PacketIn {
            buffer_id: BufferId::NONE,
            in_port: arb_portno(rng),
            reason: if rng.gen_bool(0.5) {
                PacketInReason::Action
            } else {
                PacketInReason::NoMatch
            },
            packet: arb_packet(rng),
        }),
        9 => Message::FlowRemoved(FlowRemoved {
            mat: arb_match(rng),
            cookie: rng.next_u64(),
            priority: arb_u16(rng),
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: rng.gen_range(0u32..100_000),
            idle_timeout: arb_u16(rng),
            packet_count: rng.next_u64(),
            byte_count: rng.next_u64(),
        }),
        10 => Message::PortMod(PortMod {
            port_no: PortNo::Phys(rng.gen_range(1u16..0xff00)),
            hw_addr: arb_mac(rng),
            down: rng.gen_bool(0.5),
        }),
        11 => Message::StatsReply(StatsReply::Flow(rng.gen_vec(0..5, arb_snapshot))),
        12 => Message::FeaturesReply(SwitchFeatures {
            datapath_id: DatapathId(rng.next_u64()),
            n_buffers: rng.gen_range(0u32..1000),
            n_tables: arb_u8(rng),
            ports: vec![],
        }),
        13 => Message::FlowModBatch(rng.gen_vec(0..6, arb_flowmod)),
        _ => Message::Error(ErrorMsg {
            err_type: ErrorType::BadRequest,
            code: ErrorCode::Unsupported,
            data: rng.gen_vec(0..32, arb_u8),
        }),
    }
}

// ---------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------

/// encode ∘ decode == identity for every message and xid.
#[test]
fn codec_roundtrip() {
    forall(512, |rng| {
        let msg = arb_message(rng);
        let xid = rng.next_u64() as u32;
        let bytes = wire::encode(&msg, Xid(xid));
        let (decoded, dxid) = wire::decode(&bytes).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(dxid, Xid(xid));
    });
}

/// The header length field always equals the frame length.
#[test]
fn frame_len_matches() {
    forall(512, |rng| {
        let msg = arb_message(rng);
        let bytes = wire::encode(&msg, Xid(0));
        assert_eq!(wire::frame_len(&bytes).unwrap(), bytes.len());
    });
}

/// No prefix of a valid frame decodes successfully.
#[test]
fn truncated_never_decodes() {
    forall(512, |rng| {
        let msg = arb_message(rng);
        let bytes = wire::encode(&msg, Xid(1));
        let cut = rng.gen_range(0..bytes.len());
        assert!(wire::decode(&bytes[..cut]).is_err());
    });
}

/// Batched flow-mods roundtrip exactly, classify as flow-mods, and are
/// state-altering regardless of batch size.
#[test]
fn flow_mod_batch_roundtrip() {
    forall(256, |rng| {
        let msg = Message::FlowModBatch(rng.gen_vec(0..8, arb_flowmod));
        let bytes = wire::encode(&msg, Xid(7));
        let (decoded, _) = wire::decode(&bytes).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(decoded.kind(), MessageKind::FlowMod);
        assert!(decoded.alters_network_state());
    });
}

/// Exact matches built from a packet always match that packet.
#[test]
fn from_packet_matches_self() {
    forall(512, |rng| {
        let pkt = arb_packet(rng);
        let port = rng.gen_range(1u16..100);
        let m = Match::from_packet(&pkt, PortNo::Phys(port));
        assert!(m.matches(&pkt, PortNo::Phys(port)));
    });
}

/// Subsumption is reflexive and Match::any() is a top element.
#[test]
fn subsumption_laws() {
    forall(512, |rng| {
        let m = arb_match(rng);
        assert!(m.subsumes(&m));
        assert!(Match::any().subsumes(&m));
        if m.specificity() > 0 {
            assert!(!m.subsumes(&Match::any()));
        }
    });
}

/// If `a` subsumes `b` and a packet matches `b`, it matches `a`.
/// (Tested through fully-concrete `b`s built from packets.)
#[test]
fn subsumption_implies_matching() {
    forall(512, |rng| {
        let pkt = arb_packet(rng);
        let wide = arb_match(rng);
        let port = rng.gen_range(1u16..50);
        let narrow = Match::from_packet(&pkt, PortNo::Phys(port));
        if wide.subsumes(&narrow) {
            assert!(
                wide.matches(&pkt, PortNo::Phys(port)),
                "{wide:?} subsumes exact match of packet but does not match packet"
            );
        }
    });
}

/// restore_flow rebuilds an Add carrying the snapshot's identity.
#[test]
fn restore_flow_preserves_identity() {
    forall(512, |rng| {
        let s = arb_snapshot(rng);
        let fm = restore_flow(&s);
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.mat, s.mat);
        assert_eq!(fm.priority, s.priority);
        assert_eq!(fm.cookie, s.cookie);
        assert_eq!(fm.actions, s.actions);
    });
}

/// The inverse of a fresh Add is exactly one strict delete of the same
/// match+priority.
#[test]
fn inverse_add_is_delete() {
    forall(512, |rng| {
        let mut fm = arb_flowmod(rng);
        fm.command = FlowModCommand::Add;
        let inv = inverse_of(
            &Message::FlowMod(fm.clone()),
            &PreState::DisplacedFlows(vec![]),
        );
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::FlowMod(d) => {
                assert_eq!(d.command, FlowModCommand::DeleteStrict);
                assert_eq!(&d.mat, &fm.mat);
                assert_eq!(d.priority, fm.priority);
            }
            other => panic!("expected flow-mod, got {other:?}"),
        }
    });
}

/// The inverse of a delete restores every deleted entry.
#[test]
fn inverse_delete_restores_all() {
    forall(512, |rng| {
        let snaps = rng.gen_vec(0..6, arb_snapshot);
        let fm = FlowMod::delete(Match::any());
        let inv = inverse_of(
            &Message::FlowMod(fm),
            &PreState::DeletedFlows(snaps.clone()),
        );
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), snaps.len());
    });
}
