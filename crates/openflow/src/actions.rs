//! OpenFlow 1.0 actions (`ofp_action_*`).

use crate::packet::Packet;
use crate::types::{Ipv4Addr, MacAddr, PortNo, VlanId};
use legosdn_codec::Codec;

/// An OpenFlow 1.0 action.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub enum Action {
    /// Forward out a port (physical or pseudo).
    Output(PortNo),
    /// Set (or add) the 802.1Q VLAN id.
    SetVlanId(VlanId),
    /// Set the 802.1Q priority.
    SetVlanPcp(u8),
    /// Strip the VLAN tag.
    StripVlan,
    /// Rewrite the Ethernet source address.
    SetEthSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetEthDst(MacAddr),
    /// Rewrite the IPv4 source address.
    SetIpSrc(Ipv4Addr),
    /// Rewrite the IPv4 destination address.
    SetIpDst(Ipv4Addr),
    /// Rewrite the IP type-of-service byte.
    SetIpTos(u8),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
}

impl Action {
    /// Apply the action's header rewrite (if any) to `pkt`, returning the
    /// output port if this is an output action.
    ///
    /// The simulator's dataplane folds a packet through an action list with
    /// this, collecting output ports.
    pub fn apply(&self, pkt: &mut Packet) -> Option<PortNo> {
        match *self {
            Action::Output(p) => return Some(p),
            Action::SetVlanId(v) => pkt.vlan = v,
            Action::SetVlanPcp(p) => pkt.vlan_pcp = p,
            Action::StripVlan => {
                pkt.vlan = VlanId::NONE;
                pkt.vlan_pcp = 0;
            }
            Action::SetEthSrc(m) => pkt.eth_src = m,
            Action::SetEthDst(m) => pkt.eth_dst = m,
            Action::SetIpSrc(a) => {
                if pkt.ip_src.is_some() {
                    pkt.ip_src = Some(a);
                }
            }
            Action::SetIpDst(a) => {
                if pkt.ip_dst.is_some() {
                    pkt.ip_dst = Some(a);
                }
            }
            Action::SetIpTos(t) => pkt.ip_tos = t,
            Action::SetTpSrc(p) => {
                if pkt.tp_src.is_some() {
                    pkt.tp_src = Some(p);
                }
            }
            Action::SetTpDst(p) => {
                if pkt.tp_dst.is_some() {
                    pkt.tp_dst = Some(p);
                }
            }
        }
        None
    }

    /// Whether this action emits the packet somewhere.
    #[must_use]
    pub fn is_output(&self) -> bool {
        matches!(self, Action::Output(_))
    }
}

/// Fold a packet through an action list, returning the rewritten packet and
/// the ordered list of output ports. An empty action list means drop.
#[must_use]
pub fn apply_actions(actions: &[Action], pkt: &Packet) -> (Packet, Vec<PortNo>) {
    let mut out = Vec::new();
    let mut p = pkt.clone();
    for a in actions {
        if let Some(port) = a.apply(&mut p) {
            out.push(port);
        }
    }
    (p, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
        )
    }

    #[test]
    fn empty_action_list_drops() {
        let (_, outs) = apply_actions(&[], &pkt());
        assert!(outs.is_empty());
    }

    #[test]
    fn output_collects_ports_in_order() {
        let acts = vec![
            Action::Output(PortNo::Phys(1)),
            Action::Output(PortNo::Phys(2)),
        ];
        let (_, outs) = apply_actions(&acts, &pkt());
        assert_eq!(outs, vec![PortNo::Phys(1), PortNo::Phys(2)]);
    }

    #[test]
    fn rewrites_before_output_take_effect() {
        let acts = vec![
            Action::SetEthDst(MacAddr::from_index(9)),
            Action::SetTpDst(8080),
            Action::Output(PortNo::Phys(1)),
        ];
        let (p, outs) = apply_actions(&acts, &pkt());
        assert_eq!(p.eth_dst, MacAddr::from_index(9));
        assert_eq!(p.tp_dst, Some(8080));
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn vlan_set_and_strip() {
        let acts = vec![Action::SetVlanId(VlanId(7)), Action::SetVlanPcp(3)];
        let (p, _) = apply_actions(&acts, &pkt());
        assert_eq!(p.vlan, VlanId(7));
        assert_eq!(p.vlan_pcp, 3);
        let (p2, _) = apply_actions(&[Action::StripVlan], &p);
        assert_eq!(p2.vlan, VlanId::NONE);
        assert_eq!(p2.vlan_pcp, 0);
    }

    #[test]
    fn ip_rewrite_skipped_on_non_ip() {
        let l2 = Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2));
        let (p, _) = apply_actions(&[Action::SetIpDst(Ipv4Addr::new(1, 1, 1, 1))], &l2);
        assert_eq!(p.ip_dst, None);
    }

    #[test]
    fn is_output_discriminates() {
        assert!(Action::Output(PortNo::Flood).is_output());
        assert!(!Action::StripVlan.is_output());
    }
}
