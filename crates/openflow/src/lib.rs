//! OpenFlow 1.0 subset: message model, binary wire codec, and message inversion.
//!
//! This crate models the slice of OpenFlow 1.0 that the LegoSDN paper's
//! prototype exercises on FloodLight: the symmetric/handshake messages, the
//! controller-to-switch state-modification messages (`FlowMod`, `PacketOut`,
//! `PortMod`, barriers, statistics requests) and the asynchronous
//! switch-to-controller messages (`PacketIn`, `FlowRemoved`, `PortStatus`,
//! statistics replies, errors).
//!
//! Two properties of the message set are load-bearing for LegoSDN and are
//! first-class here:
//!
//! 1. **Wire codec** ([`wire`]): every message encodes to and decodes from
//!    the OpenFlow 1.0 binary framing (version/type/length/xid header).
//!    AppVisor's proxy⇄stub RPC carries these bytes, so isolation-latency
//!    measurements include real serialization cost (paper §3.1).
//! 2. **Invertibility** ([`inverse`]): for every state-altering control
//!    message `A` there exists a message (or set of messages) `B` that undoes
//!    `A`'s state change, given a snapshot of the state `A` displaced. NetLog
//!    is built on exactly this insight (paper §3.2).
//!
//! # Example
//!
//! ```
//! use legosdn_openflow::prelude::*;
//!
//! let fm = FlowMod::add(Match::exact_eth(MacAddr::new([0, 0, 0, 0, 0, 1]),
//!                                        MacAddr::new([0, 0, 0, 0, 0, 2])))
//!     .priority(100)
//!     .idle_timeout(5)
//!     .action(Action::Output(PortNo::Phys(3)));
//! let msg = Message::FlowMod(fm);
//! let bytes = legosdn_openflow::wire::encode(&msg, Xid(7));
//! let (decoded, xid) = legosdn_openflow::wire::decode(&bytes).unwrap();
//! assert_eq!(msg, decoded);
//! assert_eq!(xid, Xid(7));
//! ```

pub mod actions;
pub mod error;
pub mod inverse;
pub mod matching;
pub mod messages;
pub mod packet;
pub mod types;
pub mod wire;

pub mod prelude {
    //! Convenient glob import of the types used by virtually every consumer.
    pub use crate::actions::{apply_actions, Action};
    pub use crate::error::{CodecError, ErrorCode, ErrorType};
    pub use crate::inverse::{inverse_of, Inverse};
    pub use crate::matching::{ExactKey, Match, WildcardClass};
    pub use crate::messages::{
        ErrorMsg, FlowEntrySnapshot, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason,
        Message, MessageKind, PacketIn, PacketInReason, PacketOut, PortDesc, PortMod, PortStats,
        PortStatus, PortStatusReason, StatsReply, StatsRequest, SwitchFeatures, TableStats,
    };
    pub use crate::packet::{EtherType, IpProto, Packet};
    pub use crate::types::{BufferId, DatapathId, Ipv4Addr, MacAddr, PortNo, VlanId, Xid};
}

pub use prelude::*;
