//! A parsed packet header model.
//!
//! The simulator's dataplane and the flow-table matcher both operate on this
//! structure; `PacketIn.data` carries its serialized form so that isolated
//! apps (which only see bytes over the AppVisor RPC) can re-parse it.

use crate::types::{Ipv4Addr, MacAddr, VlanId};
use legosdn_codec::Codec;

/// EtherType values the match machinery understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum EtherType {
    Ipv4,
    Arp,
    Lldp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// The wire value.
    #[must_use]
    pub fn to_wire(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Lldp => 0x88cc,
            EtherType::Other(v) => v,
        }
    }

    /// From the wire value.
    #[must_use]
    pub fn from_wire(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88cc => EtherType::Lldp,
            v => EtherType::Other(v),
        }
    }
}

/// IP protocol numbers the match machinery understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum IpProto {
    Icmp,
    Tcp,
    Udp,
    Other(u8),
}

impl IpProto {
    /// The wire value.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// From the wire value.
    #[must_use]
    pub fn from_wire(raw: u8) -> Self {
        match raw {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            v => IpProto::Other(v),
        }
    }
}

/// A parsed packet: L2 always present, L3/L4 optional.
///
/// `payload_len` stands in for an actual payload so byte counters behave
/// realistically without shuttling packet bodies around the simulator.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct Packet {
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    pub eth_type: EtherType,
    pub vlan: VlanId,
    pub vlan_pcp: u8,
    pub ip_src: Option<Ipv4Addr>,
    pub ip_dst: Option<Ipv4Addr>,
    pub ip_proto: Option<IpProto>,
    pub ip_tos: u8,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
    /// Simulated payload length in bytes (excluding headers).
    pub payload_len: u32,
}

impl Packet {
    /// A minimal L2-only Ethernet frame.
    #[must_use]
    pub fn ethernet(src: MacAddr, dst: MacAddr) -> Self {
        Packet {
            eth_src: src,
            eth_dst: dst,
            eth_type: EtherType::Other(0x05ff),
            vlan: VlanId::NONE,
            vlan_pcp: 0,
            ip_src: None,
            ip_dst: None,
            ip_proto: None,
            ip_tos: 0,
            tp_src: None,
            tp_dst: None,
            payload_len: 64,
        }
    }

    /// A TCP/IPv4 packet with the given addressing.
    #[must_use]
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet {
            eth_src: src_mac,
            eth_dst: dst_mac,
            eth_type: EtherType::Ipv4,
            vlan: VlanId::NONE,
            vlan_pcp: 0,
            ip_src: Some(src_ip),
            ip_dst: Some(dst_ip),
            ip_proto: Some(IpProto::Tcp),
            ip_tos: 0,
            tp_src: Some(src_port),
            tp_dst: Some(dst_port),
            payload_len: 512,
        }
    }

    /// A UDP/IPv4 packet with the given addressing.
    #[must_use]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        let mut p = Self::tcp(src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port);
        p.ip_proto = Some(IpProto::Udp);
        p.payload_len = 256;
        p
    }

    /// An ICMP echo packet.
    #[must_use]
    pub fn icmp(src_mac: MacAddr, dst_mac: MacAddr, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        Packet {
            eth_src: src_mac,
            eth_dst: dst_mac,
            eth_type: EtherType::Ipv4,
            vlan: VlanId::NONE,
            vlan_pcp: 0,
            ip_src: Some(src_ip),
            ip_dst: Some(dst_ip),
            ip_proto: Some(IpProto::Icmp),
            ip_tos: 0,
            tp_src: None,
            tp_dst: None,
            payload_len: 64,
        }
    }

    /// An ARP request/reply stand-in between two hosts.
    #[must_use]
    pub fn arp(src_mac: MacAddr, dst_mac: MacAddr, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        Packet {
            eth_src: src_mac,
            eth_dst: dst_mac,
            eth_type: EtherType::Arp,
            vlan: VlanId::NONE,
            vlan_pcp: 0,
            ip_src: Some(src_ip),
            ip_dst: Some(dst_ip),
            ip_proto: None,
            ip_tos: 0,
            tp_src: None,
            tp_dst: None,
            payload_len: 28,
        }
    }

    /// An LLDP frame used by link discovery; the "chassis/port" information
    /// is smuggled through `ip_src`/`tp_src` to avoid a separate TLV model.
    #[must_use]
    pub fn lldp(src_mac: MacAddr, origin_dpid_low: u32, origin_port: u16) -> Self {
        Packet {
            eth_src: src_mac,
            eth_dst: MacAddr::new([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]),
            eth_type: EtherType::Lldp,
            vlan: VlanId::NONE,
            vlan_pcp: 0,
            ip_src: Some(Ipv4Addr(origin_dpid_low)),
            ip_dst: None,
            ip_proto: None,
            ip_tos: 0,
            tp_src: Some(origin_port),
            tp_dst: None,
            payload_len: 46,
        }
    }

    /// Total simulated size on the wire, headers included.
    #[must_use]
    pub fn wire_len(&self) -> u32 {
        let mut len = 14 + self.payload_len;
        if self.vlan.is_tagged() {
            len += 4;
        }
        if self.ip_src.is_some() {
            len += 20;
        }
        if self.tp_src.is_some() || self.tp_dst.is_some() {
            len += 8;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_index(1), MacAddr::from_index(2))
    }

    #[test]
    fn ethertype_wire_roundtrip() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Lldp,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_wire(et.to_wire()), et);
        }
    }

    #[test]
    fn ipproto_wire_roundtrip() {
        for pr in [
            IpProto::Icmp,
            IpProto::Tcp,
            IpProto::Udp,
            IpProto::Other(89),
        ] {
            assert_eq!(IpProto::from_wire(pr.to_wire()), pr);
        }
    }

    #[test]
    fn tcp_constructor_sets_l3_l4() {
        let (a, b) = macs();
        let p = Packet::tcp(
            a,
            b,
            Ipv4Addr::from_index(1),
            Ipv4Addr::from_index(2),
            1000,
            80,
        );
        assert_eq!(p.eth_type, EtherType::Ipv4);
        assert_eq!(p.ip_proto, Some(IpProto::Tcp));
        assert_eq!(p.tp_dst, Some(80));
    }

    #[test]
    fn wire_len_accounts_for_headers() {
        let (a, b) = macs();
        let l2 = Packet::ethernet(a, b);
        assert_eq!(l2.wire_len(), 14 + 64);
        let tcp = Packet::tcp(a, b, Ipv4Addr::from_index(1), Ipv4Addr::from_index(2), 1, 2);
        assert_eq!(tcp.wire_len(), 14 + 20 + 8 + 512);
        let mut tagged = l2;
        tagged.vlan = VlanId(5);
        assert_eq!(tagged.wire_len(), 14 + 4 + 64);
    }

    #[test]
    fn lldp_carries_origin() {
        let p = Packet::lldp(MacAddr::from_index(9), 0x42, 7);
        assert_eq!(p.eth_type, EtherType::Lldp);
        assert_eq!(p.ip_src, Some(Ipv4Addr(0x42)));
        assert_eq!(p.tp_src, Some(7));
    }
}
