//! Binary wire codec for the OpenFlow 1.0 subset.
//!
//! Every message frames as the standard OpenFlow header —
//! `version(1) | type(1) | length(2) | xid(4)` — followed by a body laid out
//! per the 1.0 specification where the model permits (the `ofp_match`
//! structure and wildcard bitfield, flow-mods, and the action TLVs are
//! faithful). Structures our model extends (parsed packets instead of raw
//! frames, named ports) use compact deterministic layouts.
//!
//! The codec is what AppVisor's proxy⇄stub RPC and the UDP transport carry,
//! so encode/decode cost is part of the isolation-latency experiments (E2).

use crate::actions::Action;
use crate::error::{CodecError, ErrorCode, ErrorType};
use crate::matching::Match;
use crate::messages::{
    ErrorMsg, FlowEntrySnapshot, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, Message,
    PacketIn, PacketInReason, PacketOut, PortDesc, PortMod, PortStats, PortStatus,
    PortStatusReason, StatsReply, StatsRequest, SwitchFeatures, TableStats,
};
use crate::packet::{EtherType, IpProto, Packet};
use crate::types::{BufferId, DatapathId, Ipv4Addr, MacAddr, PortNo, VlanId, Xid};

/// Big-endian append helpers over `Vec<u8>` — the subset of `bytes`'s
/// `BufMut` this codec needs, implemented locally (offline build, no
/// registry deps).
trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// The OpenFlow version byte this codec speaks.
pub const OFP_VERSION: u8 = 0x01;
/// Size of the fixed OpenFlow header.
pub const HEADER_LEN: usize = 8;

// -------------------------------------------------------------------------
// message type bytes (OpenFlow 1.0 numbering)
// -------------------------------------------------------------------------
const T_HELLO: u8 = 0;
const T_ERROR: u8 = 1;
const T_ECHO_REQUEST: u8 = 2;
const T_ECHO_REPLY: u8 = 3;
const T_FEATURES_REQUEST: u8 = 5;
const T_FEATURES_REPLY: u8 = 6;
const T_PACKET_IN: u8 = 10;
const T_FLOW_REMOVED: u8 = 11;
const T_PORT_STATUS: u8 = 12;
const T_PACKET_OUT: u8 = 13;
const T_FLOW_MOD: u8 = 14;
const T_PORT_MOD: u8 = 15;
const T_STATS_REQUEST: u8 = 16;
const T_STATS_REPLY: u8 = 17;
const T_BARRIER_REQUEST: u8 = 18;
const T_BARRIER_REPLY: u8 = 19;
/// Extension beyond OF 1.0's type space: a transaction's flow-mods in one
/// frame (`u16` count, then back-to-back flow-mod bodies).
const T_FLOW_MOD_BATCH: u8 = 20;

// ofp_flow_wildcards bits
const OFPFW_IN_PORT: u32 = 1 << 0;
const OFPFW_DL_VLAN: u32 = 1 << 1;
const OFPFW_DL_SRC: u32 = 1 << 2;
const OFPFW_DL_DST: u32 = 1 << 3;
const OFPFW_DL_TYPE: u32 = 1 << 4;
const OFPFW_NW_PROTO: u32 = 1 << 5;
const OFPFW_TP_SRC: u32 = 1 << 6;
const OFPFW_TP_DST: u32 = 1 << 7;
const OFPFW_NW_SRC_SHIFT: u32 = 8;
const OFPFW_NW_DST_SHIFT: u32 = 14;
const OFPFW_DL_VLAN_PCP: u32 = 1 << 20;
const OFPFW_NW_TOS: u32 = 1 << 21;

/// Encode `msg` with transaction id `xid` into a fresh byte vector.
#[must_use]
pub fn encode(msg: &Message, xid: Xid) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    // Header placeholder; length patched at the end.
    buf.put_u8(OFP_VERSION);
    buf.put_u8(type_byte(msg));
    buf.put_u16(0);
    buf.put_u32(xid.0);
    encode_body(msg, &mut buf);
    let len = buf.len();
    assert!(
        len <= u16::MAX as usize,
        "message exceeds OpenFlow frame limit"
    );
    buf[2..4].copy_from_slice(&(len as u16).to_be_bytes());
    buf
}

/// Decode one complete message from `bytes`.
///
/// Errors if the buffer is truncated, the version is wrong, the type is
/// unknown, or bytes trail the body.
pub fn decode(bytes: &[u8]) -> Result<(Message, Xid), CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != OFP_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let ty = r.u8()?;
    let len = r.u16()? as usize;
    let xid = Xid(r.u32()?);
    if bytes.len() < len {
        return Err(CodecError::Truncated {
            needed: len,
            available: bytes.len(),
        });
    }
    if bytes.len() > len {
        return Err(CodecError::TrailingBytes(bytes.len() - len));
    }
    let msg = decode_body(ty, &mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok((msg, xid))
}

/// Peek the total frame length from a header prefix (for stream framing).
pub fn frame_len(header: &[u8]) -> Result<usize, CodecError> {
    if header.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            available: header.len(),
        });
    }
    Ok(u16::from_be_bytes([header[2], header[3]]) as usize)
}

fn type_byte(msg: &Message) -> u8 {
    match msg {
        Message::Hello => T_HELLO,
        Message::Error(_) => T_ERROR,
        Message::EchoRequest(_) => T_ECHO_REQUEST,
        Message::EchoReply(_) => T_ECHO_REPLY,
        Message::FeaturesRequest => T_FEATURES_REQUEST,
        Message::FeaturesReply(_) => T_FEATURES_REPLY,
        Message::PacketIn(_) => T_PACKET_IN,
        Message::FlowRemoved(_) => T_FLOW_REMOVED,
        Message::PortStatus(_) => T_PORT_STATUS,
        Message::PacketOut(_) => T_PACKET_OUT,
        Message::FlowMod(_) => T_FLOW_MOD,
        Message::PortMod(_) => T_PORT_MOD,
        Message::StatsRequest(_) => T_STATS_REQUEST,
        Message::StatsReply(_) => T_STATS_REPLY,
        Message::BarrierRequest => T_BARRIER_REQUEST,
        Message::BarrierReply => T_BARRIER_REPLY,
        Message::FlowModBatch(_) => T_FLOW_MOD_BATCH,
    }
}

fn encode_body(msg: &Message, buf: &mut Vec<u8>) {
    match msg {
        Message::Hello
        | Message::FeaturesRequest
        | Message::BarrierRequest
        | Message::BarrierReply => {}
        Message::EchoRequest(data) | Message::EchoReply(data) => buf.put_slice(data),
        Message::Error(e) => {
            buf.put_u16(e.err_type.to_wire());
            buf.put_u16(e.code.to_wire());
            buf.put_slice(&e.data);
        }
        Message::FeaturesReply(f) => {
            buf.put_u64(f.datapath_id.0);
            buf.put_u32(f.n_buffers);
            buf.put_u8(f.n_tables);
            buf.put_slice(&[0; 3]);
            buf.put_u16(f.ports.len() as u16);
            for p in &f.ports {
                put_port_desc(buf, p);
            }
        }
        Message::PacketIn(pi) => {
            buf.put_u32(pi.buffer_id.0);
            buf.put_u16(pi.in_port.to_wire());
            buf.put_u8(match pi.reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            buf.put_u8(0);
            put_packet(buf, &pi.packet);
        }
        Message::PacketOut(po) => {
            buf.put_u32(po.buffer_id.0);
            buf.put_u16(po.in_port.to_wire());
            buf.put_u16(po.actions.len() as u16);
            for a in &po.actions {
                put_action(buf, a);
            }
            match &po.packet {
                Some(p) => {
                    buf.put_u8(1);
                    put_packet(buf, p);
                }
                None => buf.put_u8(0),
            }
        }
        Message::FlowMod(fm) => put_flow_mod(buf, fm),
        Message::FlowModBatch(fms) => {
            // The whole-frame u16 length assert in `encode` bounds the batch
            // (each flow-mod body is ≥ 60 bytes), so the count cannot wrap.
            buf.put_u16(fms.len() as u16);
            for fm in fms {
                put_flow_mod(buf, fm);
            }
        }
        Message::FlowRemoved(fr) => {
            put_match(buf, &fr.mat);
            buf.put_u64(fr.cookie);
            buf.put_u16(fr.priority);
            buf.put_u8(match fr.reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            buf.put_u8(0);
            buf.put_u32(fr.duration_sec);
            buf.put_u16(fr.idle_timeout);
            buf.put_u64(fr.packet_count);
            buf.put_u64(fr.byte_count);
        }
        Message::PortStatus(ps) => {
            buf.put_u8(match ps.reason {
                PortStatusReason::Add => 0,
                PortStatusReason::Delete => 1,
                PortStatusReason::Modify => 2,
            });
            buf.put_slice(&[0; 7]);
            put_port_desc(buf, &ps.desc);
        }
        Message::PortMod(pm) => {
            buf.put_u16(pm.port_no.to_wire());
            buf.put_slice(&pm.hw_addr.octets());
            buf.put_u8(u8::from(pm.down));
            buf.put_slice(&[0; 7]);
        }
        Message::StatsRequest(sr) => match sr {
            StatsRequest::Flow { mat, out_port } => {
                buf.put_u16(1);
                put_match(buf, mat);
                buf.put_u16(out_port.to_wire());
            }
            StatsRequest::Aggregate { mat, out_port } => {
                buf.put_u16(2);
                put_match(buf, mat);
                buf.put_u16(out_port.to_wire());
            }
            StatsRequest::Table => buf.put_u16(3),
            StatsRequest::Port { port } => {
                buf.put_u16(4);
                buf.put_u16(port.to_wire());
            }
        },
        Message::StatsReply(sr) => match sr {
            StatsReply::Flow(flows) => {
                buf.put_u16(1);
                buf.put_u16(flows.len() as u16);
                for f in flows {
                    put_flow_snapshot(buf, f);
                }
            }
            StatsReply::Aggregate {
                packet_count,
                byte_count,
                flow_count,
            } => {
                buf.put_u16(2);
                buf.put_u64(*packet_count);
                buf.put_u64(*byte_count);
                buf.put_u32(*flow_count);
            }
            StatsReply::Table(t) => {
                buf.put_u16(3);
                buf.put_u32(t.active_count);
                buf.put_u64(t.lookup_count);
                buf.put_u64(t.matched_count);
                buf.put_u32(t.max_entries);
            }
            StatsReply::Port(ports) => {
                buf.put_u16(4);
                buf.put_u16(ports.len() as u16);
                for p in ports {
                    buf.put_u16(p.port_no);
                    buf.put_u64(p.rx_packets);
                    buf.put_u64(p.tx_packets);
                    buf.put_u64(p.rx_bytes);
                    buf.put_u64(p.tx_bytes);
                    buf.put_u64(p.rx_dropped);
                    buf.put_u64(p.tx_dropped);
                }
            }
        },
    }
}

fn decode_body(ty: u8, r: &mut Reader<'_>) -> Result<Message, CodecError> {
    Ok(match ty {
        T_HELLO => Message::Hello,
        T_FEATURES_REQUEST => Message::FeaturesRequest,
        T_BARRIER_REQUEST => Message::BarrierRequest,
        T_BARRIER_REPLY => Message::BarrierReply,
        T_ECHO_REQUEST => Message::EchoRequest(r.rest().to_vec()),
        T_ECHO_REPLY => Message::EchoReply(r.rest().to_vec()),
        T_ERROR => {
            let ety = ErrorType::from_wire(r.u16()?).ok_or(CodecError::BadField("error type"))?;
            let code = ErrorCode::from_wire(r.u16()?);
            Message::Error(ErrorMsg {
                err_type: ety,
                code,
                data: r.rest().to_vec(),
            })
        }
        T_FEATURES_REPLY => {
            let datapath_id = DatapathId(r.u64()?);
            let n_buffers = r.u32()?;
            let n_tables = r.u8()?;
            r.skip(3)?;
            let n_ports = r.u16()? as usize;
            let mut ports = Vec::with_capacity(n_ports.min(1024));
            for _ in 0..n_ports {
                ports.push(get_port_desc(r)?);
            }
            Message::FeaturesReply(SwitchFeatures {
                datapath_id,
                n_buffers,
                n_tables,
                ports,
            })
        }
        T_PACKET_IN => {
            let buffer_id = BufferId(r.u32()?);
            let in_port = PortNo::from_wire(r.u16()?);
            let reason = match r.u8()? {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                _ => return Err(CodecError::BadField("packet-in reason")),
            };
            r.skip(1)?;
            let packet = get_packet(r)?;
            Message::PacketIn(PacketIn {
                buffer_id,
                in_port,
                reason,
                packet,
            })
        }
        T_PACKET_OUT => {
            let buffer_id = BufferId(r.u32()?);
            let in_port = PortNo::from_wire(r.u16()?);
            let n_actions = r.u16()? as usize;
            let mut actions = Vec::with_capacity(n_actions.min(256));
            for _ in 0..n_actions {
                actions.push(get_action(r)?);
            }
            let packet = match r.u8()? {
                0 => None,
                1 => Some(get_packet(r)?),
                _ => return Err(CodecError::BadField("packet-out data flag")),
            };
            Message::PacketOut(PacketOut {
                buffer_id,
                in_port,
                actions,
                packet,
            })
        }
        T_FLOW_MOD => Message::FlowMod(get_flow_mod(r)?),
        T_FLOW_MOD_BATCH => {
            let n = r.u16()? as usize;
            let mut fms = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fms.push(get_flow_mod(r)?);
            }
            Message::FlowModBatch(fms)
        }
        T_FLOW_REMOVED => {
            let mat = get_match(r)?;
            let cookie = r.u64()?;
            let priority = r.u16()?;
            let reason = match r.u8()? {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                2 => FlowRemovedReason::Delete,
                _ => return Err(CodecError::BadField("flow-removed reason")),
            };
            r.skip(1)?;
            let duration_sec = r.u32()?;
            let idle_timeout = r.u16()?;
            let packet_count = r.u64()?;
            let byte_count = r.u64()?;
            Message::FlowRemoved(FlowRemoved {
                mat,
                cookie,
                priority,
                reason,
                duration_sec,
                idle_timeout,
                packet_count,
                byte_count,
            })
        }
        T_PORT_STATUS => {
            let reason = match r.u8()? {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                2 => PortStatusReason::Modify,
                _ => return Err(CodecError::BadField("port-status reason")),
            };
            r.skip(7)?;
            let desc = get_port_desc(r)?;
            Message::PortStatus(PortStatus { reason, desc })
        }
        T_PORT_MOD => {
            let port_no = PortNo::from_wire(r.u16()?);
            let hw_addr = MacAddr::new(r.mac()?);
            let down = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadField("port-mod down flag")),
            };
            r.skip(7)?;
            Message::PortMod(PortMod {
                port_no,
                hw_addr,
                down,
            })
        }
        T_STATS_REQUEST => {
            let sty = r.u16()?;
            Message::StatsRequest(match sty {
                1 => StatsRequest::Flow {
                    mat: get_match(r)?,
                    out_port: PortNo::from_wire(r.u16()?),
                },
                2 => StatsRequest::Aggregate {
                    mat: get_match(r)?,
                    out_port: PortNo::from_wire(r.u16()?),
                },
                3 => StatsRequest::Table,
                4 => StatsRequest::Port {
                    port: PortNo::from_wire(r.u16()?),
                },
                _ => return Err(CodecError::BadField("stats-request type")),
            })
        }
        T_STATS_REPLY => {
            let sty = r.u16()?;
            Message::StatsReply(match sty {
                1 => {
                    let n = r.u16()? as usize;
                    let mut flows = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        flows.push(get_flow_snapshot(r)?);
                    }
                    StatsReply::Flow(flows)
                }
                2 => StatsReply::Aggregate {
                    packet_count: r.u64()?,
                    byte_count: r.u64()?,
                    flow_count: r.u32()?,
                },
                3 => StatsReply::Table(TableStats {
                    active_count: r.u32()?,
                    lookup_count: r.u64()?,
                    matched_count: r.u64()?,
                    max_entries: r.u32()?,
                }),
                4 => {
                    let n = r.u16()? as usize;
                    let mut ports = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        ports.push(PortStats {
                            port_no: r.u16()?,
                            rx_packets: r.u64()?,
                            tx_packets: r.u64()?,
                            rx_bytes: r.u64()?,
                            tx_bytes: r.u64()?,
                            rx_dropped: r.u64()?,
                            tx_dropped: r.u64()?,
                        });
                    }
                    StatsReply::Port(ports)
                }
                _ => return Err(CodecError::BadField("stats-reply type")),
            })
        }
        other => return Err(CodecError::UnknownType(other)),
    })
}

// -------------------------------------------------------------------------
// structure codecs
// -------------------------------------------------------------------------

/// The `ofp_flow_mod` body, shared by the singleton frame and the batch.
fn put_flow_mod(buf: &mut Vec<u8>, fm: &FlowMod) {
    put_match(buf, &fm.mat);
    buf.put_u64(fm.cookie);
    buf.put_u16(match fm.command {
        FlowModCommand::Add => 0,
        FlowModCommand::Modify => 1,
        FlowModCommand::ModifyStrict => 2,
        FlowModCommand::Delete => 3,
        FlowModCommand::DeleteStrict => 4,
    });
    buf.put_u16(fm.idle_timeout);
    buf.put_u16(fm.hard_timeout);
    buf.put_u16(fm.priority);
    buf.put_u32(fm.buffer_id.0);
    buf.put_u16(fm.out_port.to_wire());
    let mut flags = 0u16;
    if fm.send_flow_removed {
        flags |= 1;
    }
    if fm.check_overlap {
        flags |= 2;
    }
    buf.put_u16(flags);
    buf.put_u16(fm.actions.len() as u16);
    for a in &fm.actions {
        put_action(buf, a);
    }
}

fn get_flow_mod(r: &mut Reader<'_>) -> Result<FlowMod, CodecError> {
    let mat = get_match(r)?;
    let cookie = r.u64()?;
    let command = match r.u16()? {
        0 => FlowModCommand::Add,
        1 => FlowModCommand::Modify,
        2 => FlowModCommand::ModifyStrict,
        3 => FlowModCommand::Delete,
        4 => FlowModCommand::DeleteStrict,
        _ => return Err(CodecError::BadField("flow-mod command")),
    };
    let idle_timeout = r.u16()?;
    let hard_timeout = r.u16()?;
    let priority = r.u16()?;
    let buffer_id = BufferId(r.u32()?);
    let out_port = PortNo::from_wire(r.u16()?);
    let flags = r.u16()?;
    let n_actions = r.u16()? as usize;
    let mut actions = Vec::with_capacity(n_actions.min(256));
    for _ in 0..n_actions {
        actions.push(get_action(r)?);
    }
    Ok(FlowMod {
        command,
        mat,
        cookie,
        priority,
        idle_timeout,
        hard_timeout,
        buffer_id,
        out_port,
        send_flow_removed: flags & 1 != 0,
        check_overlap: flags & 2 != 0,
        actions,
    })
}

fn put_match(buf: &mut Vec<u8>, m: &Match) {
    let mut wc = 0u32;
    if m.in_port.is_none() {
        wc |= OFPFW_IN_PORT;
    }
    if m.vlan.is_none() {
        wc |= OFPFW_DL_VLAN;
    }
    if m.eth_src.is_none() {
        wc |= OFPFW_DL_SRC;
    }
    if m.eth_dst.is_none() {
        wc |= OFPFW_DL_DST;
    }
    if m.eth_type.is_none() {
        wc |= OFPFW_DL_TYPE;
    }
    if m.ip_proto.is_none() {
        wc |= OFPFW_NW_PROTO;
    }
    if m.tp_src.is_none() {
        wc |= OFPFW_TP_SRC;
    }
    if m.tp_dst.is_none() {
        wc |= OFPFW_TP_DST;
    }
    if m.vlan_pcp.is_none() {
        wc |= OFPFW_DL_VLAN_PCP;
    }
    if m.ip_tos.is_none() {
        wc |= OFPFW_NW_TOS;
    }
    let src_wild = match m.ip_src {
        Some((_, len)) => u32::from(32 - len.min(32)),
        None => 32,
    };
    let dst_wild = match m.ip_dst {
        Some((_, len)) => u32::from(32 - len.min(32)),
        None => 32,
    };
    wc |= src_wild << OFPFW_NW_SRC_SHIFT;
    wc |= dst_wild << OFPFW_NW_DST_SHIFT;

    buf.put_u32(wc);
    buf.put_u16(m.in_port.map_or(0, PortNo::to_wire));
    buf.put_slice(&m.eth_src.unwrap_or_default().octets());
    buf.put_slice(&m.eth_dst.unwrap_or_default().octets());
    buf.put_u16(m.vlan.unwrap_or(VlanId(0)).0);
    buf.put_u8(m.vlan_pcp.unwrap_or(0));
    buf.put_u8(0); // pad
    buf.put_u16(m.eth_type.map_or(0, EtherType::to_wire));
    buf.put_u8(m.ip_tos.unwrap_or(0));
    buf.put_u8(m.ip_proto.map_or(0, IpProto::to_wire));
    buf.put_slice(&[0; 2]); // pad
    buf.put_u32(m.ip_src.map_or(0, |(a, _)| a.0));
    buf.put_u32(m.ip_dst.map_or(0, |(a, _)| a.0));
    buf.put_u16(m.tp_src.unwrap_or(0));
    buf.put_u16(m.tp_dst.unwrap_or(0));
}

fn get_match(r: &mut Reader<'_>) -> Result<Match, CodecError> {
    let wc = r.u32()?;
    let in_port = PortNo::from_wire(r.u16()?);
    let eth_src = MacAddr::new(r.mac()?);
    let eth_dst = MacAddr::new(r.mac()?);
    let vlan = VlanId(r.u16()?);
    let vlan_pcp = r.u8()?;
    r.skip(1)?;
    let eth_type = EtherType::from_wire(r.u16()?);
    let ip_tos = r.u8()?;
    let ip_proto = IpProto::from_wire(r.u8()?);
    r.skip(2)?;
    let ip_src = Ipv4Addr(r.u32()?);
    let ip_dst = Ipv4Addr(r.u32()?);
    let tp_src = r.u16()?;
    let tp_dst = r.u16()?;

    let src_wild = ((wc >> OFPFW_NW_SRC_SHIFT) & 0x3f).min(32) as u8;
    let dst_wild = ((wc >> OFPFW_NW_DST_SHIFT) & 0x3f).min(32) as u8;
    Ok(Match {
        in_port: (wc & OFPFW_IN_PORT == 0).then_some(in_port),
        eth_src: (wc & OFPFW_DL_SRC == 0).then_some(eth_src),
        eth_dst: (wc & OFPFW_DL_DST == 0).then_some(eth_dst),
        vlan: (wc & OFPFW_DL_VLAN == 0).then_some(vlan),
        vlan_pcp: (wc & OFPFW_DL_VLAN_PCP == 0).then_some(vlan_pcp),
        eth_type: (wc & OFPFW_DL_TYPE == 0).then_some(eth_type),
        ip_tos: (wc & OFPFW_NW_TOS == 0).then_some(ip_tos),
        ip_proto: (wc & OFPFW_NW_PROTO == 0).then_some(ip_proto),
        ip_src: (src_wild < 32).then_some((ip_src, 32 - src_wild)),
        ip_dst: (dst_wild < 32).then_some((ip_dst, 32 - dst_wild)),
        tp_src: (wc & OFPFW_TP_SRC == 0).then_some(tp_src),
        tp_dst: (wc & OFPFW_TP_DST == 0).then_some(tp_dst),
    })
}

fn put_action(buf: &mut Vec<u8>, a: &Action) {
    match *a {
        Action::Output(p) => {
            buf.put_u16(0);
            buf.put_u16(8);
            buf.put_u16(p.to_wire());
            buf.put_u16(0xffff); // max_len: send whole packet to controller
        }
        Action::SetVlanId(v) => {
            buf.put_u16(1);
            buf.put_u16(8);
            buf.put_u16(v.0);
            buf.put_u16(0);
        }
        Action::SetVlanPcp(p) => {
            buf.put_u16(2);
            buf.put_u16(8);
            buf.put_u8(p);
            buf.put_slice(&[0; 3]);
        }
        Action::StripVlan => {
            buf.put_u16(3);
            buf.put_u16(8);
            buf.put_u32(0);
        }
        Action::SetEthSrc(m) => {
            buf.put_u16(4);
            buf.put_u16(16);
            buf.put_slice(&m.octets());
            buf.put_slice(&[0; 6]);
        }
        Action::SetEthDst(m) => {
            buf.put_u16(5);
            buf.put_u16(16);
            buf.put_slice(&m.octets());
            buf.put_slice(&[0; 6]);
        }
        Action::SetIpSrc(a) => {
            buf.put_u16(6);
            buf.put_u16(8);
            buf.put_u32(a.0);
        }
        Action::SetIpDst(a) => {
            buf.put_u16(7);
            buf.put_u16(8);
            buf.put_u32(a.0);
        }
        Action::SetIpTos(t) => {
            buf.put_u16(8);
            buf.put_u16(8);
            buf.put_u8(t);
            buf.put_slice(&[0; 3]);
        }
        Action::SetTpSrc(p) => {
            buf.put_u16(9);
            buf.put_u16(8);
            buf.put_u16(p);
            buf.put_u16(0);
        }
        Action::SetTpDst(p) => {
            buf.put_u16(10);
            buf.put_u16(8);
            buf.put_u16(p);
            buf.put_u16(0);
        }
    }
}

fn get_action(r: &mut Reader<'_>) -> Result<Action, CodecError> {
    let ty = r.u16()?;
    let len = r.u16()? as usize;
    if len < 8 {
        return Err(CodecError::BadField("action length"));
    }
    Ok(match ty {
        0 => {
            let port = PortNo::from_wire(r.u16()?);
            r.skip(2)?; // max_len
            Action::Output(port)
        }
        1 => {
            let v = VlanId(r.u16()?);
            r.skip(2)?;
            Action::SetVlanId(v)
        }
        2 => {
            let p = r.u8()?;
            r.skip(3)?;
            Action::SetVlanPcp(p)
        }
        3 => {
            r.skip(4)?;
            Action::StripVlan
        }
        4 => {
            let m = MacAddr::new(r.mac()?);
            r.skip(6)?;
            Action::SetEthSrc(m)
        }
        5 => {
            let m = MacAddr::new(r.mac()?);
            r.skip(6)?;
            Action::SetEthDst(m)
        }
        6 => Action::SetIpSrc(Ipv4Addr(r.u32()?)),
        7 => Action::SetIpDst(Ipv4Addr(r.u32()?)),
        8 => {
            let t = r.u8()?;
            r.skip(3)?;
            Action::SetIpTos(t)
        }
        9 => {
            let p = r.u16()?;
            r.skip(2)?;
            Action::SetTpSrc(p)
        }
        10 => {
            let p = r.u16()?;
            r.skip(2)?;
            Action::SetTpDst(p)
        }
        _ => return Err(CodecError::BadField("action type")),
    })
}

const PKT_F_IP_SRC: u8 = 1 << 0;
const PKT_F_IP_DST: u8 = 1 << 1;
const PKT_F_PROTO: u8 = 1 << 2;
const PKT_F_TP_SRC: u8 = 1 << 3;
const PKT_F_TP_DST: u8 = 1 << 4;

fn put_packet(buf: &mut Vec<u8>, p: &Packet) {
    let mut flags = 0u8;
    if p.ip_src.is_some() {
        flags |= PKT_F_IP_SRC;
    }
    if p.ip_dst.is_some() {
        flags |= PKT_F_IP_DST;
    }
    if p.ip_proto.is_some() {
        flags |= PKT_F_PROTO;
    }
    if p.tp_src.is_some() {
        flags |= PKT_F_TP_SRC;
    }
    if p.tp_dst.is_some() {
        flags |= PKT_F_TP_DST;
    }
    buf.put_u8(flags);
    buf.put_slice(&p.eth_src.octets());
    buf.put_slice(&p.eth_dst.octets());
    buf.put_u16(p.eth_type.to_wire());
    buf.put_u16(p.vlan.0);
    buf.put_u8(p.vlan_pcp);
    buf.put_u8(p.ip_tos);
    if let Some(a) = p.ip_src {
        buf.put_u32(a.0);
    }
    if let Some(a) = p.ip_dst {
        buf.put_u32(a.0);
    }
    if let Some(pr) = p.ip_proto {
        buf.put_u8(pr.to_wire());
    }
    if let Some(t) = p.tp_src {
        buf.put_u16(t);
    }
    if let Some(t) = p.tp_dst {
        buf.put_u16(t);
    }
    buf.put_u32(p.payload_len);
}

fn get_packet(r: &mut Reader<'_>) -> Result<Packet, CodecError> {
    let flags = r.u8()?;
    let eth_src = MacAddr::new(r.mac()?);
    let eth_dst = MacAddr::new(r.mac()?);
    let eth_type = EtherType::from_wire(r.u16()?);
    let vlan = VlanId(r.u16()?);
    let vlan_pcp = r.u8()?;
    let ip_tos = r.u8()?;
    let ip_src = if flags & PKT_F_IP_SRC != 0 {
        Some(Ipv4Addr(r.u32()?))
    } else {
        None
    };
    let ip_dst = if flags & PKT_F_IP_DST != 0 {
        Some(Ipv4Addr(r.u32()?))
    } else {
        None
    };
    let ip_proto = if flags & PKT_F_PROTO != 0 {
        Some(IpProto::from_wire(r.u8()?))
    } else {
        None
    };
    let tp_src = if flags & PKT_F_TP_SRC != 0 {
        Some(r.u16()?)
    } else {
        None
    };
    let tp_dst = if flags & PKT_F_TP_DST != 0 {
        Some(r.u16()?)
    } else {
        None
    };
    let payload_len = r.u32()?;
    Ok(Packet {
        eth_src,
        eth_dst,
        eth_type,
        vlan,
        vlan_pcp,
        ip_src,
        ip_dst,
        ip_proto,
        ip_tos,
        tp_src,
        tp_dst,
        payload_len,
    })
}

fn put_port_desc(buf: &mut Vec<u8>, p: &PortDesc) {
    buf.put_u16(p.port_no.to_wire());
    buf.put_slice(&p.hw_addr.octets());
    let name = p.name.as_bytes();
    buf.put_u16(name.len() as u16);
    buf.put_slice(name);
    buf.put_u8(u8::from(p.config_down));
    buf.put_u8(u8::from(p.link_down));
}

fn get_port_desc(r: &mut Reader<'_>) -> Result<PortDesc, CodecError> {
    let port_no = PortNo::from_wire(r.u16()?);
    let hw_addr = MacAddr::new(r.mac()?);
    let name_len = r.u16()? as usize;
    let name_bytes = r.bytes(name_len)?;
    let name =
        String::from_utf8(name_bytes.to_vec()).map_err(|_| CodecError::BadField("port name"))?;
    let config_down = r.u8()? != 0;
    let link_down = r.u8()? != 0;
    Ok(PortDesc {
        port_no,
        hw_addr,
        name,
        config_down,
        link_down,
    })
}

fn put_flow_snapshot(buf: &mut Vec<u8>, f: &FlowEntrySnapshot) {
    put_match(buf, &f.mat);
    buf.put_u16(f.priority);
    buf.put_u64(f.cookie);
    buf.put_u16(f.idle_timeout);
    buf.put_u16(f.hard_timeout);
    buf.put_u32(f.remaining_hard.unwrap_or(u32::MAX));
    buf.put_u32(f.duration_sec);
    buf.put_u64(f.packet_count);
    buf.put_u64(f.byte_count);
    buf.put_u8(u8::from(f.send_flow_removed));
    buf.put_u16(f.actions.len() as u16);
    for a in &f.actions {
        put_action(buf, a);
    }
}

fn get_flow_snapshot(r: &mut Reader<'_>) -> Result<FlowEntrySnapshot, CodecError> {
    let mat = get_match(r)?;
    let priority = r.u16()?;
    let cookie = r.u64()?;
    let idle_timeout = r.u16()?;
    let hard_timeout = r.u16()?;
    let remaining_raw = r.u32()?;
    let duration_sec = r.u32()?;
    let packet_count = r.u64()?;
    let byte_count = r.u64()?;
    let send_flow_removed = r.u8()? != 0;
    let n_actions = r.u16()? as usize;
    let mut actions = Vec::with_capacity(n_actions.min(256));
    for _ in 0..n_actions {
        actions.push(get_action(r)?);
    }
    Ok(FlowEntrySnapshot {
        mat,
        priority,
        cookie,
        idle_timeout,
        hard_timeout,
        remaining_hard: (remaining_raw != u32::MAX).then_some(remaining_raw),
        duration_sec,
        packet_count,
        byte_count,
        send_flow_removed,
        actions,
    })
}

// -------------------------------------------------------------------------
// bounds-checked byte reader
// -------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn skip(&mut self, n: usize) -> Result<(), CodecError> {
        self.bytes(n).map(|_| ())
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn mac(&mut self) -> Result<[u8; 6], CodecError> {
        let b = self.bytes(6)?;
        Ok([b[0], b[1], b[2], b[3], b[4], b[5]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = encode(&msg, Xid(0x1234_5678));
        let (decoded, xid) = decode(&bytes).unwrap_or_else(|e| {
            panic!("decode failed for {:?}: {e}", msg.kind());
        });
        assert_eq!(msg, decoded, "roundtrip mismatch for {:?}", msg.kind());
        assert_eq!(xid, Xid(0x1234_5678));
        assert_eq!(bytes.len(), frame_len(&bytes).unwrap());
    }

    fn sample_packet() -> Packet {
        Packet::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1024,
            80,
        )
    }

    fn sample_match() -> Match {
        Match::from_packet(&sample_packet(), PortNo::Phys(3))
    }

    #[test]
    fn roundtrip_bodyless() {
        roundtrip(Message::Hello);
        roundtrip(Message::FeaturesRequest);
        roundtrip(Message::BarrierRequest);
        roundtrip(Message::BarrierReply);
    }

    #[test]
    fn roundtrip_echo() {
        roundtrip(Message::EchoRequest(vec![]));
        roundtrip(Message::EchoRequest(vec![1, 2, 3]));
        roundtrip(Message::EchoReply(vec![0xff; 100]));
    }

    #[test]
    fn roundtrip_error() {
        roundtrip(Message::Error(ErrorMsg {
            err_type: ErrorType::FlowModFailed,
            code: ErrorCode::TablesFull,
            data: vec![1, 2, 3, 4],
        }));
    }

    #[test]
    fn roundtrip_features_reply() {
        roundtrip(Message::FeaturesReply(SwitchFeatures {
            datapath_id: DatapathId(42),
            n_buffers: 256,
            n_tables: 1,
            ports: vec![
                PortDesc::up(PortNo::Phys(1), MacAddr::from_index(10)),
                PortDesc {
                    port_no: PortNo::Phys(2),
                    hw_addr: MacAddr::from_index(11),
                    name: "weird-name".into(),
                    config_down: true,
                    link_down: true,
                },
            ],
        }));
    }

    #[test]
    fn roundtrip_packet_in_out() {
        roundtrip(Message::PacketIn(PacketIn {
            buffer_id: BufferId(7),
            in_port: PortNo::Phys(2),
            reason: PacketInReason::NoMatch,
            packet: sample_packet(),
        }));
        roundtrip(Message::PacketOut(PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![Action::Output(PortNo::Flood), Action::SetVlanId(VlanId(9))],
            packet: Some(sample_packet()),
        }));
        roundtrip(Message::PacketOut(PacketOut {
            buffer_id: BufferId(3),
            in_port: PortNo::Phys(1),
            actions: vec![],
            packet: None,
        }));
    }

    #[test]
    fn roundtrip_flow_mod_all_commands() {
        for cmd in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            let mut fm = FlowMod::add(sample_match())
                .priority(77)
                .cookie(0xdead_beef)
                .idle_timeout(5)
                .hard_timeout(30)
                .action(Action::SetEthDst(MacAddr::from_index(3)))
                .action(Action::Output(PortNo::Phys(4)))
                .notify_removed();
            fm.command = cmd;
            fm.check_overlap = true;
            roundtrip(Message::FlowMod(fm));
        }
    }

    #[test]
    fn roundtrip_flow_mod_batch() {
        roundtrip(Message::FlowModBatch(vec![]));
        let narrow = FlowMod::add(sample_match())
            .priority(7)
            .action(Action::Output(PortNo::Phys(1)));
        let wide = FlowMod::delete(Match::any());
        roundtrip(Message::FlowModBatch(vec![narrow, wide]));
    }

    #[test]
    fn batch_frames_smaller_than_singleton_frames() {
        // The point of batching: n flow-mods in one frame cost one header
        // and a count instead of n headers.
        let fm = FlowMod::add(sample_match()).action(Action::Output(PortNo::Phys(1)));
        let batched = encode(&Message::FlowModBatch(vec![fm.clone(); 8]), Xid(0)).len();
        let singles = 8 * encode(&Message::FlowMod(fm), Xid(0)).len();
        assert!(batched < singles, "batch {batched} >= singles {singles}");
    }

    #[test]
    fn roundtrip_all_action_types() {
        let fm = FlowMod::add(Match::any()).actions(vec![
            Action::Output(PortNo::Controller),
            Action::SetVlanId(VlanId(100)),
            Action::SetVlanPcp(5),
            Action::StripVlan,
            Action::SetEthSrc(MacAddr::from_index(1)),
            Action::SetEthDst(MacAddr::from_index(2)),
            Action::SetIpSrc(Ipv4Addr::new(1, 2, 3, 4)),
            Action::SetIpDst(Ipv4Addr::new(5, 6, 7, 8)),
            Action::SetIpTos(0x1c),
            Action::SetTpSrc(1234),
            Action::SetTpDst(80),
        ]);
        roundtrip(Message::FlowMod(fm));
    }

    #[test]
    fn roundtrip_flow_removed() {
        roundtrip(Message::FlowRemoved(FlowRemoved {
            mat: sample_match(),
            cookie: 1,
            priority: 2,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 100,
            idle_timeout: 10,
            packet_count: 12345,
            byte_count: 67890,
        }));
    }

    #[test]
    fn roundtrip_port_messages() {
        roundtrip(Message::PortStatus(PortStatus {
            reason: PortStatusReason::Modify,
            desc: PortDesc::up(PortNo::Phys(9), MacAddr::from_index(9)),
        }));
        roundtrip(Message::PortMod(PortMod {
            port_no: PortNo::Phys(3),
            hw_addr: MacAddr::from_index(3),
            down: true,
        }));
    }

    #[test]
    fn roundtrip_stats() {
        roundtrip(Message::StatsRequest(StatsRequest::Flow {
            mat: Match::any(),
            out_port: PortNo::None,
        }));
        roundtrip(Message::StatsRequest(StatsRequest::Aggregate {
            mat: sample_match(),
            out_port: PortNo::Phys(1),
        }));
        roundtrip(Message::StatsRequest(StatsRequest::Table));
        roundtrip(Message::StatsRequest(StatsRequest::Port {
            port: PortNo::None,
        }));

        roundtrip(Message::StatsReply(StatsReply::Flow(vec![
            FlowEntrySnapshot {
                mat: sample_match(),
                priority: 1,
                cookie: 2,
                idle_timeout: 3,
                hard_timeout: 4,
                remaining_hard: Some(2),
                duration_sec: 2,
                packet_count: 10,
                byte_count: 640,
                send_flow_removed: true,
                actions: vec![Action::Output(PortNo::Phys(1))],
            },
        ])));
        roundtrip(Message::StatsReply(StatsReply::Aggregate {
            packet_count: 1,
            byte_count: 2,
            flow_count: 3,
        }));
        roundtrip(Message::StatsReply(StatsReply::Table(TableStats {
            active_count: 10,
            lookup_count: 100,
            matched_count: 90,
            max_entries: 1024,
        })));
        roundtrip(Message::StatsReply(StatsReply::Port(vec![PortStats {
            port_no: 1,
            rx_packets: 1,
            tx_packets: 2,
            rx_bytes: 3,
            tx_bytes: 4,
            rx_dropped: 5,
            tx_dropped: 6,
        }])));
    }

    #[test]
    fn match_wildcards_roundtrip_partial() {
        // A match with only some fields set must decode identically.
        let m = Match {
            eth_dst: Some(MacAddr::from_index(5)),
            ip_dst: Some((Ipv4Addr::new(10, 1, 0, 0), 16)),
            tp_dst: Some(443),
            ..Match::default()
        };
        roundtrip(Message::FlowMod(FlowMod::add(m)));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = encode(&Message::Hello, Xid(1));
        bytes[0] = 0x04;
        assert_eq!(decode(&bytes), Err(CodecError::BadVersion(0x04)));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut bytes = encode(&Message::Hello, Xid(1));
        bytes[1] = 200;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownType(200)));
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let bytes = encode(
            &Message::FlowMod(FlowMod::add(sample_match()).action(Action::Output(PortNo::Phys(1)))),
            Xid(1),
        );
        for cut in 0..bytes.len() {
            let res = decode(&bytes[..cut]);
            assert!(
                res.is_err(),
                "decode of {cut}-byte prefix unexpectedly succeeded"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode(&Message::Hello, Xid(1));
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn frame_len_needs_four_bytes() {
        assert!(frame_len(&[1, 2, 3]).is_err());
        let bytes = encode(&Message::BarrierRequest, Xid(0));
        assert_eq!(frame_len(&bytes).unwrap(), HEADER_LEN);
    }

    #[test]
    fn header_layout_is_of10() {
        let bytes = encode(&Message::Hello, Xid(0xaabbccdd));
        assert_eq!(bytes[0], 0x01);
        assert_eq!(bytes[1], T_HELLO);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 8);
        assert_eq!(&bytes[4..8], &[0xaa, 0xbb, 0xcc, 0xdd]);
    }

    #[test]
    fn flow_mod_wire_size_is_realistic() {
        // OF 1.0 flow_mod body is 64 bytes + 8/action; ours should be within
        // the same order of magnitude so latency benches are honest.
        let fm = FlowMod::add(sample_match()).action(Action::Output(PortNo::Phys(1)));
        let bytes = encode(&Message::FlowMod(fm), Xid(0));
        assert!(
            bytes.len() >= 60 && bytes.len() <= 120,
            "unexpected size {}",
            bytes.len()
        );
    }
}
