//! Message inversion — NetLog's key insight (paper §3.2).
//!
//! > "each control message that modifies network state is invertible: for
//! > every state altering control message, A, there exists another control
//! > message, B, that undoes A's state change."
//!
//! Inversion needs the *pre-state* the message displaced (the flow entries a
//! delete removed, the entry an add overwrote, a port's prior admin state).
//! NetLog captures that pre-state at apply time and calls into this module,
//! which is purely functional: pre-state in, undo messages out.
//!
//! Undo is imperfect for counters and elapsed timeouts — the paper's
//! counter-cache handles those; see `legosdn-netlog`.

use crate::messages::{FlowEntrySnapshot, FlowMod, FlowModCommand, Message, PortMod};
use legosdn_codec::Codec;

/// Pre-state captured before applying a state-altering message.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub enum PreState {
    /// For `FlowMod::Add` / `Modify*`: the entries the message displaced or
    /// rewrote (empty if it created fresh state).
    DisplacedFlows(Vec<FlowEntrySnapshot>),
    /// For `FlowMod::Delete*`: the entries the message removed.
    DeletedFlows(Vec<FlowEntrySnapshot>),
    /// For `PortMod`: whether the port was administratively down before.
    PortWasDown(bool),
}

/// The result of inverting a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inverse {
    /// Apply these messages, in order, to undo the state change.
    Messages(Vec<Message>),
    /// The message changed no durable network state (e.g. `PacketOut`):
    /// nothing to undo. Already-emitted packets are unrecoverable, which the
    /// paper accepts ("undoing a state change is imperfect").
    Ephemeral,
}

impl Inverse {
    /// The undo messages, empty for ephemeral.
    #[must_use]
    pub fn into_messages(self) -> Vec<Message> {
        match self {
            Inverse::Messages(v) => v,
            Inverse::Ephemeral => Vec::new(),
        }
    }
}

/// Rebuild the `FlowMod` that reinstalls a snapshotted entry.
///
/// The remaining hard timeout (not the original) is used so the restored
/// entry expires when the original would have — the paper's "adds it with
/// the appropriate time-out information".
#[must_use]
pub fn restore_flow(snapshot: &FlowEntrySnapshot) -> FlowMod {
    let hard = match snapshot.remaining_hard {
        Some(rem) => rem.min(u32::from(u16::MAX)) as u16,
        None => 0,
    };
    let mut fm = FlowMod::add(snapshot.mat.clone())
        .priority(snapshot.priority)
        .cookie(snapshot.cookie)
        .idle_timeout(snapshot.idle_timeout)
        .hard_timeout(hard)
        .actions(snapshot.actions.clone());
    fm.send_flow_removed = snapshot.send_flow_removed;
    fm
}

/// Compute the inverse of `msg` given the pre-state it displaced.
///
/// `pre_state` must correspond to the message (`DisplacedFlows` for
/// add/modify, `DeletedFlows` for delete, `PortWasDown` for port-mod);
/// mismatches fall back to the conservative interpretation of "nothing
/// displaced".
#[must_use]
pub fn inverse_of(msg: &Message, pre_state: &PreState) -> Inverse {
    match msg {
        Message::FlowMod(fm) => inverse_of_flowmod(fm, pre_state),
        Message::PortMod(pm) => {
            let was_down = match pre_state {
                PreState::PortWasDown(d) => *d,
                _ => !pm.down,
            };
            if was_down == pm.down {
                // No state change happened; inverse is a no-op.
                Inverse::Messages(Vec::new())
            } else {
                Inverse::Messages(vec![Message::PortMod(PortMod {
                    port_no: pm.port_no,
                    hw_addr: pm.hw_addr,
                    down: was_down,
                })])
            }
        }
        // Packet-outs, stats, barriers, echoes: no durable network state.
        _ => Inverse::Ephemeral,
    }
}

fn inverse_of_flowmod(fm: &FlowMod, pre_state: &PreState) -> Inverse {
    match fm.command {
        FlowModCommand::Add => {
            let displaced = match pre_state {
                PreState::DisplacedFlows(v) => v.as_slice(),
                _ => &[],
            };
            let mut undo = Vec::new();
            if displaced
                .iter()
                .any(|s| s.mat == fm.mat && s.priority == fm.priority)
            {
                // The add overwrote an identical match+priority entry;
                // restoring it implicitly removes the new one.
            } else {
                undo.push(Message::FlowMod(FlowMod::delete_strict(
                    fm.mat.clone(),
                    fm.priority,
                )));
            }
            for snap in displaced {
                undo.push(Message::FlowMod(restore_flow(snap)));
            }
            Inverse::Messages(undo)
        }
        FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
            let rewritten = match pre_state {
                PreState::DisplacedFlows(v) => v.as_slice(),
                _ => &[],
            };
            // Re-adding each pre-state entry restores its action list
            // (OF 1.0 add replaces an identical match+priority entry).
            // Modify that matched nothing behaves like Add in OF 1.0.
            let mut undo: Vec<Message> = Vec::new();
            if rewritten.is_empty() {
                undo.push(Message::FlowMod(FlowMod::delete_strict(
                    fm.mat.clone(),
                    fm.priority,
                )));
            }
            undo.extend(rewritten.iter().map(|s| Message::FlowMod(restore_flow(s))));
            Inverse::Messages(undo)
        }
        FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
            let deleted = match pre_state {
                PreState::DeletedFlows(v) => v.as_slice(),
                _ => &[],
            };
            Inverse::Messages(
                deleted
                    .iter()
                    .map(|s| Message::FlowMod(restore_flow(s)))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::matching::Match;
    use crate::messages::{PacketOut, StatsRequest};
    use crate::types::{BufferId, Ipv4Addr, MacAddr, PortNo};

    fn snap(priority: u16) -> FlowEntrySnapshot {
        FlowEntrySnapshot {
            mat: Match::eth_dst(MacAddr::from_index(1)),
            priority,
            cookie: 7,
            idle_timeout: 10,
            hard_timeout: 60,
            remaining_hard: Some(42),
            duration_sec: 18,
            packet_count: 100,
            byte_count: 6400,
            send_flow_removed: true,
            actions: vec![Action::Output(PortNo::Phys(2))],
        }
    }

    #[test]
    fn add_with_nothing_displaced_inverts_to_delete_strict() {
        let fm = FlowMod::add(Match::any()).priority(5);
        let inv = inverse_of(
            &Message::FlowMod(fm.clone()),
            &PreState::DisplacedFlows(vec![]),
        );
        match inv {
            Inverse::Messages(msgs) => {
                assert_eq!(msgs.len(), 1);
                match &msgs[0] {
                    Message::FlowMod(d) => {
                        assert_eq!(d.command, FlowModCommand::DeleteStrict);
                        assert_eq!(d.mat, fm.mat);
                        assert_eq!(d.priority, 5);
                    }
                    other => panic!("expected flow-mod, got {other:?}"),
                }
            }
            Inverse::Ephemeral => panic!("flow-mod add is not ephemeral"),
        }
    }

    #[test]
    fn add_overwriting_identical_entry_inverts_to_restore_only() {
        let s = snap(5);
        let fm = FlowMod::add(s.mat.clone())
            .priority(5)
            .action(Action::Output(PortNo::Phys(9)));
        let inv = inverse_of(
            &Message::FlowMod(fm),
            &PreState::DisplacedFlows(vec![s.clone()]),
        );
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::FlowMod(r) => {
                assert_eq!(r.command, FlowModCommand::Add);
                assert_eq!(r.actions, s.actions);
                // remaining hard timeout, not the original, is restored
                assert_eq!(r.hard_timeout, 42);
            }
            other => panic!("expected flow-mod, got {other:?}"),
        }
    }

    #[test]
    fn delete_inverts_to_adds_for_every_deleted_entry() {
        let fm = FlowMod::delete(Match::any());
        let deleted = vec![snap(1), snap(2), snap(3)];
        let inv = inverse_of(
            &Message::FlowMod(fm),
            &PreState::DeletedFlows(deleted.clone()),
        );
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 3);
        for (m, s) in msgs.iter().zip(&deleted) {
            match m {
                Message::FlowMod(r) => {
                    assert_eq!(r.command, FlowModCommand::Add);
                    assert_eq!(r.priority, s.priority);
                    assert!(r.send_flow_removed);
                }
                other => panic!("expected flow-mod, got {other:?}"),
            }
        }
    }

    #[test]
    fn delete_of_nothing_inverts_to_nothing() {
        let fm = FlowMod::delete(Match::any());
        let inv = inverse_of(&Message::FlowMod(fm), &PreState::DeletedFlows(vec![]));
        assert_eq!(inv, Inverse::Messages(vec![]));
    }

    #[test]
    fn modify_restores_prior_actions() {
        let s = snap(5);
        let mut fm = FlowMod::add(s.mat.clone()).priority(5);
        fm.command = FlowModCommand::ModifyStrict;
        let inv = inverse_of(
            &Message::FlowMod(fm),
            &PreState::DisplacedFlows(vec![s.clone()]),
        );
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::FlowMod(r) => assert_eq!(r.actions, s.actions),
            other => panic!("expected flow-mod, got {other:?}"),
        }
    }

    #[test]
    fn modify_matching_nothing_inverts_to_delete() {
        let mut fm = FlowMod::add(Match::any()).priority(3);
        fm.command = FlowModCommand::Modify;
        let inv = inverse_of(&Message::FlowMod(fm), &PreState::DisplacedFlows(vec![]));
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 1);
        assert!(
            matches!(&msgs[0], Message::FlowMod(d) if d.command == FlowModCommand::DeleteStrict)
        );
    }

    #[test]
    fn portmod_inverts_to_opposite_state() {
        let pm = PortMod {
            port_no: PortNo::Phys(1),
            hw_addr: MacAddr::from_index(1),
            down: true,
        };
        let inv = inverse_of(&Message::PortMod(pm.clone()), &PreState::PortWasDown(false));
        let msgs = inv.into_messages();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0], Message::PortMod(p) if !p.down));
    }

    #[test]
    fn portmod_noop_inverts_to_nothing() {
        let pm = PortMod {
            port_no: PortNo::Phys(1),
            hw_addr: MacAddr::from_index(1),
            down: true,
        };
        let inv = inverse_of(&Message::PortMod(pm), &PreState::PortWasDown(true));
        assert_eq!(inv, Inverse::Messages(vec![]));
    }

    #[test]
    fn packet_out_is_ephemeral() {
        let po = Message::PacketOut(PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![Action::Output(PortNo::Flood)],
            packet: None,
        });
        assert_eq!(
            inverse_of(&po, &PreState::DisplacedFlows(vec![])),
            Inverse::Ephemeral
        );
    }

    #[test]
    fn reads_are_ephemeral() {
        let sr = Message::StatsRequest(StatsRequest::Table);
        assert_eq!(
            inverse_of(&sr, &PreState::DeletedFlows(vec![])),
            Inverse::Ephemeral
        );
        assert_eq!(
            inverse_of(&Message::BarrierRequest, &PreState::DeletedFlows(vec![])),
            Inverse::Ephemeral
        );
    }

    #[test]
    fn restore_flow_clamps_large_remaining_timeout() {
        let mut s = snap(1);
        s.remaining_hard = Some(1_000_000);
        let fm = restore_flow(&s);
        assert_eq!(fm.hard_timeout, u16::MAX);
        s.remaining_hard = None;
        assert_eq!(restore_flow(&s).hard_timeout, 0);
        let _ = Ipv4Addr::new(0, 0, 0, 0);
    }
}
