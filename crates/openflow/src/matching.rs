//! The OpenFlow 1.0 match structure (`ofp_match`).
//!
//! Fields are modeled as `Option`s (`None` == wildcarded) with CIDR prefix
//! lengths for the network addresses, exactly the semantics the OF 1.0
//! wildcard bitfield encodes. [`Match::matches`] evaluates a match against a
//! parsed [`Packet`]; [`Match::subsumes`] implements the wildcard-delete
//! semantics of `OFPFC_DELETE` (non-strict).

use crate::packet::{EtherType, IpProto, Packet};
use crate::types::{prefix_mask, Ipv4Addr, MacAddr, PortNo, VlanId};
use legosdn_codec::Codec;

/// A fully-concrete 12-tuple: the canonical fingerprint of an exact match.
///
/// A [`Match`] has an `ExactKey` iff every field is concrete — no wildcards,
/// `/32` network prefixes, and `vlan_pcp` present exactly when the VLAN is
/// tagged (`vlan_pcp` is canonicalized to `0` for untagged traffic, mirroring
/// [`Match::matches`], which ignores PCP on untagged frames). Two matches
/// with the same key are the *same* match, and an exact match hits a packet
/// iff the packet's own key (see [`ExactKey::of_packet`]) is equal — which is
/// what lets a flow table index exact entries in a hash map instead of
/// scanning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ExactKey {
    pub in_port: PortNo,
    pub eth_src: MacAddr,
    pub eth_dst: MacAddr,
    pub vlan: VlanId,
    /// Canonically `0` when `vlan` is untagged.
    pub vlan_pcp: u8,
    pub eth_type: EtherType,
    pub ip_tos: u8,
    pub ip_proto: IpProto,
    pub ip_src: Ipv4Addr,
    pub ip_dst: Ipv4Addr,
    pub tp_src: u16,
    pub tp_dst: u16,
}

impl ExactKey {
    /// The key of a packet arriving on `in_port`, if the packet is concrete
    /// enough to ever hit an exact-match entry (L3 + L4 headers present).
    /// Packets without a key — ARP, ICMP, bare L2 — can only hit wildcard
    /// entries, so an indexed table skips the exact probe for them entirely.
    #[must_use]
    pub fn of_packet(pkt: &Packet, in_port: PortNo) -> Option<ExactKey> {
        Some(ExactKey {
            in_port,
            eth_src: pkt.eth_src,
            eth_dst: pkt.eth_dst,
            vlan: pkt.vlan,
            vlan_pcp: if pkt.vlan.is_tagged() {
                pkt.vlan_pcp
            } else {
                0
            },
            eth_type: pkt.eth_type,
            ip_tos: pkt.ip_tos,
            ip_proto: pkt.ip_proto?,
            ip_src: pkt.ip_src?,
            ip_dst: pkt.ip_dst?,
            tp_src: pkt.tp_src?,
            tp_dst: pkt.tp_dst?,
        })
    }
}

/// Which of the 12 tuple fields a [`Match`] concretizes, as a bitmask.
///
/// The class is a cheap necessary condition for subsumption: `outer` can only
/// subsume `inner` if every field `outer` constrains is also constrained by
/// `inner` (`outer ⊆ inner` as bit sets). Scans that filter by
/// [`Match::subsumes`] use [`WildcardClass::could_subsume`] as a prefilter to
/// skip the per-field comparison for most entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WildcardClass(pub u16);

impl WildcardClass {
    /// Fast necessary condition for `outer.subsumes(inner)`: every concrete
    /// field of `outer` must be concrete in `inner`.
    #[must_use]
    pub fn could_subsume(self, inner: WildcardClass) -> bool {
        self.0 & !inner.0 == 0
    }
}

/// An OpenFlow 1.0 12-tuple match. `None` fields are wildcards.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Codec)]
pub struct Match {
    pub in_port: Option<PortNo>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub vlan: Option<VlanId>,
    pub vlan_pcp: Option<u8>,
    pub eth_type: Option<EtherType>,
    pub ip_tos: Option<u8>,
    pub ip_proto: Option<IpProto>,
    /// Source prefix: `(network, prefix_len)`. `prefix_len == 0` is a full
    /// wildcard and is normalized to `None` by the constructors.
    pub ip_src: Option<(Ipv4Addr, u8)>,
    pub ip_dst: Option<(Ipv4Addr, u8)>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl Match {
    /// The all-wildcard match.
    #[must_use]
    pub fn any() -> Self {
        Match::default()
    }

    /// Match on exact source and destination MAC.
    #[must_use]
    pub fn exact_eth(src: MacAddr, dst: MacAddr) -> Self {
        Match {
            eth_src: Some(src),
            eth_dst: Some(dst),
            ..Match::default()
        }
    }

    /// Match on destination MAC only.
    #[must_use]
    pub fn eth_dst(dst: MacAddr) -> Self {
        Match {
            eth_dst: Some(dst),
            ..Match::default()
        }
    }

    /// Match IPv4 traffic to a destination prefix.
    #[must_use]
    pub fn ip_dst_prefix(net: Ipv4Addr, prefix_len: u8) -> Self {
        Match {
            eth_type: Some(EtherType::Ipv4),
            ip_dst: if prefix_len == 0 {
                None
            } else {
                Some((net, prefix_len))
            },
            ..Match::default()
        }
    }

    /// The exact match OpenFlow reactive forwarding installs for a packet
    /// arriving on `in_port` (every field concretized).
    #[must_use]
    pub fn from_packet(pkt: &Packet, in_port: PortNo) -> Self {
        Match {
            in_port: Some(in_port),
            eth_src: Some(pkt.eth_src),
            eth_dst: Some(pkt.eth_dst),
            vlan: Some(pkt.vlan),
            vlan_pcp: pkt.vlan.is_tagged().then_some(pkt.vlan_pcp),
            eth_type: Some(pkt.eth_type),
            ip_tos: if pkt.ip_src.is_some() {
                Some(pkt.ip_tos)
            } else {
                None
            },
            ip_proto: pkt.ip_proto,
            ip_src: pkt.ip_src.map(|a| (a, 32)),
            ip_dst: pkt.ip_dst.map(|a| (a, 32)),
            tp_src: pkt.tp_src,
            tp_dst: pkt.tp_dst,
        }
    }

    /// Builder-style setter for `in_port`.
    #[must_use]
    pub fn with_in_port(mut self, port: PortNo) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Builder-style setter for `tp_dst` (e.g. a service port).
    #[must_use]
    pub fn with_tp_dst(mut self, port: u16) -> Self {
        self.tp_dst = Some(port);
        self
    }

    /// The canonical exact-match fingerprint, if this match concretizes all
    /// 12 tuple fields (see [`ExactKey`]).
    ///
    /// Requirements beyond plain `is_some()`: the IP prefixes must be exactly
    /// `/32` (a longer stored length is not the same match even though it
    /// masks identically), and `vlan_pcp` must be present iff the matched
    /// VLAN is tagged (PCP on an untagged match can never match a frame; a
    /// tagged match without PCP still spans 8 PCP values). The key is
    /// injective over matches that have one.
    #[must_use]
    pub fn exact_key(&self) -> Option<ExactKey> {
        let vlan = self.vlan?;
        let vlan_pcp = match (vlan.is_tagged(), self.vlan_pcp) {
            (true, Some(p)) => p,
            (false, None) => 0,
            _ => return None,
        };
        let (ip_src, src_len) = self.ip_src?;
        let (ip_dst, dst_len) = self.ip_dst?;
        if src_len != 32 || dst_len != 32 {
            return None;
        }
        Some(ExactKey {
            in_port: self.in_port?,
            eth_src: self.eth_src?,
            eth_dst: self.eth_dst?,
            vlan,
            vlan_pcp,
            eth_type: self.eth_type?,
            ip_tos: self.ip_tos?,
            ip_proto: self.ip_proto?,
            ip_src,
            ip_dst,
            tp_src: self.tp_src?,
            tp_dst: self.tp_dst?,
        })
    }

    /// The set of fields this match concretizes, for subsumption prefilters.
    #[must_use]
    pub fn wildcard_class(&self) -> WildcardClass {
        let mut bits = 0u16;
        bits |= u16::from(self.in_port.is_some());
        bits |= u16::from(self.eth_src.is_some()) << 1;
        bits |= u16::from(self.eth_dst.is_some()) << 2;
        bits |= u16::from(self.vlan.is_some()) << 3;
        bits |= u16::from(self.vlan_pcp.is_some()) << 4;
        bits |= u16::from(self.eth_type.is_some()) << 5;
        bits |= u16::from(self.ip_tos.is_some()) << 6;
        bits |= u16::from(self.ip_proto.is_some()) << 7;
        bits |= u16::from(self.ip_src.is_some()) << 8;
        bits |= u16::from(self.ip_dst.is_some()) << 9;
        bits |= u16::from(self.tp_src.is_some()) << 10;
        bits |= u16::from(self.tp_dst.is_some()) << 11;
        WildcardClass(bits)
    }

    /// Does `pkt`, having arrived on `in_port`, satisfy this match?
    #[must_use]
    pub fn matches(&self, pkt: &Packet, in_port: PortNo) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if m != pkt.eth_src {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != pkt.eth_dst {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if v != pkt.vlan {
                return false;
            }
        }
        if let Some(p) = self.vlan_pcp {
            if !pkt.vlan.is_tagged() || p != pkt.vlan_pcp {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if t != pkt.eth_type {
                return false;
            }
        }
        if let Some(tos) = self.ip_tos {
            if pkt.ip_src.is_none() || tos != pkt.ip_tos {
                return false;
            }
        }
        if let Some(pr) = self.ip_proto {
            if pkt.ip_proto != Some(pr) {
                return false;
            }
        }
        if let Some((net, len)) = self.ip_src {
            match pkt.ip_src {
                Some(a) if a.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some((net, len)) = self.ip_dst {
            match pkt.ip_dst {
                Some(a) if a.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.tp_src {
            if pkt.tp_src != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if pkt.tp_dst != Some(p) {
                return false;
            }
        }
        true
    }

    /// Does this match subsume `other`? I.e. every packet matched by `other`
    /// is also matched by `self`. This is the OF 1.0 non-strict delete /
    /// flow-stats filter relation.
    #[must_use]
    pub fn subsumes(&self, other: &Match) -> bool {
        fn field<T: PartialEq>(outer: &Option<T>, inner: &Option<T>) -> bool {
            match (outer, inner) {
                (None, _) => true,
                (Some(a), Some(b)) => a == b,
                (Some(_), None) => false,
            }
        }
        fn prefix(outer: &Option<(Ipv4Addr, u8)>, inner: &Option<(Ipv4Addr, u8)>) -> bool {
            match (outer, inner) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some((onet, olen)), Some((inet, ilen))) => {
                    olen <= ilen && {
                        let mask = prefix_mask(*olen);
                        onet.0 & mask == inet.0 & mask
                    }
                }
            }
        }
        field(&self.in_port, &other.in_port)
            && field(&self.eth_src, &other.eth_src)
            && field(&self.eth_dst, &other.eth_dst)
            && field(&self.vlan, &other.vlan)
            && field(&self.vlan_pcp, &other.vlan_pcp)
            && field(&self.eth_type, &other.eth_type)
            && field(&self.ip_tos, &other.ip_tos)
            && field(&self.ip_proto, &other.ip_proto)
            && prefix(&self.ip_src, &other.ip_src)
            && prefix(&self.ip_dst, &other.ip_dst)
            && field(&self.tp_src, &other.tp_src)
            && field(&self.tp_dst, &other.tp_dst)
    }

    /// Number of concrete (non-wildcard) fields; a crude specificity measure
    /// used by tests and diagnostics.
    #[must_use]
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += u32::from(self.in_port.is_some());
        n += u32::from(self.eth_src.is_some());
        n += u32::from(self.eth_dst.is_some());
        n += u32::from(self.vlan.is_some());
        n += u32::from(self.vlan_pcp.is_some());
        n += u32::from(self.eth_type.is_some());
        n += u32::from(self.ip_tos.is_some());
        n += u32::from(self.ip_proto.is_some());
        n += u32::from(self.ip_src.is_some());
        n += u32::from(self.ip_dst.is_some());
        n += u32::from(self.tp_src.is_some());
        n += u32::from(self.tp_dst.is_some());
        n
    }

    /// True if every field is wildcarded.
    #[must_use]
    pub fn is_wildcard_all(&self) -> bool {
        self.specificity() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 2),
            4000,
            80,
        )
    }

    #[test]
    fn any_matches_everything() {
        assert!(Match::any().matches(&pkt(), PortNo::Phys(1)));
        assert!(Match::any().is_wildcard_all());
    }

    #[test]
    fn exact_from_packet_matches_only_same_port() {
        let p = pkt();
        let m = Match::from_packet(&p, PortNo::Phys(3));
        assert!(m.matches(&p, PortNo::Phys(3)));
        assert!(!m.matches(&p, PortNo::Phys(4)));
    }

    #[test]
    fn eth_dst_only() {
        let p = pkt();
        let m = Match::eth_dst(p.eth_dst);
        assert!(m.matches(&p, PortNo::Phys(1)));
        let m2 = Match::eth_dst(MacAddr::from_index(99));
        assert!(!m2.matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn ip_prefix_matching() {
        let p = pkt();
        assert!(Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24).matches(&p, PortNo::Phys(1)));
        assert!(!Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 2, 0), 24).matches(&p, PortNo::Phys(1)));
        // prefix_len 0 normalizes to full wildcard
        let m = Match::ip_dst_prefix(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(m.ip_dst.is_none());
    }

    #[test]
    fn l4_fields() {
        let p = pkt();
        let m = Match::any().with_tp_dst(80);
        assert!(m.matches(&p, PortNo::Phys(1)));
        assert!(!Match::any().with_tp_dst(443).matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn vlan_pcp_requires_tag() {
        let mut p = pkt();
        let m = Match {
            vlan_pcp: Some(0),
            ..Match::default()
        };
        assert!(!m.matches(&p, PortNo::Phys(1)));
        p.vlan = VlanId(7);
        assert!(m.matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn non_ip_packet_fails_ip_fields() {
        let l2 = Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2));
        assert!(!Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8).matches(&l2, PortNo::Phys(1)));
        let tos = Match {
            ip_tos: Some(0),
            ..Match::default()
        };
        assert!(!tos.matches(&l2, PortNo::Phys(1)));
    }

    #[test]
    fn subsumption_basics() {
        let wide = Match::eth_dst(MacAddr::from_index(2));
        let narrow = Match::from_packet(&pkt(), PortNo::Phys(1));
        assert!(Match::any().subsumes(&narrow));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(narrow.subsumes(&narrow.clone()));
    }

    #[test]
    fn prefix_subsumption() {
        let wide = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        let narrow = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        let disjoint = Match::ip_dst_prefix(Ipv4Addr::new(11, 0, 0, 0), 8);
        assert!(!disjoint.subsumes(&narrow));
    }

    #[test]
    fn exact_key_exists_iff_fully_concrete() {
        let p = pkt();
        let full = Match::from_packet(&p, PortNo::Phys(1));
        assert!(full.exact_key().is_some());
        // Any wildcarded field kills the key.
        let mut m = full.clone();
        m.tp_dst = None;
        assert!(m.exact_key().is_none());
        assert!(Match::any().exact_key().is_none());
        assert!(Match::eth_dst(p.eth_dst).exact_key().is_none());
        // Non-/32 prefixes are not exact, even when they mask identically.
        let mut m = full.clone();
        m.ip_dst = m.ip_dst.map(|(net, _)| (net, 24));
        assert!(m.exact_key().is_none());
        let mut m = full.clone();
        m.ip_dst = m.ip_dst.map(|(net, _)| (net, 40));
        assert!(m.exact_key().is_none());
    }

    #[test]
    fn exact_key_vlan_pcp_mirrors_tagging() {
        let mut p = pkt();
        // Untagged: pcp must stay wildcarded, and the key canonicalizes to 0.
        let untagged = Match::from_packet(&p, PortNo::Phys(1));
        assert_eq!(untagged.exact_key().unwrap().vlan_pcp, 0);
        let mut bad = untagged.clone();
        bad.vlan_pcp = Some(3);
        assert!(bad.exact_key().is_none(), "pcp on untagged match");
        // Tagged: pcp must be concrete.
        p.vlan = VlanId(7);
        p.vlan_pcp = 5;
        let tagged = Match::from_packet(&p, PortNo::Phys(1));
        assert_eq!(tagged.exact_key().unwrap().vlan_pcp, 5);
        let mut bare = tagged.clone();
        bare.vlan_pcp = None;
        assert!(bare.exact_key().is_none(), "tagged match without pcp");
    }

    #[test]
    fn packet_key_equality_is_exact_match_semantics() {
        // The load-bearing lemma for indexed tables: an exact entry matches
        // a packet iff the packet has a key and the keys are equal.
        let p = pkt();
        let m = Match::from_packet(&p, PortNo::Phys(3));
        let mk = m.exact_key().unwrap();
        assert_eq!(ExactKey::of_packet(&p, PortNo::Phys(3)), Some(mk));
        assert!(m.matches(&p, PortNo::Phys(3)));
        // Different port: keys differ and the match misses.
        assert_ne!(ExactKey::of_packet(&p, PortNo::Phys(4)), Some(mk));
        assert!(!m.matches(&p, PortNo::Phys(4)));
        // A keyless packet never hits an exact entry.
        let arp = Packet::arp(
            p.eth_src,
            p.eth_dst,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 2),
        );
        assert!(ExactKey::of_packet(&arp, PortNo::Phys(3)).is_none());
        assert!(!m.matches(&arp, PortNo::Phys(3)));
    }

    #[test]
    fn wildcard_class_prefilters_subsumption() {
        let p = pkt();
        let wide = Match::eth_dst(p.eth_dst);
        let narrow = Match::from_packet(&p, PortNo::Phys(1));
        assert!(wide.wildcard_class().could_subsume(narrow.wildcard_class()));
        assert!(!narrow.wildcard_class().could_subsume(wide.wildcard_class()));
        assert!(Match::any()
            .wildcard_class()
            .could_subsume(wide.wildcard_class()));
        // The class is only a necessary condition, so it must never be false
        // when subsumption actually holds.
        let prefix_wide = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        let prefix_narrow = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(prefix_wide.subsumes(&prefix_narrow));
        assert!(prefix_wide
            .wildcard_class()
            .could_subsume(prefix_narrow.wildcard_class()));
    }

    #[test]
    fn specificity_counts_fields() {
        assert_eq!(Match::any().specificity(), 0);
        assert_eq!(
            Match::exact_eth(MacAddr::from_index(1), MacAddr::from_index(2)).specificity(),
            2
        );
        // Untagged packet: vlan_pcp stays wildcarded, so 11 of 12 fields.
        let full = Match::from_packet(&pkt(), PortNo::Phys(1));
        assert_eq!(full.specificity(), 11);
        let mut tagged = pkt();
        tagged.vlan = VlanId(5);
        assert_eq!(
            Match::from_packet(&tagged, PortNo::Phys(1)).specificity(),
            12
        );
    }
}
