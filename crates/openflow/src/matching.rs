//! The OpenFlow 1.0 match structure (`ofp_match`).
//!
//! Fields are modeled as `Option`s (`None` == wildcarded) with CIDR prefix
//! lengths for the network addresses, exactly the semantics the OF 1.0
//! wildcard bitfield encodes. [`Match::matches`] evaluates a match against a
//! parsed [`Packet`]; [`Match::subsumes`] implements the wildcard-delete
//! semantics of `OFPFC_DELETE` (non-strict).

use crate::packet::{EtherType, IpProto, Packet};
use crate::types::{prefix_mask, Ipv4Addr, MacAddr, PortNo, VlanId};
use legosdn_codec::Codec;

/// An OpenFlow 1.0 12-tuple match. `None` fields are wildcards.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Codec)]
pub struct Match {
    pub in_port: Option<PortNo>,
    pub eth_src: Option<MacAddr>,
    pub eth_dst: Option<MacAddr>,
    pub vlan: Option<VlanId>,
    pub vlan_pcp: Option<u8>,
    pub eth_type: Option<EtherType>,
    pub ip_tos: Option<u8>,
    pub ip_proto: Option<IpProto>,
    /// Source prefix: `(network, prefix_len)`. `prefix_len == 0` is a full
    /// wildcard and is normalized to `None` by the constructors.
    pub ip_src: Option<(Ipv4Addr, u8)>,
    pub ip_dst: Option<(Ipv4Addr, u8)>,
    pub tp_src: Option<u16>,
    pub tp_dst: Option<u16>,
}

impl Match {
    /// The all-wildcard match.
    #[must_use]
    pub fn any() -> Self {
        Match::default()
    }

    /// Match on exact source and destination MAC.
    #[must_use]
    pub fn exact_eth(src: MacAddr, dst: MacAddr) -> Self {
        Match {
            eth_src: Some(src),
            eth_dst: Some(dst),
            ..Match::default()
        }
    }

    /// Match on destination MAC only.
    #[must_use]
    pub fn eth_dst(dst: MacAddr) -> Self {
        Match {
            eth_dst: Some(dst),
            ..Match::default()
        }
    }

    /// Match IPv4 traffic to a destination prefix.
    #[must_use]
    pub fn ip_dst_prefix(net: Ipv4Addr, prefix_len: u8) -> Self {
        Match {
            eth_type: Some(EtherType::Ipv4),
            ip_dst: if prefix_len == 0 {
                None
            } else {
                Some((net, prefix_len))
            },
            ..Match::default()
        }
    }

    /// The exact match OpenFlow reactive forwarding installs for a packet
    /// arriving on `in_port` (every field concretized).
    #[must_use]
    pub fn from_packet(pkt: &Packet, in_port: PortNo) -> Self {
        Match {
            in_port: Some(in_port),
            eth_src: Some(pkt.eth_src),
            eth_dst: Some(pkt.eth_dst),
            vlan: Some(pkt.vlan),
            vlan_pcp: pkt.vlan.is_tagged().then_some(pkt.vlan_pcp),
            eth_type: Some(pkt.eth_type),
            ip_tos: if pkt.ip_src.is_some() {
                Some(pkt.ip_tos)
            } else {
                None
            },
            ip_proto: pkt.ip_proto,
            ip_src: pkt.ip_src.map(|a| (a, 32)),
            ip_dst: pkt.ip_dst.map(|a| (a, 32)),
            tp_src: pkt.tp_src,
            tp_dst: pkt.tp_dst,
        }
    }

    /// Builder-style setter for `in_port`.
    #[must_use]
    pub fn with_in_port(mut self, port: PortNo) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Builder-style setter for `tp_dst` (e.g. a service port).
    #[must_use]
    pub fn with_tp_dst(mut self, port: u16) -> Self {
        self.tp_dst = Some(port);
        self
    }

    /// Does `pkt`, having arrived on `in_port`, satisfy this match?
    #[must_use]
    pub fn matches(&self, pkt: &Packet, in_port: PortNo) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if m != pkt.eth_src {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != pkt.eth_dst {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if v != pkt.vlan {
                return false;
            }
        }
        if let Some(p) = self.vlan_pcp {
            if !pkt.vlan.is_tagged() || p != pkt.vlan_pcp {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if t != pkt.eth_type {
                return false;
            }
        }
        if let Some(tos) = self.ip_tos {
            if pkt.ip_src.is_none() || tos != pkt.ip_tos {
                return false;
            }
        }
        if let Some(pr) = self.ip_proto {
            if pkt.ip_proto != Some(pr) {
                return false;
            }
        }
        if let Some((net, len)) = self.ip_src {
            match pkt.ip_src {
                Some(a) if a.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some((net, len)) = self.ip_dst {
            match pkt.ip_dst {
                Some(a) if a.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.tp_src {
            if pkt.tp_src != Some(p) {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if pkt.tp_dst != Some(p) {
                return false;
            }
        }
        true
    }

    /// Does this match subsume `other`? I.e. every packet matched by `other`
    /// is also matched by `self`. This is the OF 1.0 non-strict delete /
    /// flow-stats filter relation.
    #[must_use]
    pub fn subsumes(&self, other: &Match) -> bool {
        fn field<T: PartialEq>(outer: &Option<T>, inner: &Option<T>) -> bool {
            match (outer, inner) {
                (None, _) => true,
                (Some(a), Some(b)) => a == b,
                (Some(_), None) => false,
            }
        }
        fn prefix(outer: &Option<(Ipv4Addr, u8)>, inner: &Option<(Ipv4Addr, u8)>) -> bool {
            match (outer, inner) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some((onet, olen)), Some((inet, ilen))) => {
                    olen <= ilen && {
                        let mask = prefix_mask(*olen);
                        onet.0 & mask == inet.0 & mask
                    }
                }
            }
        }
        field(&self.in_port, &other.in_port)
            && field(&self.eth_src, &other.eth_src)
            && field(&self.eth_dst, &other.eth_dst)
            && field(&self.vlan, &other.vlan)
            && field(&self.vlan_pcp, &other.vlan_pcp)
            && field(&self.eth_type, &other.eth_type)
            && field(&self.ip_tos, &other.ip_tos)
            && field(&self.ip_proto, &other.ip_proto)
            && prefix(&self.ip_src, &other.ip_src)
            && prefix(&self.ip_dst, &other.ip_dst)
            && field(&self.tp_src, &other.tp_src)
            && field(&self.tp_dst, &other.tp_dst)
    }

    /// Number of concrete (non-wildcard) fields; a crude specificity measure
    /// used by tests and diagnostics.
    #[must_use]
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += u32::from(self.in_port.is_some());
        n += u32::from(self.eth_src.is_some());
        n += u32::from(self.eth_dst.is_some());
        n += u32::from(self.vlan.is_some());
        n += u32::from(self.vlan_pcp.is_some());
        n += u32::from(self.eth_type.is_some());
        n += u32::from(self.ip_tos.is_some());
        n += u32::from(self.ip_proto.is_some());
        n += u32::from(self.ip_src.is_some());
        n += u32::from(self.ip_dst.is_some());
        n += u32::from(self.tp_src.is_some());
        n += u32::from(self.tp_dst.is_some());
        n
    }

    /// True if every field is wildcarded.
    #[must_use]
    pub fn is_wildcard_all(&self) -> bool {
        self.specificity() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 2),
            4000,
            80,
        )
    }

    #[test]
    fn any_matches_everything() {
        assert!(Match::any().matches(&pkt(), PortNo::Phys(1)));
        assert!(Match::any().is_wildcard_all());
    }

    #[test]
    fn exact_from_packet_matches_only_same_port() {
        let p = pkt();
        let m = Match::from_packet(&p, PortNo::Phys(3));
        assert!(m.matches(&p, PortNo::Phys(3)));
        assert!(!m.matches(&p, PortNo::Phys(4)));
    }

    #[test]
    fn eth_dst_only() {
        let p = pkt();
        let m = Match::eth_dst(p.eth_dst);
        assert!(m.matches(&p, PortNo::Phys(1)));
        let m2 = Match::eth_dst(MacAddr::from_index(99));
        assert!(!m2.matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn ip_prefix_matching() {
        let p = pkt();
        assert!(Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24).matches(&p, PortNo::Phys(1)));
        assert!(!Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 2, 0), 24).matches(&p, PortNo::Phys(1)));
        // prefix_len 0 normalizes to full wildcard
        let m = Match::ip_dst_prefix(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(m.ip_dst.is_none());
    }

    #[test]
    fn l4_fields() {
        let p = pkt();
        let m = Match::any().with_tp_dst(80);
        assert!(m.matches(&p, PortNo::Phys(1)));
        assert!(!Match::any().with_tp_dst(443).matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn vlan_pcp_requires_tag() {
        let mut p = pkt();
        let m = Match {
            vlan_pcp: Some(0),
            ..Match::default()
        };
        assert!(!m.matches(&p, PortNo::Phys(1)));
        p.vlan = VlanId(7);
        assert!(m.matches(&p, PortNo::Phys(1)));
    }

    #[test]
    fn non_ip_packet_fails_ip_fields() {
        let l2 = Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2));
        assert!(!Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8).matches(&l2, PortNo::Phys(1)));
        let tos = Match {
            ip_tos: Some(0),
            ..Match::default()
        };
        assert!(!tos.matches(&l2, PortNo::Phys(1)));
    }

    #[test]
    fn subsumption_basics() {
        let wide = Match::eth_dst(MacAddr::from_index(2));
        let narrow = Match::from_packet(&pkt(), PortNo::Phys(1));
        assert!(Match::any().subsumes(&narrow));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(narrow.subsumes(&narrow.clone()));
    }

    #[test]
    fn prefix_subsumption() {
        let wide = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        let narrow = Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        let disjoint = Match::ip_dst_prefix(Ipv4Addr::new(11, 0, 0, 0), 8);
        assert!(!disjoint.subsumes(&narrow));
    }

    #[test]
    fn specificity_counts_fields() {
        assert_eq!(Match::any().specificity(), 0);
        assert_eq!(
            Match::exact_eth(MacAddr::from_index(1), MacAddr::from_index(2)).specificity(),
            2
        );
        // Untagged packet: vlan_pcp stays wildcarded, so 11 of 12 fields.
        let full = Match::from_packet(&pkt(), PortNo::Phys(1));
        assert_eq!(full.specificity(), 11);
        let mut tagged = pkt();
        tagged.vlan = VlanId(5);
        assert_eq!(
            Match::from_packet(&tagged, PortNo::Phys(1)).specificity(),
            12
        );
    }
}
