//! Core scalar types shared across the protocol surface.

use legosdn_codec::Codec;
use std::fmt;

/// A switch datapath identifier (OpenFlow `datapath_id`, 64 bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Codec, Default)]
pub struct DatapathId(pub u64);

impl fmt::Debug for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for DatapathId {
    fn from(v: u64) -> Self {
        DatapathId(v)
    }
}

/// An OpenFlow transaction id carried in every message header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Codec, Default)]
pub struct Xid(pub u32);

impl Xid {
    /// The next xid in sequence, wrapping on overflow.
    #[must_use]
    pub fn next(self) -> Xid {
        Xid(self.0.wrapping_add(1))
    }
}

/// A packet buffer id; `BufferId::NONE` (`0xffff_ffff`) means "no buffer".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub struct BufferId(pub u32);

impl BufferId {
    /// The distinguished "no buffer" value (`OFP_NO_BUFFER`).
    pub const NONE: BufferId = BufferId(0xffff_ffff);

    /// Whether this id refers to an actual buffered packet.
    #[must_use]
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }
}

impl Default for BufferId {
    fn default() -> Self {
        Self::NONE
    }
}

/// An Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Codec, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Construct from raw octets.
    #[must_use]
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Construct a locally-administered address from a small integer,
    /// convenient for simulator host numbering.
    #[must_use]
    pub fn from_index(idx: u64) -> Self {
        let b = idx.to_be_bytes();
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for broadcast or multicast destinations.
    #[must_use]
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// The raw octets.
    #[must_use]
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IPv4 address (kept local rather than using `std::net` so the wire codec
/// and match arithmetic can treat it as a plain `u32`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Codec, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Construct from dotted-quad octets.
    #[must_use]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Construct a `10.x.y.z` address from a small integer, convenient for
    /// simulator host numbering.
    #[must_use]
    pub fn from_index(idx: u32) -> Self {
        Ipv4Addr(0x0a00_0000 | (idx & 0x00ff_ffff))
    }

    /// The dotted-quad octets.
    #[must_use]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Whether `self` falls inside the prefix `net/prefix_len`.
    #[must_use]
    pub fn in_prefix(self, net: Ipv4Addr, prefix_len: u8) -> bool {
        let mask = prefix_mask(prefix_len);
        self.0 & mask == net.0 & mask
    }
}

/// The network mask for a prefix length, e.g. `prefix_mask(24) == 0xffff_ff00`.
#[must_use]
pub fn prefix_mask(prefix_len: u8) -> u32 {
    match prefix_len {
        0 => 0,
        n if n >= 32 => u32::MAX,
        n => u32::MAX << (32 - n),
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A VLAN id (12-bit); `VlanId::NONE` models an untagged frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub struct VlanId(pub u16);

impl VlanId {
    /// The OpenFlow 1.0 `OFP_VLAN_NONE` value.
    pub const NONE: VlanId = VlanId(0xffff);

    /// Whether the frame carries a VLAN tag.
    #[must_use]
    pub fn is_tagged(self) -> bool {
        self != Self::NONE
    }
}

impl Default for VlanId {
    fn default() -> Self {
        Self::NONE
    }
}

/// An OpenFlow port: either a physical port number or one of the reserved
/// pseudo-ports used in actions and flow-mod `out_port` filters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Codec, Default)]
pub enum PortNo {
    /// A physical switch port. OpenFlow 1.0 numbers these `1..=0xff00`.
    Phys(u16),
    /// Send the packet out the port it arrived on.
    InPort,
    /// Process through the flow table (only valid in packet-out).
    Table,
    /// Legacy L2 processing.
    Normal,
    /// Flood out all ports except the ingress port (and blocked ports).
    Flood,
    /// Output to all ports except the ingress port.
    All,
    /// Punt to the controller.
    Controller,
    /// The switch's local networking stack.
    Local,
    /// Wildcard / "no port" (`OFPP_NONE`).
    #[default]
    None,
}

impl PortNo {
    /// Encode to the OpenFlow 1.0 16-bit port number space.
    #[must_use]
    pub fn to_wire(self) -> u16 {
        match self {
            PortNo::Phys(p) => p,
            PortNo::InPort => 0xfff8,
            PortNo::Table => 0xfff9,
            PortNo::Normal => 0xfffa,
            PortNo::Flood => 0xfffb,
            PortNo::All => 0xfffc,
            PortNo::Controller => 0xfffd,
            PortNo::Local => 0xfffe,
            PortNo::None => 0xffff,
        }
    }

    /// Decode from the OpenFlow 1.0 16-bit port number space.
    #[must_use]
    pub fn from_wire(raw: u16) -> Self {
        match raw {
            0xfff8 => PortNo::InPort,
            0xfff9 => PortNo::Table,
            0xfffa => PortNo::Normal,
            0xfffb => PortNo::Flood,
            0xfffc => PortNo::All,
            0xfffd => PortNo::Controller,
            0xfffe => PortNo::Local,
            0xffff => PortNo::None,
            p => PortNo::Phys(p),
        }
    }

    /// The physical port number, if this is a physical port.
    #[must_use]
    pub fn phys(self) -> Option<u16> {
        match self {
            PortNo::Phys(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortNo::Phys(p) => write!(f, "{p}"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_id_formats_as_hex() {
        assert_eq!(format!("{}", DatapathId(0xab)), "00000000000000ab");
        assert_eq!(format!("{:?}", DatapathId(1)), "dpid:0000000000000001");
    }

    #[test]
    fn xid_wraps() {
        assert_eq!(Xid(u32::MAX).next(), Xid(0));
        assert_eq!(Xid(41).next(), Xid(42));
    }

    #[test]
    fn buffer_id_none_is_not_some() {
        assert!(!BufferId::NONE.is_some());
        assert!(BufferId(3).is_some());
        assert_eq!(BufferId::default(), BufferId::NONE);
    }

    #[test]
    fn mac_from_index_is_unicast_and_unique() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn mac_display() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn ipv4_octets_roundtrip() {
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(ip.octets(), [10, 1, 2, 3]);
        assert_eq!(ip.to_string(), "10.1.2.3");
    }

    #[test]
    fn ipv4_prefix_membership() {
        let net = Ipv4Addr::new(10, 1, 0, 0);
        assert!(Ipv4Addr::new(10, 1, 255, 3).in_prefix(net, 16));
        assert!(!Ipv4Addr::new(10, 2, 0, 1).in_prefix(net, 16));
        assert!(Ipv4Addr::new(192, 168, 0, 1).in_prefix(net, 0));
    }

    #[test]
    fn prefix_mask_edges() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(32), u32::MAX);
        assert_eq!(prefix_mask(24), 0xffff_ff00);
        assert_eq!(prefix_mask(33), u32::MAX);
    }

    #[test]
    fn vlan_none_is_untagged() {
        assert!(!VlanId::NONE.is_tagged());
        assert!(VlanId(100).is_tagged());
    }

    #[test]
    fn portno_wire_roundtrip_specials() {
        for p in [
            PortNo::InPort,
            PortNo::Table,
            PortNo::Normal,
            PortNo::Flood,
            PortNo::All,
            PortNo::Controller,
            PortNo::Local,
            PortNo::None,
            PortNo::Phys(1),
            PortNo::Phys(0xff00),
        ] {
            assert_eq!(PortNo::from_wire(p.to_wire()), p);
        }
    }

    #[test]
    fn portno_phys_accessor() {
        assert_eq!(PortNo::Phys(4).phys(), Some(4));
        assert_eq!(PortNo::Flood.phys(), None);
    }
}
