//! The OpenFlow 1.0 message set.
//!
//! [`Message`] is the single enum carried between switches, the controller,
//! and (over the AppVisor RPC) isolated applications. [`MessageKind`] is the
//! subscription vocabulary: apps register interest in kinds, and the paper's
//! Crash-Pad policy language keys compromise rules on kinds.

use crate::actions::Action;
use crate::error::{ErrorCode, ErrorType};
use crate::matching::Match;
use crate::packet::Packet;
use crate::types::{BufferId, DatapathId, MacAddr, PortNo};
use legosdn_codec::Codec;

/// `ofp_flow_mod` command.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum FlowModCommand {
    /// Add a new flow (replacing an identical match+priority entry).
    Add,
    /// Modify actions of all matching flows (non-strict).
    Modify,
    /// Modify actions of the strictly-matching flow.
    ModifyStrict,
    /// Delete all matching flows (non-strict, wildcards subsume).
    Delete,
    /// Delete the strictly-matching flow.
    DeleteStrict,
}

/// `ofp_flow_mod`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct FlowMod {
    pub command: FlowModCommand,
    pub mat: Match,
    pub cookie: u64,
    pub priority: u16,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    pub buffer_id: BufferId,
    /// For delete commands: restrict to flows with this output port.
    pub out_port: PortNo,
    /// Request a `FlowRemoved` when this flow expires or is deleted.
    pub send_flow_removed: bool,
    /// Refuse to add if an overlapping entry of the same priority exists.
    pub check_overlap: bool,
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// Start building an `Add` flow-mod for `mat`.
    #[must_use]
    pub fn add(mat: Match) -> Self {
        FlowMod {
            command: FlowModCommand::Add,
            mat,
            cookie: 0,
            priority: 0x8000,
            idle_timeout: 0,
            hard_timeout: 0,
            buffer_id: BufferId::NONE,
            out_port: PortNo::None,
            send_flow_removed: false,
            check_overlap: false,
            actions: Vec::new(),
        }
    }

    /// Start building a non-strict `Delete` flow-mod for `mat`.
    #[must_use]
    pub fn delete(mat: Match) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            ..FlowMod::add(mat)
        }
    }

    /// Start building a strict `Delete` flow-mod for `mat` at `priority`.
    #[must_use]
    pub fn delete_strict(mat: Match, priority: u16) -> Self {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            priority,
            ..FlowMod::add(mat)
        }
    }

    /// Builder: set priority.
    #[must_use]
    pub fn priority(mut self, p: u16) -> Self {
        self.priority = p;
        self
    }

    /// Builder: set cookie.
    #[must_use]
    pub fn cookie(mut self, c: u64) -> Self {
        self.cookie = c;
        self
    }

    /// Builder: set idle timeout (seconds of inactivity before expiry).
    #[must_use]
    pub fn idle_timeout(mut self, secs: u16) -> Self {
        self.idle_timeout = secs;
        self
    }

    /// Builder: set hard timeout (seconds before unconditional expiry).
    #[must_use]
    pub fn hard_timeout(mut self, secs: u16) -> Self {
        self.hard_timeout = secs;
        self
    }

    /// Builder: append an action.
    #[must_use]
    pub fn action(mut self, a: Action) -> Self {
        self.actions.push(a);
        self
    }

    /// Builder: replace the action list.
    #[must_use]
    pub fn actions(mut self, acts: Vec<Action>) -> Self {
        self.actions = acts;
        self
    }

    /// Builder: request flow-removed notifications.
    #[must_use]
    pub fn notify_removed(mut self) -> Self {
        self.send_flow_removed = true;
        self
    }

    /// Whether this command mutates switch state (all flow-mods do).
    #[must_use]
    pub fn is_delete(&self) -> bool {
        matches!(
            self.command,
            FlowModCommand::Delete | FlowModCommand::DeleteStrict
        )
    }
}

/// Why a `PacketIn` was generated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum PacketInReason {
    /// No matching flow entry.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// `ofp_packet_in`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct PacketIn {
    pub buffer_id: BufferId,
    pub in_port: PortNo,
    pub reason: PacketInReason,
    pub packet: Packet,
}

/// `ofp_packet_out`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct PacketOut {
    pub buffer_id: BufferId,
    pub in_port: PortNo,
    pub actions: Vec<Action>,
    /// Present when `buffer_id == BufferId::NONE`.
    pub packet: Option<Packet>,
}

/// Why a `FlowRemoved` was generated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum FlowRemovedReason {
    IdleTimeout,
    HardTimeout,
    Delete,
}

/// `ofp_flow_removed`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct FlowRemoved {
    pub mat: Match,
    pub cookie: u64,
    pub priority: u16,
    pub reason: FlowRemovedReason,
    /// Seconds the flow was installed.
    pub duration_sec: u32,
    pub idle_timeout: u16,
    pub packet_count: u64,
    pub byte_count: u64,
}

/// Why a `PortStatus` was generated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum PortStatusReason {
    Add,
    Delete,
    Modify,
}

/// `ofp_phy_port` (subset).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct PortDesc {
    pub port_no: PortNo,
    pub hw_addr: MacAddr,
    pub name: String,
    /// Administratively down (`OFPPC_PORT_DOWN`).
    pub config_down: bool,
    /// No physical link (`OFPPS_LINK_DOWN`).
    pub link_down: bool,
}

impl PortDesc {
    /// A port that is up both administratively and physically.
    #[must_use]
    pub fn up(port_no: PortNo, hw_addr: MacAddr) -> Self {
        PortDesc {
            port_no,
            hw_addr,
            name: format!("eth{port_no}"),
            config_down: false,
            link_down: false,
        }
    }

    /// Usable for forwarding?
    #[must_use]
    pub fn is_live(&self) -> bool {
        !self.config_down && !self.link_down
    }
}

/// `ofp_port_status`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct PortStatus {
    pub reason: PortStatusReason,
    pub desc: PortDesc,
}

/// A statistics request (`ofp_stats_request` subset).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub enum StatsRequest {
    /// Per-flow stats for flows subsumed by the match.
    Flow { mat: Match, out_port: PortNo },
    /// Aggregate stats for flows subsumed by the match.
    Aggregate { mat: Match, out_port: PortNo },
    /// Per-port counters; `PortNo::None` means all ports.
    Port { port: PortNo },
    /// Flow-table summary.
    Table,
}

/// A single flow's statistics, also the snapshot NetLog stores before a
/// delete so the entry can be faithfully restored (paper §3.2).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct FlowEntrySnapshot {
    pub mat: Match,
    pub priority: u16,
    pub cookie: u64,
    pub idle_timeout: u16,
    pub hard_timeout: u16,
    /// Remaining seconds before hard expiry at snapshot time (`None` if the
    /// flow has no hard timeout).
    pub remaining_hard: Option<u32>,
    pub duration_sec: u32,
    pub packet_count: u64,
    pub byte_count: u64,
    pub send_flow_removed: bool,
    pub actions: Vec<Action>,
}

/// Per-port counters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Codec)]
pub struct PortStats {
    pub port_no: u16,
    pub rx_packets: u64,
    pub tx_packets: u64,
    pub rx_bytes: u64,
    pub tx_bytes: u64,
    pub rx_dropped: u64,
    pub tx_dropped: u64,
}

/// Flow-table summary counters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Codec)]
pub struct TableStats {
    pub active_count: u32,
    pub lookup_count: u64,
    pub matched_count: u64,
    pub max_entries: u32,
}

/// A statistics reply (`ofp_stats_reply` subset).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub enum StatsReply {
    Flow(Vec<FlowEntrySnapshot>),
    Aggregate {
        packet_count: u64,
        byte_count: u64,
        flow_count: u32,
    },
    Port(Vec<PortStats>),
    Table(TableStats),
}

/// `ofp_switch_features` (features reply).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct SwitchFeatures {
    pub datapath_id: DatapathId,
    pub n_buffers: u32,
    pub n_tables: u8,
    pub ports: Vec<PortDesc>,
}

/// `ofp_port_mod` (subset: administrative up/down).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct PortMod {
    pub port_no: PortNo,
    pub hw_addr: MacAddr,
    /// Set the port administratively down (true) or up (false).
    pub down: bool,
}

/// `ofp_error_msg`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub struct ErrorMsg {
    pub err_type: ErrorType,
    pub code: ErrorCode,
    /// First bytes of the offending message, as OF 1.0 requires.
    pub data: Vec<u8>,
}

/// Every OpenFlow message the system speaks.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Codec)]
pub enum Message {
    Hello,
    EchoRequest(Vec<u8>),
    EchoReply(Vec<u8>),
    FeaturesRequest,
    FeaturesReply(SwitchFeatures),
    PacketIn(PacketIn),
    PacketOut(PacketOut),
    FlowMod(FlowMod),
    FlowRemoved(FlowRemoved),
    PortStatus(PortStatus),
    PortMod(PortMod),
    StatsRequest(StatsRequest),
    StatsReply(StatsReply),
    BarrierRequest,
    BarrierReply,
    Error(ErrorMsg),
    /// Every flow-mod of one transaction packed into a single frame — the
    /// wire-level batching that amortises per-message header and transport
    /// overhead when a commit flushes many installs at once. Semantically
    /// identical to sending the flow-mods back to back in order.
    FlowModBatch(Vec<FlowMod>),
}

/// The kind of a message, used for subscriptions and policy keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Codec)]
pub enum MessageKind {
    Hello,
    EchoRequest,
    EchoReply,
    FeaturesRequest,
    FeaturesReply,
    PacketIn,
    PacketOut,
    FlowMod,
    FlowRemoved,
    PortStatus,
    PortMod,
    StatsRequest,
    StatsReply,
    BarrierRequest,
    BarrierReply,
    Error,
}

impl MessageKind {
    /// Every kind, in wire-type order.
    pub const ALL: [MessageKind; 16] = [
        MessageKind::Hello,
        MessageKind::EchoRequest,
        MessageKind::EchoReply,
        MessageKind::FeaturesRequest,
        MessageKind::FeaturesReply,
        MessageKind::PacketIn,
        MessageKind::PacketOut,
        MessageKind::FlowMod,
        MessageKind::FlowRemoved,
        MessageKind::PortStatus,
        MessageKind::PortMod,
        MessageKind::StatsRequest,
        MessageKind::StatsReply,
        MessageKind::BarrierRequest,
        MessageKind::BarrierReply,
        MessageKind::Error,
    ];
}

impl Message {
    /// The kind discriminant of this message.
    #[must_use]
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Hello => MessageKind::Hello,
            Message::EchoRequest(_) => MessageKind::EchoRequest,
            Message::EchoReply(_) => MessageKind::EchoReply,
            Message::FeaturesRequest => MessageKind::FeaturesRequest,
            Message::FeaturesReply(_) => MessageKind::FeaturesReply,
            Message::PacketIn(_) => MessageKind::PacketIn,
            Message::PacketOut(_) => MessageKind::PacketOut,
            Message::FlowMod(_) => MessageKind::FlowMod,
            Message::FlowRemoved(_) => MessageKind::FlowRemoved,
            Message::PortStatus(_) => MessageKind::PortStatus,
            Message::PortMod(_) => MessageKind::PortMod,
            Message::StatsRequest(_) => MessageKind::StatsRequest,
            Message::StatsReply(_) => MessageKind::StatsReply,
            Message::BarrierRequest => MessageKind::BarrierRequest,
            Message::BarrierReply => MessageKind::BarrierReply,
            Message::Error(_) => MessageKind::Error,
            // A batch is flow-mods for subscription and policy purposes;
            // it deliberately has no kind of its own (`ALL` stays closed).
            Message::FlowModBatch(_) => MessageKind::FlowMod,
        }
    }

    /// Does this message, sent controller→switch, alter durable switch
    /// state? This is NetLog's "state-altering control message" predicate
    /// (paper §3.2): such messages must be logged with enough pre-state to
    /// be inverted.
    #[must_use]
    pub fn alters_network_state(&self) -> bool {
        matches!(
            self,
            Message::FlowMod(_) | Message::PortMod(_) | Message::FlowModBatch(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Ipv4Addr, Xid};

    #[test]
    fn flowmod_builder_defaults() {
        let fm = FlowMod::add(Match::any());
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.priority, 0x8000);
        assert_eq!(fm.buffer_id, BufferId::NONE);
        assert!(fm.actions.is_empty());
        assert!(!fm.send_flow_removed);
    }

    #[test]
    fn flowmod_builder_chains() {
        let fm = FlowMod::add(Match::any())
            .priority(7)
            .cookie(0xdead)
            .idle_timeout(10)
            .hard_timeout(60)
            .action(Action::Output(PortNo::Phys(2)))
            .notify_removed();
        assert_eq!(fm.priority, 7);
        assert_eq!(fm.cookie, 0xdead);
        assert_eq!(fm.idle_timeout, 10);
        assert_eq!(fm.hard_timeout, 60);
        assert_eq!(fm.actions.len(), 1);
        assert!(fm.send_flow_removed);
    }

    #[test]
    fn delete_builders_set_command() {
        assert!(FlowMod::delete(Match::any()).is_delete());
        let ds = FlowMod::delete_strict(Match::any(), 42);
        assert!(ds.is_delete());
        assert_eq!(ds.priority, 42);
        assert!(!FlowMod::add(Match::any()).is_delete());
    }

    #[test]
    fn message_kind_covers_all_variants() {
        // Spot-check a few and confirm ALL has no duplicates.
        assert_eq!(Message::Hello.kind(), MessageKind::Hello);
        assert_eq!(Message::BarrierReply.kind(), MessageKind::BarrierReply);
        let mut kinds: Vec<_> = MessageKind::ALL.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 16);
    }

    #[test]
    fn state_altering_predicate() {
        assert!(Message::FlowMod(FlowMod::add(Match::any())).alters_network_state());
        assert!(Message::PortMod(PortMod {
            port_no: PortNo::Phys(1),
            hw_addr: MacAddr::from_index(1),
            down: true,
        })
        .alters_network_state());
        assert!(!Message::Hello.alters_network_state());
        assert!(!Message::PacketOut(PacketOut {
            buffer_id: BufferId::NONE,
            in_port: PortNo::None,
            actions: vec![],
            packet: None,
        })
        .alters_network_state());
    }

    #[test]
    fn port_desc_liveness() {
        let mut pd = PortDesc::up(PortNo::Phys(1), MacAddr::from_index(1));
        assert!(pd.is_live());
        pd.link_down = true;
        assert!(!pd.is_live());
        pd.link_down = false;
        pd.config_down = true;
        assert!(!pd.is_live());
    }

    #[test]
    fn snapshot_is_plain_data() {
        let snap = FlowEntrySnapshot {
            mat: Match::ip_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8),
            priority: 1,
            cookie: 2,
            idle_timeout: 3,
            hard_timeout: 4,
            remaining_hard: Some(2),
            duration_sec: 2,
            packet_count: 100,
            byte_count: 6400,
            send_flow_removed: false,
            actions: vec![Action::Output(PortNo::Phys(1))],
        };
        let clone = snap.clone();
        assert_eq!(snap, clone);
        let _ = Xid(0); // silence unused import in some cfgs
    }
}
