//! Protocol error vocabulary and codec errors.

use legosdn_codec::Codec;
use std::fmt;

/// OpenFlow 1.0 error categories (`ofp_error_type` subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum ErrorType {
    HelloFailed,
    BadRequest,
    BadAction,
    FlowModFailed,
    PortModFailed,
    QueueOpFailed,
}

impl ErrorType {
    /// The wire value.
    #[must_use]
    pub fn to_wire(self) -> u16 {
        match self {
            ErrorType::HelloFailed => 0,
            ErrorType::BadRequest => 1,
            ErrorType::BadAction => 2,
            ErrorType::FlowModFailed => 3,
            ErrorType::PortModFailed => 4,
            ErrorType::QueueOpFailed => 5,
        }
    }

    /// Decode from the wire value.
    #[must_use]
    pub fn from_wire(raw: u16) -> Option<Self> {
        Some(match raw {
            0 => ErrorType::HelloFailed,
            1 => ErrorType::BadRequest,
            2 => ErrorType::BadAction,
            3 => ErrorType::FlowModFailed,
            4 => ErrorType::PortModFailed,
            5 => ErrorType::QueueOpFailed,
            _ => return None,
        })
    }
}

/// Error codes; a deliberately flattened subset sufficient for the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum ErrorCode {
    /// `OFPFMFC_ALL_TABLES_FULL`
    TablesFull,
    /// `OFPFMFC_OVERLAP` — CHECK_OVERLAP set and an overlapping entry exists.
    Overlap,
    /// Permissions / epoch errors.
    EPerm,
    /// Bad or unknown port referenced.
    BadPort,
    /// Unsupported action or message for this switch.
    Unsupported,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl ErrorCode {
    /// The wire value.
    #[must_use]
    pub fn to_wire(self) -> u16 {
        match self {
            ErrorCode::TablesFull => 0,
            ErrorCode::Overlap => 1,
            ErrorCode::EPerm => 2,
            ErrorCode::BadPort => 3,
            ErrorCode::Unsupported => 4,
            ErrorCode::Other(v) => v,
        }
    }

    /// Decode from the wire value.
    #[must_use]
    pub fn from_wire(raw: u16) -> Self {
        match raw {
            0 => ErrorCode::TablesFull,
            1 => ErrorCode::Overlap,
            2 => ErrorCode::EPerm,
            3 => ErrorCode::BadPort,
            4 => ErrorCode::Unsupported,
            v => ErrorCode::Other(v),
        }
    }
}

/// Errors produced by the binary wire codec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Fewer bytes than the header's length field promised (or than a
    /// structure requires). Carries `(needed, available)`.
    Truncated { needed: usize, available: usize },
    /// Header version byte was not OpenFlow 1.0 (`0x01`).
    BadVersion(u8),
    /// Unknown message type byte.
    UnknownType(u8),
    /// A structurally invalid field (named for diagnostics).
    BadField(&'static str),
    /// Trailing bytes after a complete message body.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, have {available}"
                )
            }
            CodecError::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            CodecError::UnknownType(t) => write!(f, "unknown message type {t}"),
            CodecError::BadField(name) => write!(f, "invalid field: {name}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message body"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_type_roundtrip() {
        for t in [
            ErrorType::HelloFailed,
            ErrorType::BadRequest,
            ErrorType::BadAction,
            ErrorType::FlowModFailed,
            ErrorType::PortModFailed,
            ErrorType::QueueOpFailed,
        ] {
            assert_eq!(ErrorType::from_wire(t.to_wire()), Some(t));
        }
        assert_eq!(ErrorType::from_wire(99), None);
    }

    #[test]
    fn error_code_roundtrip() {
        for c in [
            ErrorCode::TablesFull,
            ErrorCode::Overlap,
            ErrorCode::EPerm,
            ErrorCode::BadPort,
            ErrorCode::Unsupported,
            ErrorCode::Other(77),
        ] {
            assert_eq!(ErrorCode::from_wire(c.to_wire()), c);
        }
    }

    #[test]
    fn codec_error_displays() {
        let e = CodecError::Truncated {
            needed: 8,
            available: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(CodecError::BadVersion(4).to_string().contains("0x04"));
    }
}
