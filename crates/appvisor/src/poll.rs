//! Readiness-polled multiplexed transport (DESIGN.md §12).
//!
//! The blocking [`crate::transport`] implementations cost one parked OS
//! thread per stub channel: every proxy recv loop sits in
//! `recv_timeout`, and every stub burns its own thread. That caps the
//! fleet at hundreds of apps. This module multiplexes *all* stub
//! channels onto a small fixed pool of I/O threads:
//!
//! - a transport is split into a non-blocking [`FrameSink`] /
//!   [`FrameSource`] pair ([`Duplex`]);
//! - a [`Poller`] owns the proxy-side sources: each worker level-scans
//!   its sources with `try_recv` and demultiplexes complete frames into
//!   per-slot [`SlotQueue`]s;
//! - a [`PolledTransport`] wraps one sink + one slot queue and
//!   implements the blocking [`Transport`] trait, so everything above
//!   the proxy seam — the tagged `inbox`/`cancelled` machinery, windowed
//!   dispatch in `core/runtime.rs`, the determinism oracle — is
//!   unchanged;
//! - stub-side, [`crate::stub::StubHost`] runs the same scan loop over
//!   hosted stubs, so 1000 apps need a handful of threads, not 1000.
//!
//! There is no epoll in `std`, so readiness is a level-triggered scan:
//! in-memory queue duplexes carry a [`PollWaker`] (a generation-counted
//! condvar) and wake their worker on every send — the latency of that
//! path is a condvar signal, not a poll interval. Socket duplexes have
//! no waker, so their workers park briefly between empty scans; the park
//! is bounded and amortized across every source on the worker.

use crate::transport::{Transport, TransportError};
use legosdn_obs::Obs;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a non-blocking sink retries a `WouldBlock` send before
/// declaring the transport wedged. Loopback buffers drain in microseconds;
/// a full second means the far end is gone or livelocked.
const SINK_RETRY: Duration = Duration::from_secs(1);

/// Park interval for workers whose sources all carry wakers (in-memory
/// queues): the waker ends the park early on traffic, so this only bounds
/// how often an idle worker rescans.
const PARK_WAKERED: Duration = Duration::from_millis(5);

/// Park interval when any source is a socket (no readiness signal
/// available without epoll): bounds the added latency of the polled
/// socket path.
const PARK_SCANNED: Duration = Duration::from_micros(100);

/// A generation-counted condvar: the readiness signal for sources that
/// can produce one (in-memory queues). `wake` is cheap and never blocks
/// behind the worker; a worker that reads the generation *before*
/// scanning and waits for it to move afterwards cannot miss a wakeup
/// that raced its scan.
pub struct PollWaker {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl PollWaker {
    pub(crate) fn new() -> Arc<PollWaker> {
        Arc::new(PollWaker {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    /// Signal that a source may have become ready.
    pub fn wake(&self) {
        *self.generation.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    /// The generation to pass to [`PollWaker::wait_past`]. Read this
    /// *before* scanning sources.
    pub(crate) fn current(&self) -> u64 {
        *self.generation.lock().unwrap()
    }

    /// Park until the generation moves past `seen` or `timeout` elapses.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut generation = self.generation.lock().unwrap();
        while *generation == seen {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            let (guard, wait) = self.cv.wait_timeout(generation, left).unwrap();
            generation = guard;
            if wait.timed_out() {
                return;
            }
        }
    }
}

/// The write half of a split transport. Must not block indefinitely:
/// implementations bound `WouldBlock` retries by [`SINK_RETRY`].
pub trait FrameSink: Send {
    /// Send one frame.
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;
}

/// The read half of a split transport, drained by a poll worker.
pub trait FrameSource: Send {
    /// Pop one complete frame if available, never blocking.
    /// `Err(Disconnected)` is terminal: the worker drops the source.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Install the owning worker's waker, if this source can signal
    /// readiness (in-memory queues can; sockets cannot without epoll).
    fn set_waker(&mut self, _waker: Arc<PollWaker>) {}

    /// Does this source signal readiness via a waker? Workers whose
    /// sources all say yes park long between scans; any `false` forces
    /// the short scan interval.
    fn has_waker(&self) -> bool {
        false
    }
}

/// One direction's sink + the other direction's source: half of a split
/// bidirectional transport.
pub struct Duplex {
    pub sink: Box<dyn FrameSink>,
    pub source: Box<dyn FrameSource>,
}

// ---------------------------------------------------------------------
// In-memory queue duplex (the polled analogue of ChannelTransport).
// ---------------------------------------------------------------------

struct QueueState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
    waker: Option<Arc<PollWaker>>,
}

struct QueueShared {
    state: Mutex<QueueState>,
}

impl QueueShared {
    fn new() -> Arc<QueueShared> {
        Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                frames: VecDeque::new(),
                closed: false,
                waker: None,
            }),
        })
    }

    fn close(&self) {
        let waker = {
            let mut state = self.state.lock().unwrap();
            state.closed = true;
            state.waker.clone()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

struct QueueSink {
    shared: Arc<QueueShared>,
}

impl FrameSink for QueueSink {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let waker = {
            let mut state = self.shared.state.lock().unwrap();
            if state.closed {
                return Err(TransportError::Disconnected);
            }
            state.frames.push_back(bytes.to_vec());
            state.waker.clone()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl Drop for QueueSink {
    fn drop(&mut self) {
        self.shared.close();
    }
}

struct QueueSource {
    shared: Arc<QueueShared>,
}

impl FrameSource for QueueSource {
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(frame) = state.frames.pop_front() {
            return Ok(Some(frame));
        }
        if state.closed {
            return Err(TransportError::Disconnected);
        }
        Ok(None)
    }

    fn set_waker(&mut self, waker: Arc<PollWaker>) {
        self.shared.state.lock().unwrap().waker = Some(waker);
    }

    fn has_waker(&self) -> bool {
        true
    }
}

impl Drop for QueueSource {
    fn drop(&mut self) {
        self.shared.close();
    }
}

/// A connected pair of in-memory duplexes: frames written to one side's
/// sink pop out of the other side's source, waking its worker.
#[must_use]
pub fn queue_duplex_pair() -> (Duplex, Duplex) {
    let ab = QueueShared::new(); // a → b
    let ba = QueueShared::new(); // b → a
    (
        Duplex {
            sink: Box::new(QueueSink { shared: ab.clone() }),
            source: Box::new(QueueSource { shared: ba.clone() }),
        },
        Duplex {
            sink: Box::new(QueueSink { shared: ba }),
            source: Box::new(QueueSource { shared: ab }),
        },
    )
}

// ---------------------------------------------------------------------
// Socket duplexes. `try_clone` shares the underlying file description,
// so O_NONBLOCK set for the source applies to the sink clone as well —
// sinks therefore handle WouldBlock with a bounded retry loop.
// ---------------------------------------------------------------------

fn retry_park(deadline: Instant) -> Result<(), TransportError> {
    if Instant::now() >= deadline {
        return Err(TransportError::Io("non-blocking send stalled".into()));
    }
    std::thread::sleep(Duration::from_micros(50));
    Ok(())
}

struct UdpSink {
    socket: UdpSocket,
}

impl FrameSink for UdpSink {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.len() > crate::transport::MAX_DATAGRAM {
            return Err(TransportError::Io(format!(
                "frame of {} bytes exceeds datagram limit {}",
                bytes.len(),
                crate::transport::MAX_DATAGRAM
            )));
        }
        let deadline = Instant::now() + SINK_RETRY;
        loop {
            match self.socket.send(bytes) {
                Ok(_) => return Ok(()),
                Err(e) if e.kind() == ErrorKind::WouldBlock => retry_park(deadline)?,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }
}

struct UdpSource {
    socket: UdpSocket,
    buf: Vec<u8>,
}

impl FrameSource for UdpSource {
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.socket.recv(&mut self.buf) {
            Ok(n) => Ok(Some(self.buf[..n].to_vec())),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }
}

/// A connected pair of non-blocking UDP loopback duplexes.
pub fn udp_duplex_pair() -> std::io::Result<(Duplex, Duplex)> {
    let a = UdpSocket::bind("127.0.0.1:0")?;
    let b = UdpSocket::bind("127.0.0.1:0")?;
    a.connect(b.local_addr()?)?;
    b.connect(a.local_addr()?)?;
    a.set_nonblocking(true)?;
    b.set_nonblocking(true)?;
    let duplex = |socket: UdpSocket| -> std::io::Result<Duplex> {
        Ok(Duplex {
            sink: Box::new(UdpSink {
                socket: socket.try_clone()?,
            }),
            source: Box::new(UdpSource {
                socket,
                buf: vec![0u8; crate::transport::MAX_DATAGRAM],
            }),
        })
    };
    Ok((duplex(a)?, duplex(b)?))
}

struct TcpSink {
    stream: TcpStream,
    /// Staging buffer so header + payload go down the nonblocking stream
    /// as one resumable write.
    staged: Vec<u8>,
}

impl FrameSink for TcpSink {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.staged.clear();
        self.staged
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.staged.extend_from_slice(bytes);
        let deadline = Instant::now() + SINK_RETRY;
        let mut written = 0usize;
        while written < self.staged.len() {
            match self.stream.write(&self.staged[written..]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => retry_park(deadline)?,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        Ok(())
    }
}

struct TcpSource {
    stream: TcpStream,
    framer: crate::transport::TcpFramer,
}

impl FrameSource for TcpSource {
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if let Some(frame) = self.framer.take() {
            return Ok(Some(frame));
        }
        self.framer.compact();
        let mut chunk = [0u8; 16 * 1024];
        let mut res = Ok(());
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    res = Err(TransportError::Disconnected);
                    break;
                }
                Ok(n) => self.framer.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    res = Err(TransportError::Disconnected);
                    break;
                }
                Err(e) => {
                    res = Err(TransportError::Io(e.to_string()));
                    break;
                }
            }
        }
        // Deliver buffered frames before surfacing a terminal error.
        if let Some(frame) = self.framer.take() {
            return Ok(Some(frame));
        }
        res.map(|()| None)
    }
}

/// A connected pair of non-blocking TCP loopback duplexes with `u32 LE`
/// length framing.
pub fn tcp_duplex_pair() -> std::io::Result<(Duplex, Duplex)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let client = TcpStream::connect(addr)?;
    let (server, _) = listener.accept()?;
    let duplex = |stream: TcpStream| -> std::io::Result<Duplex> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Duplex {
            sink: Box::new(TcpSink {
                stream: stream.try_clone()?,
                staged: Vec::new(),
            }),
            source: Box::new(TcpSource {
                stream,
                framer: crate::transport::TcpFramer::default(),
            }),
        })
    };
    Ok((duplex(client)?, duplex(server)?))
}

// ---------------------------------------------------------------------
// Demux target + blocking facade.
// ---------------------------------------------------------------------

struct SlotState {
    frames: VecDeque<Vec<u8>>,
    disconnected: bool,
}

/// Per-slot frame queue a poll worker demultiplexes into. The consumer
/// side is the blocking [`Transport`] facade ([`PolledTransport`]):
/// `recv_timeout` parks on the queue's condvar, not on a socket, so the
/// proxy's recv loops work unchanged. Queued frames drain before a
/// disconnect is reported.
pub struct SlotQueue {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl SlotQueue {
    fn new() -> Arc<SlotQueue> {
        Arc::new(SlotQueue {
            state: Mutex::new(SlotState {
                frames: VecDeque::new(),
                disconnected: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn push(&self, frame: Vec<u8>) {
        self.state.lock().unwrap().frames.push_back(frame);
        self.cv.notify_all();
    }

    fn disconnect(&self) {
        self.state.lock().unwrap().disconnected = true;
        self.cv.notify_all();
    }

    fn try_pop(&self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut state = self.state.lock().unwrap();
        if let Some(frame) = state.frames.pop_front() {
            return Ok(Some(frame));
        }
        if state.disconnected {
            return Err(TransportError::Disconnected);
        }
        Ok(None)
    }

    fn pop_wait(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(frame) = state.frames.pop_front() {
                return Ok(Some(frame));
            }
            if state.disconnected {
                return Err(TransportError::Disconnected);
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return Ok(None);
            };
            state = self.cv.wait_timeout(state, left).unwrap().0;
        }
    }
}

/// Blocking [`Transport`] facade over a split transport whose source is
/// owned by a [`Poller`]: sends go straight down the sink; receives park
/// on the [`SlotQueue`] the poll worker fills.
pub struct PolledTransport {
    sink: Box<dyn FrameSink>,
    queue: Arc<SlotQueue>,
}

impl PolledTransport {
    #[must_use]
    pub fn new(sink: Box<dyn FrameSink>, queue: Arc<SlotQueue>) -> Self {
        PolledTransport { sink, queue }
    }
}

impl Transport for PolledTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.sink.send(bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.queue.pop_wait(timeout)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        self.queue.try_pop()
    }
}

// ---------------------------------------------------------------------
// The poller.
// ---------------------------------------------------------------------

struct Registration {
    source: Box<dyn FrameSource>,
    queue: Arc<SlotQueue>,
}

struct Worker {
    waker: Arc<PollWaker>,
    inject: Arc<Mutex<Vec<Registration>>>,
    thread: Option<JoinHandle<()>>,
}

/// A fixed pool of I/O threads level-scanning registered sources and
/// demultiplexing their frames into per-slot queues. Registrations are
/// spread round-robin; a worker's scan cost is amortized across all its
/// sources, so the thread count is a deployment constant, not a function
/// of fleet size.
pub struct Poller {
    workers: Vec<Worker>,
    next: AtomicUsize,
    stop: Arc<AtomicBool>,
}

impl Poller {
    /// Start `io_threads` poll workers (clamped to at least 1) reporting
    /// wakeup/ready-set metrics to `obs`.
    #[must_use]
    pub fn new(io_threads: usize, obs: Obs) -> Poller {
        Poller::for_worker(io_threads, obs, 0)
    }

    /// [`Poller::new`] tagged with the runtime worker shard that owns it:
    /// shard 0 keeps the historical `appvisor-poll-{i}` thread names and
    /// `w{i}` metric labels; shard *s* > 0 gets `appvisor-poll-w{s}-{i}`
    /// threads and `w{s}.{i}` labels so per-shard I/O is attributable.
    #[must_use]
    pub fn for_worker(io_threads: usize, obs: Obs, shard: usize) -> Poller {
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..io_threads.max(1))
            .map(|i| {
                let waker = PollWaker::new();
                let inject: Arc<Mutex<Vec<Registration>>> = Arc::new(Mutex::new(Vec::new()));
                let (thread_name, label) = if shard == 0 {
                    (format!("appvisor-poll-{i}"), format!("w{i}"))
                } else {
                    (
                        format!("appvisor-poll-w{shard}-{i}"),
                        format!("w{shard}.{i}"),
                    )
                };
                let thread = {
                    let waker = waker.clone();
                    let inject = inject.clone();
                    let stop = stop.clone();
                    let obs = obs.clone();
                    std::thread::Builder::new()
                        .name(thread_name)
                        .spawn(move || worker_loop(&waker, &inject, &stop, &obs, &label))
                        .expect("spawn poll worker")
                };
                Worker {
                    waker,
                    inject,
                    thread: Some(thread),
                }
            })
            .collect();
        Poller {
            workers,
            next: AtomicUsize::new(0),
            stop,
        }
    }

    /// Hand a source to a poll worker (round-robin) and get back the slot
    /// queue its frames will land in.
    pub fn register(&self, mut source: Box<dyn FrameSource>) -> Arc<SlotQueue> {
        let queue = SlotQueue::new();
        let worker = &self.workers[self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len()];
        source.set_waker(worker.waker.clone());
        worker.inject.lock().unwrap().push(Registration {
            source,
            queue: queue.clone(),
        });
        worker.waker.wake();
        queue
    }

    /// Stop and join all workers. Undelivered frames still queued in
    /// slot queues remain poppable; sources are dropped.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.waker.wake();
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    waker: &Arc<PollWaker>,
    inject: &Arc<Mutex<Vec<Registration>>>,
    stop: &Arc<AtomicBool>,
    obs: &Obs,
    label: &str,
) {
    let wakeups = obs.counter("appvisor", "poller_wakeups", label);
    let ready_hist = obs.histogram("appvisor", "poller_ready_set", label);
    let mut sources: Vec<Registration> = Vec::new();
    loop {
        // Read the generation BEFORE scanning: a send racing the scan
        // bumps it, so the post-scan park returns immediately instead of
        // sleeping on a frame that already arrived.
        let seen = waker.current();
        {
            let mut pending = inject.lock().unwrap();
            sources.append(&mut pending);
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut ready = 0u64;
        sources.retain_mut(|reg| loop {
            match reg.source.try_recv() {
                Ok(Some(frame)) => {
                    ready += 1;
                    reg.queue.push(frame);
                }
                Ok(None) => return true,
                Err(_) => {
                    reg.queue.disconnect();
                    return false;
                }
            }
        });
        wakeups.inc();
        ready_hist.observe(ready);
        if ready == 0 {
            let park = if sources.iter().all(|r| r.source.has_waker()) {
                PARK_WAKERED
            } else {
                PARK_SCANNED
            };
            waker.wait_past(seen, park);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wrap a duplex pair into blocking transports backed by a poller on
    /// each side, so the transport conformance suite runs unchanged over
    /// the polled path.
    fn polled_pair(
        poller_a: &Poller,
        poller_b: &Poller,
        (a, b): (Duplex, Duplex),
    ) -> (PolledTransport, PolledTransport) {
        let qa = poller_a.register(a.source);
        let qb = poller_b.register(b.source);
        (
            PolledTransport::new(a.sink, qa),
            PolledTransport::new(b.sink, qb),
        )
    }

    fn conformance(pair: (Duplex, Duplex)) {
        let pa = Poller::new(1, Obs::new());
        let pb = Poller::new(1, Obs::new());
        let (a, b) = polled_pair(&pa, &pb, pair);
        crate::transport::tests::exercise(a, b);
    }

    #[test]
    fn polled_queue_transport_conforms() {
        conformance(queue_duplex_pair());
    }

    #[test]
    fn polled_udp_transport_conforms() {
        conformance(udp_duplex_pair().expect("loopback sockets"));
    }

    #[test]
    fn polled_tcp_transport_conforms() {
        conformance(tcp_duplex_pair().expect("loopback sockets"));
    }

    #[test]
    fn polled_tcp_carries_large_frames() {
        let pa = Poller::new(1, Obs::new());
        let pb = Poller::new(1, Obs::new());
        let (mut a, mut b) = polled_pair(&pa, &pb, tcp_duplex_pair().unwrap());
        let big = vec![0xcdu8; 1_000_000];
        a.send(&big).unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn polled_disconnect_reaches_the_slot_queue() {
        let p = Poller::new(1, Obs::new());
        let (a, b) = queue_duplex_pair();
        let qa = p.register(a.source);
        let mut ta = PolledTransport::new(a.sink, qa);
        // Far end sends one frame then hangs up: the frame must drain
        // before the disconnect is reported.
        let mut sink_b = b.sink;
        sink_b.send(b"last words").unwrap();
        drop(sink_b);
        drop(b.source);
        assert_eq!(
            ta.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            b"last words"
        );
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            match ta.recv_timeout(Duration::from_millis(10)) {
                Err(TransportError::Disconnected) => break,
                Ok(None) => assert!(Instant::now() < deadline, "disconnect never surfaced"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn polled_ordering_across_many_sources_on_one_worker() {
        // One worker multiplexes many sources; per-source FIFO order must
        // survive the demux.
        let p = Poller::new(1, Obs::new());
        let n_sources = 32;
        let per_source = 50u32;
        let mut far_sinks = Vec::new();
        let mut transports = Vec::new();
        for _ in 0..n_sources {
            let (a, b) = queue_duplex_pair();
            let q = p.register(a.source);
            transports.push(PolledTransport::new(a.sink, q));
            far_sinks.push(b.sink);
            // b.source intentionally dropped: we only push toward the poller.
        }
        for i in 0..per_source {
            for sink in &mut far_sinks {
                sink.send(&i.to_le_bytes()).unwrap();
            }
        }
        for t in &mut transports {
            for i in 0..per_source {
                let got = t.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
                assert_eq!(got, i.to_le_bytes());
            }
        }
    }

    #[test]
    fn poller_reports_wakeup_metrics() {
        let obs = Obs::new();
        let p = Poller::new(1, obs.clone());
        let (a, b) = queue_duplex_pair();
        let q = p.register(a.source);
        let mut t = PolledTransport::new(a.sink, q);
        let mut sink_b = b.sink;
        sink_b.send(b"ping").unwrap();
        assert!(t.recv_timeout(Duration::from_secs(1)).unwrap().is_some());
        assert!(
            obs.counter("appvisor", "poller_wakeups", "w0").get() > 0,
            "worker scans are counted"
        );
    }

    #[test]
    fn waker_wait_past_does_not_miss_a_racing_wake() {
        let w = PollWaker::new();
        let seen = w.current();
        w.wake(); // races "between scan and park"
        let start = Instant::now();
        w.wait_past(seen, Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "pre-park wake must end the park immediately"
        );
    }
}
