//! The proxy⇄stub RPC protocol (paper §4.1).
//!
//! "The stub is a light-weight wrapper around the actual SDN-App and
//! converts all calls from the SDN-App to the controller to messages which
//! are then delivered to the proxy. [...] the stub and proxy implement a
//! simple RPC-like mechanism."
//!
//! Frames are length-prefixed: `u32 LE length | body`, with the body encoded
//! by the deterministic binary serde codec. Event deliveries carry the
//! controller's current topology/device views so the stub can rebuild the
//! app context on its side of the isolation boundary.

use legosdn_codec::Codec;
use legosdn_controller::app::Command;
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_controller::snapshot;
use legosdn_netsim::SimTime;

/// One RPC frame.
#[derive(Clone, Debug, PartialEq, Codec)]
pub enum RpcMessage {
    // ------------------------------------------------ stub → proxy
    /// First message after stub start: name + subscriptions.
    Register {
        app_name: String,
        subscriptions: Vec<EventKind>,
    },
    /// Periodic liveness signal ("the stub also sends periodic heart beat
    /// messages").
    Heartbeat { seq: u64 },
    /// Event processed successfully; these are the app's commands.
    EventAck { seq: u64, commands: Vec<Command> },
    /// The app crashed processing the event (the stub survives to report it
    /// when crash reporting is enabled; otherwise the proxy sees silence).
    Crashed { seq: u64, panic_message: String },
    /// Snapshot bytes, on request.
    SnapshotReply { seq: u64, bytes: Vec<u8> },
    /// Restore finished.
    RestoreAck { seq: u64, ok: bool },

    // ------------------------------------------------ proxy → stub
    /// Deliver an event with the context needed to process it.
    EventDeliver {
        seq: u64,
        event: Event,
        topology: TopologyView,
        devices: DeviceView,
        now: SimTime,
    },
    /// Request a state snapshot (the checkpoint primitive).
    SnapshotRequest { seq: u64 },
    /// Restore app state from snapshot bytes (the CRIU-restore analogue).
    RestoreRequest { seq: u64, bytes: Vec<u8> },
    /// Orderly shutdown.
    Shutdown,
}

/// Encode a frame (length prefix + body).
#[must_use]
pub fn encode_frame(msg: &RpcMessage) -> Vec<u8> {
    let body = snapshot::to_bytes(msg).expect("rpc messages are plain data");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a frame produced by [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<RpcMessage, snapshot::CodecError> {
    if bytes.len() < 4 {
        return Err(snapshot::CodecError::Eof);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    if bytes.len() < 4 + len {
        return Err(snapshot::CodecError::Eof);
    }
    snapshot::from_bytes(&bytes[4..4 + len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::*;

    fn roundtrip(msg: RpcMessage) {
        let bytes = encode_frame(&msg);
        let back = decode_frame(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(RpcMessage::Register {
            app_name: "router".into(),
            subscriptions: vec![EventKind::PacketIn, EventKind::LinkDown],
        });
        roundtrip(RpcMessage::Heartbeat { seq: 42 });
        roundtrip(RpcMessage::EventAck {
            seq: 7,
            commands: vec![Command {
                dpid: DatapathId(1),
                msg: Message::FlowMod(
                    FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood)),
                ),
            }],
        });
        roundtrip(RpcMessage::Crashed {
            seq: 9,
            panic_message: "injected".into(),
        });
        roundtrip(RpcMessage::SnapshotReply {
            seq: 3,
            bytes: vec![1, 2, 3],
        });
        roundtrip(RpcMessage::RestoreAck { seq: 4, ok: true });
        roundtrip(RpcMessage::SnapshotRequest { seq: 5 });
        roundtrip(RpcMessage::RestoreRequest {
            seq: 6,
            bytes: vec![],
        });
        roundtrip(RpcMessage::Shutdown);
    }

    #[test]
    fn event_deliver_carries_views() {
        let mut topology = TopologyView::default();
        topology.switch_up(DatapathId(1), vec![]);
        let devices = DeviceView::default();
        roundtrip(RpcMessage::EventDeliver {
            seq: 1,
            event: Event::SwitchUp(DatapathId(1)),
            topology,
            devices,
            now: SimTime::from_secs(5),
        });
    }

    #[test]
    fn truncated_frames_error() {
        let bytes = encode_frame(&RpcMessage::Heartbeat { seq: 1 });
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
