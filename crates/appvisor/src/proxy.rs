//! The AppVisor Proxy: the controller-side half of the isolation layer
//! (paper §4.1).
//!
//! "The proxy dispatches the messages it receives from the controller to
//! the stub [...] maintains the per-application subscriptions in a table
//! [...] uses communication failures with the stub to detect that the
//! SDN-App has crashed."
//!
//! The proxy is deliberately runtime-agnostic: it exposes blocking
//! per-app RPCs (deliver / snapshot / restore) and heartbeat accounting;
//! the LegoSDN runtime (crate `legosdn`) supplies the dispatch policy and
//! Crash-Pad supplies recovery.

use crate::poll::{
    queue_duplex_pair, tcp_duplex_pair, udp_duplex_pair, Duplex, PolledTransport, Poller,
};
use crate::rpc::{decode_frame, encode_frame, RpcMessage};
use crate::stub::{spawn_stub, StubConfig, StubHost, StubReport};
use crate::transport::{ChannelTransport, TcpTransport, Transport, TransportError, UdpTransport};
use legosdn_controller::app::{Command, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::SimTime;
use legosdn_obs::{Obs, RecordKind};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which transport carries the proxy⇄stub RPC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory channels (fast path).
    Channel,
    /// UDP loopback (the paper-prototype configuration).
    Udp,
    /// TCP loopback with length framing (reliable-stream alternative).
    Tcp,
}

/// How stub channels are serviced on the proxy side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IoMode {
    /// One blocking transport (and one stub thread) per app — simple,
    /// and the reference the determinism suite anchors on.
    #[default]
    Blocking,
    /// All stub channels multiplexed onto a fixed pool of poll workers
    /// ([`crate::poll::Poller`]), with stubs hosted on a matching
    /// [`StubHost`] pool: thread count is a deployment constant, not a
    /// function of fleet size.
    Polled {
        /// Poll workers on each side (proxy poller + stub host), clamped
        /// to at least 1. Total I/O threads = `2 × io_threads`.
        io_threads: usize,
    },
}

impl IoMode {
    /// Parse a CLI-style name (`blocking` | `polled`). `polled` uses 4
    /// I/O threads per side; pair with a `--io-threads` flag to override.
    pub fn parse(s: &str) -> Option<IoMode> {
        match s {
            "blocking" => Some(IoMode::Blocking),
            "polled" => Some(IoMode::Polled { io_threads: 4 }),
            _ => None,
        }
    }
}

/// Proxy behaviour knobs.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// How long to wait for an event ack before declaring comm failure.
    pub deliver_timeout: Duration,
    /// How long to wait for snapshot/restore acks.
    pub rpc_timeout: Duration,
    /// Heartbeat staleness threshold.
    pub heartbeat_timeout: Duration,
    /// Stub-side settings used when the proxy spawns the stub itself.
    pub stub: StubConfig,
    /// Blocking thread-per-stub I/O or the readiness-polled multiplexed
    /// path; see [`IoMode`].
    pub io: IoMode,
    /// Which runtime worker shard owns this proxy (0 when the runtime is
    /// unsharded). Tags the polled path's thread names and poller metric
    /// labels so one shard's I/O is attributable; the proxy's behaviour
    /// is otherwise identical.
    pub worker: usize,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            deliver_timeout: Duration::from_millis(500),
            rpc_timeout: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(100),
            stub: StubConfig::default(),
            io: IoMode::default(),
            worker: 0,
        }
    }
}

/// Handle to a registered app.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AppHandle(pub usize);

/// Result of delivering an event to an isolated app.
#[derive(Clone, Debug, PartialEq)]
pub enum DeliverOutcome {
    /// The app processed the event; here are its commands.
    Commands(Vec<Command>),
    /// The stub reported the app crashed on this event.
    Crashed { panic_message: String },
    /// No response within the deadline — a communication failure, the
    /// paper's primary crash signal.
    CommFailure,
}

/// One app's result from a fan-out delivery: the outcome plus how long
/// the proxy waited for it (wall time from the end of the send phase),
/// so callers can attribute pipeline latency per app.
#[derive(Clone, Debug)]
pub struct FanoutDelivery {
    /// What the app did with the event (or why we could not ask it).
    pub outcome: Result<DeliverOutcome, ProxyError>,
    /// Wall time from the end of [`AppVisorProxy::fanout_send`] until
    /// this app's outcome was classified. Because collection is
    /// in-order, an app's elapsed time includes any wait spent on apps
    /// ahead of it; the *maximum* over a fan-out is the round's cost.
    pub elapsed: Duration,
}

/// In-flight fan-out: the frames are sent, the acks are not yet
/// collected. Produced by [`AppVisorProxy::fanout_send`], consumed by
/// [`AppVisorProxy::fanout_collect`]. Dropping it without collecting
/// leaves unread acks queued on the transports; the per-seq matching in
/// the recv loops discards stale acks, so that is safe but wasteful.
#[must_use = "collect the fan-out or the acks rot in the transports"]
pub struct FanoutTicket {
    handles: Vec<AppHandle>,
    seqs: Vec<Option<u64>>,
    started: Instant,
}

impl FanoutTicket {
    /// Apps included in this fan-out, in send (and collection) order.
    pub fn handles(&self) -> &[AppHandle] {
        &self.handles
    }
}

/// Proxy-level failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ProxyError {
    UnknownApp,
    Transport(TransportError),
    Timeout,
    RegistrationFailed(String),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::UnknownApp => write!(f, "unknown app handle"),
            ProxyError::Transport(e) => write!(f, "transport failure: {e}"),
            ProxyError::Timeout => write!(f, "rpc timeout"),
            ProxyError::RegistrationFailed(s) => write!(f, "registration failed: {s}"),
        }
    }
}

impl std::error::Error for ProxyError {}

/// Time remaining before `deadline`, or `None` once it has passed.
///
/// Every proxy recv loop gates on this so an expired deadline is
/// classified as a timeout exactly once, up front — we never hand a
/// zero-duration (or sub-tick) timeout to `recv_timeout`, which on the
/// UDP/TCP transports would round up to a full extra millisecond of
/// blocking and an extra wasted syscall per call site.
fn time_left(deadline: Instant) -> Option<Duration> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    (!remaining.is_zero()).then_some(remaining)
}

/// Per-app wire counters (the serialization-overhead evidence for E2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppWireStats {
    pub events_delivered: u64,
    pub crashes_detected: u64,
    pub comm_failures: u64,
    pub restores: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

struct AppSlot {
    name: String,
    subscriptions: Vec<EventKind>,
    transport: Box<dyn Transport>,
    stub_thread: Option<JoinHandle<StubReport>>,
    next_seq: u64,
    last_heartbeat: Instant,
    alive: bool,
    stats: AppWireStats,
    /// Tagged replies that arrived while a *different* tag was being
    /// collected (multi-event in-flight queue; also absorbs datagram
    /// reordering on the UDP transport). Consulted before the transport
    /// on every tagged collect.
    inbox: VecDeque<RpcMessage>,
    /// Tags whose replies will never be collected — the window cancelled
    /// them after an earlier failure. Replies matching these are dropped
    /// on sight; the set is pruned as later tags match (replies are
    /// FIFO per stub, so an entry below a matched tag is unreachable).
    cancelled: BTreeSet<u64>,
}

/// The tag of a stub→proxy reply, if the message carries one.
fn reply_seq(msg: &RpcMessage) -> Option<u64> {
    match msg {
        RpcMessage::EventAck { seq, .. }
        | RpcMessage::Crashed { seq, .. }
        | RpcMessage::SnapshotReply { seq, .. }
        | RpcMessage::RestoreAck { seq, .. } => Some(*seq),
        _ => None,
    }
}

/// The AppVisor proxy.
pub struct AppVisorProxy {
    config: ProxyConfig,
    apps: Vec<AppSlot>,
    obs: Obs,
    /// Proxy-side poll workers, created lazily on the first polled
    /// launch so `set_obs` has already run.
    poller: Option<Poller>,
    /// Stub-side worker pool for polled launches.
    stub_host: Option<StubHost>,
}

impl AppVisorProxy {
    /// An empty proxy, reporting to [`Obs::global`].
    #[must_use]
    pub fn new(config: ProxyConfig) -> Self {
        AppVisorProxy {
            config,
            apps: Vec::new(),
            obs: Obs::global(),
            poller: None,
            stub_host: None,
        }
    }

    /// Report metrics and journal records to `obs` instead of the global
    /// instance.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Spawn a stub hosting `app` over the chosen transport and register it.
    /// Under [`IoMode::Blocking`] the stub gets its own thread and the
    /// proxy a blocking transport; under [`IoMode::Polled`] the channel is
    /// split and multiplexed onto the shared poller / stub-host pools.
    pub fn launch_app(
        &mut self,
        app: Box<dyn SdnApp>,
        transport: TransportKind,
    ) -> Result<AppHandle, ProxyError> {
        if let IoMode::Polled { .. } = self.config.io {
            return self.launch_app_polled(app, transport);
        }
        let (proxy_side, handle): (Box<dyn Transport>, JoinHandle<StubReport>) = match transport {
            TransportKind::Channel => {
                let (a, b) = ChannelTransport::pair();
                (Box::new(a), spawn_stub(b, app, self.config.stub.clone()))
            }
            TransportKind::Udp => {
                let (a, b) = UdpTransport::pair()
                    .map_err(|e| ProxyError::Transport(TransportError::Io(e.to_string())))?;
                (Box::new(a), spawn_stub(b, app, self.config.stub.clone()))
            }
            TransportKind::Tcp => {
                let (a, b) = TcpTransport::pair()
                    .map_err(|e| ProxyError::Transport(TransportError::Io(e.to_string())))?;
                (Box::new(a), spawn_stub(b, app, self.config.stub.clone()))
            }
        };
        self.register_transport(proxy_side, Some(handle))
    }

    /// The polled launch path: split the channel, host the stub on the
    /// shared worker pool, register the proxy-side source with the
    /// poller, and present the slot a blocking [`PolledTransport`] facade
    /// so everything above this seam is unchanged.
    fn launch_app_polled(
        &mut self,
        app: Box<dyn SdnApp>,
        transport: TransportKind,
    ) -> Result<AppHandle, ProxyError> {
        let io_err = |e: std::io::Error| ProxyError::Transport(TransportError::Io(e.to_string()));
        let (proxy_dx, stub_dx): (Duplex, Duplex) = match transport {
            TransportKind::Channel => queue_duplex_pair(),
            TransportKind::Udp => udp_duplex_pair().map_err(io_err)?,
            TransportKind::Tcp => tcp_duplex_pair().map_err(io_err)?,
        };
        let io_threads = match self.config.io {
            IoMode::Polled { io_threads } => io_threads,
            IoMode::Blocking => unreachable!("polled launch under blocking io"),
        };
        let host = self
            .stub_host
            .get_or_insert_with(|| StubHost::new(io_threads));
        host.spawn(app, stub_dx, self.config.stub.clone())
            .map_err(ProxyError::Transport)?;
        let obs = self.obs.clone();
        let worker = self.config.worker;
        let poller = self
            .poller
            .get_or_insert_with(|| Poller::for_worker(io_threads, obs, worker));
        let queue = poller.register(proxy_dx.source);
        let polled = PolledTransport::new(proxy_dx.sink, queue);
        self.register_transport(Box::new(polled), None)
    }

    /// Register an app over an already-connected transport (the far end
    /// must run [`crate::stub::run_stub`]). Waits for the `Register` frame.
    pub fn register_transport(
        &mut self,
        mut transport: Box<dyn Transport>,
        stub_thread: Option<JoinHandle<StubReport>>,
    ) -> Result<AppHandle, ProxyError> {
        let deadline = Instant::now() + self.config.rpc_timeout;
        loop {
            let Some(remaining) = time_left(deadline) else {
                return Err(ProxyError::RegistrationFailed("no register frame".into()));
            };
            match transport.recv_timeout(remaining) {
                Ok(Some(frame)) => {
                    if let Ok(RpcMessage::Register {
                        app_name,
                        subscriptions,
                    }) = decode_frame(&frame)
                    {
                        self.apps.push(AppSlot {
                            name: app_name,
                            subscriptions,
                            transport,
                            stub_thread,
                            next_seq: 0,
                            last_heartbeat: Instant::now(),
                            alive: true,
                            stats: AppWireStats::default(),
                            inbox: VecDeque::new(),
                            cancelled: BTreeSet::new(),
                        });
                        return Ok(AppHandle(self.apps.len() - 1));
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(ProxyError::Transport(e)),
            }
        }
    }

    /// Registered app handles.
    #[must_use]
    pub fn handles(&self) -> Vec<AppHandle> {
        (0..self.apps.len()).map(AppHandle).collect()
    }

    /// An app's registered name.
    pub fn app_name(&self, h: AppHandle) -> Result<&str, ProxyError> {
        self.apps
            .get(h.0)
            .map(|s| s.name.as_str())
            .ok_or(ProxyError::UnknownApp)
    }

    /// An app's registered subscriptions.
    pub fn subscriptions(&self, h: AppHandle) -> Result<&[EventKind], ProxyError> {
        self.apps
            .get(h.0)
            .map(|s| s.subscriptions.as_slice())
            .ok_or(ProxyError::UnknownApp)
    }

    /// Is the app believed alive?
    pub fn is_alive(&self, h: AppHandle) -> Result<bool, ProxyError> {
        self.apps
            .get(h.0)
            .map(|s| s.alive)
            .ok_or(ProxyError::UnknownApp)
    }

    /// Wire counters for an app.
    pub fn wire_stats(&self, h: AppHandle) -> Result<AppWireStats, ProxyError> {
        self.apps
            .get(h.0)
            .map(|s| s.stats)
            .ok_or(ProxyError::UnknownApp)
    }

    /// Deliver an event to an isolated app and wait for its commands.
    pub fn deliver(
        &mut self,
        h: AppHandle,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> Result<DeliverOutcome, ProxyError> {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.deliver");
        let deliver_timeout = self.config.deliver_timeout;
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.next_seq += 1;
        let seq = slot.next_seq;
        let frame = encode_frame(&RpcMessage::EventDeliver {
            seq,
            event: event.clone(),
            topology: topology.clone(),
            devices: devices.clone(),
            now,
        });
        slot.stats.bytes_sent += frame.len() as u64;
        obs.counter("appvisor", "bytes_sent", &slot.name)
            .add(frame.len() as u64);
        obs.trace_event("send", &slot.name, "rpc");
        slot.transport.send(&frame).map_err(ProxyError::Transport)?;

        let deadline = Instant::now() + deliver_timeout;
        loop {
            let Some(remaining) = time_left(deadline) else {
                slot.stats.comm_failures += 1;
                slot.alive = false;
                obs.counter("appvisor", "comm_failures", &slot.name).inc();
                obs.trace_event("collect", &slot.name, "comm_failure");
                return Ok(DeliverOutcome::CommFailure);
            };
            match slot.transport.recv_timeout(remaining) {
                Ok(Some(frame)) => {
                    slot.stats.bytes_received += frame.len() as u64;
                    obs.counter("appvisor", "bytes_received", &slot.name)
                        .add(frame.len() as u64);
                    match decode_frame(&frame) {
                        Ok(RpcMessage::EventAck { seq: s, commands }) if s == seq => {
                            slot.stats.events_delivered += 1;
                            slot.last_heartbeat = Instant::now();
                            obs.counter("appvisor", "events_delivered", &slot.name)
                                .inc();
                            obs.trace_event("collect", &slot.name, "ok");
                            return Ok(DeliverOutcome::Commands(commands));
                        }
                        Ok(RpcMessage::Crashed {
                            seq: s,
                            panic_message,
                        }) if s == seq => {
                            slot.stats.crashes_detected += 1;
                            slot.alive = false;
                            obs.counter("appvisor", "crashes_detected", &slot.name)
                                .inc();
                            obs.trace_event("collect", &slot.name, "crashed");
                            return Ok(DeliverOutcome::Crashed { panic_message });
                        }
                        Ok(RpcMessage::Heartbeat { .. }) => {
                            slot.last_heartbeat = Instant::now();
                        }
                        // Stale acks from before a restore: ignore.
                        _ => {}
                    }
                }
                Ok(None) => {}
                Err(TransportError::Disconnected) => {
                    slot.stats.comm_failures += 1;
                    slot.alive = false;
                    obs.counter("appvisor", "comm_failures", &slot.name).inc();
                    obs.trace_event("collect", &slot.name, "comm_failure");
                    return Ok(DeliverOutcome::CommFailure);
                }
                Err(e) => return Err(ProxyError::Transport(e)),
            }
        }
    }

    /// Take a checkpoint of the app's state ("the proxy creates a
    /// checkpoint of an SDN-App process prior to dispatching every
    /// message").
    pub fn snapshot(&mut self, h: AppHandle) -> Result<Vec<u8>, ProxyError> {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.snapshot");
        let rpc_timeout = self.config.rpc_timeout;
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.next_seq += 1;
        let seq = slot.next_seq;
        let frame = encode_frame(&RpcMessage::SnapshotRequest { seq });
        slot.stats.bytes_sent += frame.len() as u64;
        obs.counter("appvisor", "bytes_sent", &slot.name)
            .add(frame.len() as u64);
        slot.transport.send(&frame).map_err(ProxyError::Transport)?;
        let deadline = Instant::now() + rpc_timeout;
        loop {
            let Some(remaining) = time_left(deadline) else {
                return Err(ProxyError::Timeout);
            };
            match slot.transport.recv_timeout(remaining) {
                Ok(Some(frame)) => {
                    slot.stats.bytes_received += frame.len() as u64;
                    obs.counter("appvisor", "bytes_received", &slot.name)
                        .add(frame.len() as u64);
                    match decode_frame(&frame) {
                        Ok(RpcMessage::SnapshotReply { seq: s, bytes }) if s == seq => {
                            return Ok(bytes);
                        }
                        Ok(RpcMessage::Heartbeat { .. }) => {
                            slot.last_heartbeat = Instant::now();
                        }
                        _ => {}
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(ProxyError::Transport(e)),
            }
        }
    }

    /// Restore the app from a checkpoint, reviving it if it was dead (the
    /// CRIU restore analogue).
    pub fn restore(&mut self, h: AppHandle, bytes: &[u8]) -> Result<bool, ProxyError> {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.restore");
        let rpc_timeout = self.config.rpc_timeout;
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.next_seq += 1;
        let seq = slot.next_seq;
        let frame = encode_frame(&RpcMessage::RestoreRequest {
            seq,
            bytes: bytes.to_vec(),
        });
        slot.stats.bytes_sent += frame.len() as u64;
        obs.counter("appvisor", "bytes_sent", &slot.name)
            .add(frame.len() as u64);
        slot.transport.send(&frame).map_err(ProxyError::Transport)?;
        let deadline = Instant::now() + rpc_timeout;
        loop {
            let Some(remaining) = time_left(deadline) else {
                return Err(ProxyError::Timeout);
            };
            match slot.transport.recv_timeout(remaining) {
                Ok(Some(frame)) => {
                    slot.stats.bytes_received += frame.len() as u64;
                    obs.counter("appvisor", "bytes_received", &slot.name)
                        .add(frame.len() as u64);
                    match decode_frame(&frame) {
                        Ok(RpcMessage::RestoreAck { seq: s, ok }) if s == seq => {
                            // Anything stashed or cancelled predates this
                            // restore and can never be collected: the
                            // in-flight queue starts clean.
                            slot.inbox.clear();
                            slot.cancelled.clear();
                            if ok {
                                slot.alive = true;
                                slot.stats.restores += 1;
                                slot.last_heartbeat = Instant::now();
                                obs.counter("appvisor", "restores", &slot.name).inc();
                            }
                            return Ok(ok);
                        }
                        Ok(RpcMessage::Heartbeat { .. }) => {
                            slot.last_heartbeat = Instant::now();
                        }
                        _ => {}
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(ProxyError::Transport(e)),
            }
        }
    }

    /// Deliver one event to many isolated apps **concurrently**: the event
    /// is pushed to every stub before any ack is awaited, so app processing
    /// overlaps across their threads. The paper's stubs are independent
    /// processes; this is the dispatch pattern that exploits it ("SDN-Apps
    /// [...] can handle multiple events in parallel", §5).
    ///
    /// Returns one [`FanoutDelivery`] per handle, in order, each carrying
    /// the outcome plus the wall time until that app's result was
    /// available. Unknown handles yield `Err` outcomes without aborting
    /// the rest.
    ///
    /// This is [`AppVisorProxy::fanout_send`] + [`AppVisorProxy::fanout_collect`]
    /// back to back; the pipelined runtime calls the halves directly so it
    /// can run in-process sandboxes between them while the stubs work.
    pub fn deliver_fanout(
        &mut self,
        handles: &[AppHandle],
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> Vec<FanoutDelivery> {
        let ticket = self.fanout_send(handles, event, topology, devices, now);
        self.fanout_collect(ticket)
    }

    /// Fan-out phase 1: push the event to every stub without awaiting any
    /// ack. Returns the ticket [`AppVisorProxy::fanout_collect`] needs to
    /// gather the results; the stubs start processing as soon as their
    /// frame lands, so work done between the two calls overlaps with them.
    pub fn fanout_send(
        &mut self,
        handles: &[AppHandle],
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> FanoutTicket {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.fanout_send");
        let mut seqs: Vec<Option<u64>> = Vec::with_capacity(handles.len());
        for h in handles {
            match self.apps.get_mut(h.0) {
                Some(slot) => {
                    slot.next_seq += 1;
                    let seq = slot.next_seq;
                    let frame = encode_frame(&RpcMessage::EventDeliver {
                        seq,
                        event: event.clone(),
                        topology: topology.clone(),
                        devices: devices.clone(),
                        now,
                    });
                    slot.stats.bytes_sent += frame.len() as u64;
                    obs.counter("appvisor", "bytes_sent", &slot.name)
                        .add(frame.len() as u64);
                    match slot.transport.send(&frame) {
                        Ok(()) => {
                            obs.trace_event("send", &slot.name, "fanout");
                            seqs.push(Some(seq));
                        }
                        Err(_) => {
                            slot.alive = false;
                            slot.stats.comm_failures += 1;
                            obs.counter("appvisor", "comm_failures", &slot.name).inc();
                            obs.trace_event("send", &slot.name, "send_failed");
                            seqs.push(None);
                        }
                    }
                }
                None => seqs.push(None),
            }
        }
        FanoutTicket {
            handles: handles.to_vec(),
            seqs,
            started: Instant::now(),
        }
    }

    /// Fan-out phase 2: gather one result per handle in the ticket, in
    /// order (the stubs worked in parallel already). Each result carries
    /// the wall time from the end of the send phase to that app's outcome
    /// being classified, recorded in the `appvisor.fanout_app_ns`
    /// histogram per app.
    pub fn fanout_collect(&mut self, ticket: FanoutTicket) -> Vec<FanoutDelivery> {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.fanout_collect");
        let FanoutTicket {
            handles,
            seqs,
            started,
        } = ticket;
        let deadline = started + self.config.deliver_timeout;
        handles
            .iter()
            .zip(seqs)
            .map(|(h, seq)| {
                let outcome = self.collect_one(*h, seq, deadline, &obs);
                let elapsed = started.elapsed();
                if let Some(slot) = self.apps.get(h.0) {
                    obs.histogram("appvisor", "fanout_app_ns", &slot.name)
                        .observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
                }
                FanoutDelivery { outcome, elapsed }
            })
            .collect()
    }

    /// Await one app's ack for an already-sent fan-out frame.
    fn collect_one(
        &mut self,
        h: AppHandle,
        seq: Option<u64>,
        deadline: Instant,
        obs: &Obs,
    ) -> Result<DeliverOutcome, ProxyError> {
        let Some(slot) = self.apps.get_mut(h.0) else {
            return Err(ProxyError::UnknownApp);
        };
        let Some(seq) = seq else {
            obs.trace_event("collect", &slot.name, "comm_failure");
            return Ok(DeliverOutcome::CommFailure);
        };
        loop {
            let Some(remaining) = time_left(deadline) else {
                slot.stats.comm_failures += 1;
                slot.alive = false;
                obs.counter("appvisor", "comm_failures", &slot.name).inc();
                obs.trace_event("collect", &slot.name, "comm_failure");
                return Ok(DeliverOutcome::CommFailure);
            };
            match slot.transport.recv_timeout(remaining) {
                Ok(Some(frame)) => {
                    slot.stats.bytes_received += frame.len() as u64;
                    obs.counter("appvisor", "bytes_received", &slot.name)
                        .add(frame.len() as u64);
                    match decode_frame(&frame) {
                        Ok(RpcMessage::EventAck { seq: s, commands }) if s == seq => {
                            slot.stats.events_delivered += 1;
                            slot.last_heartbeat = Instant::now();
                            obs.counter("appvisor", "events_delivered", &slot.name)
                                .inc();
                            obs.trace_event("collect", &slot.name, "ok");
                            return Ok(DeliverOutcome::Commands(commands));
                        }
                        Ok(RpcMessage::Crashed {
                            seq: s,
                            panic_message,
                        }) if s == seq => {
                            slot.stats.crashes_detected += 1;
                            slot.alive = false;
                            obs.counter("appvisor", "crashes_detected", &slot.name)
                                .inc();
                            obs.trace_event("collect", &slot.name, "crashed");
                            return Ok(DeliverOutcome::Crashed { panic_message });
                        }
                        Ok(RpcMessage::Heartbeat { .. }) => {
                            slot.last_heartbeat = Instant::now();
                        }
                        _ => {}
                    }
                }
                Ok(None) => {}
                Err(TransportError::Disconnected) => {
                    slot.stats.comm_failures += 1;
                    slot.alive = false;
                    obs.counter("appvisor", "comm_failures", &slot.name).inc();
                    obs.trace_event("collect", &slot.name, "comm_failure");
                    return Ok(DeliverOutcome::CommFailure);
                }
                Err(e) => return Err(ProxyError::Transport(e)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Tagged multi-event in-flight queue (the cross-event dispatch
    // window): queue_* pushes a request without awaiting the reply,
    // collect_* awaits a specific tag. A stub processes its queue in
    // order, so event k+1 can be on its thread while the proxy is still
    // gathering event k from its peers.
    // ------------------------------------------------------------------

    /// Queue one event delivery on an app's RPC stream without awaiting
    /// the ack. `Ok(Some(tag))` is the handle for
    /// [`AppVisorProxy::collect_deliver`]; `Ok(None)` means the send
    /// itself failed (recorded as a comm failure, the slot marked dead) —
    /// classify the delivery as [`DeliverOutcome::CommFailure`] without
    /// collecting.
    pub fn queue_deliver(
        &mut self,
        h: AppHandle,
        event: &Event,
        topology: &TopologyView,
        devices: &DeviceView,
        now: SimTime,
    ) -> Result<Option<u64>, ProxyError> {
        let obs = self.obs.clone();
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.next_seq += 1;
        let seq = slot.next_seq;
        let frame = encode_frame(&RpcMessage::EventDeliver {
            seq,
            event: event.clone(),
            topology: topology.clone(),
            devices: devices.clone(),
            now,
        });
        let tag = send_queued(slot, &frame, seq, &obs);
        let outcome = if tag.is_some() {
            "queued"
        } else {
            "send_failed"
        };
        obs.trace_event("send", &slot.name, outcome);
        Ok(tag)
    }

    /// Queue a snapshot request without awaiting the reply. Interleaved
    /// between two queued deliveries it captures the state *between*
    /// those events — exactly the pre-event checkpoint the sequential
    /// protocol takes, collected lazily via
    /// [`AppVisorProxy::collect_snapshot`].
    pub fn queue_snapshot(&mut self, h: AppHandle) -> Result<Option<u64>, ProxyError> {
        let obs = self.obs.clone();
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.next_seq += 1;
        let seq = slot.next_seq;
        let frame = encode_frame(&RpcMessage::SnapshotRequest { seq });
        let tag = send_queued(slot, &frame, seq, &obs);
        let outcome = if tag.is_some() {
            "queued"
        } else {
            "send_failed"
        };
        obs.trace_event("snap_send", &slot.name, outcome);
        Ok(tag)
    }

    /// Collect the outcome of a queued delivery. The timeout window opens
    /// *now*, not at send time: a queued stub is legitimately busy with
    /// the deliveries ahead of this one.
    pub fn collect_deliver(
        &mut self,
        h: AppHandle,
        seq: u64,
    ) -> Result<DeliverOutcome, ProxyError> {
        let obs = self.obs.clone();
        let deadline = Instant::now() + self.config.deliver_timeout;
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        match await_tag(slot, seq, deadline, &obs) {
            Ok(Some(RpcMessage::EventAck { commands, .. })) => {
                slot.stats.events_delivered += 1;
                slot.last_heartbeat = Instant::now();
                obs.counter("appvisor", "events_delivered", &slot.name)
                    .inc();
                obs.trace_event("collect", &slot.name, "ok");
                Ok(DeliverOutcome::Commands(commands))
            }
            Ok(Some(RpcMessage::Crashed { panic_message, .. })) => {
                slot.stats.crashes_detected += 1;
                slot.alive = false;
                obs.counter("appvisor", "crashes_detected", &slot.name)
                    .inc();
                obs.trace_event("collect", &slot.name, "crashed");
                Ok(DeliverOutcome::Crashed { panic_message })
            }
            Ok(Some(_)) | Ok(None) | Err(TransportError::Disconnected) => {
                slot.stats.comm_failures += 1;
                slot.alive = false;
                obs.counter("appvisor", "comm_failures", &slot.name).inc();
                obs.trace_event("collect", &slot.name, "comm_failure");
                Ok(DeliverOutcome::CommFailure)
            }
            Err(e) => Err(ProxyError::Transport(e)),
        }
    }

    /// Collect the bytes of a queued snapshot request.
    pub fn collect_snapshot(&mut self, h: AppHandle, seq: u64) -> Result<Vec<u8>, ProxyError> {
        let obs = self.obs.clone();
        let deadline = Instant::now() + self.config.rpc_timeout;
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        match await_tag(slot, seq, deadline, &obs) {
            Ok(Some(RpcMessage::SnapshotReply { bytes, .. })) => {
                obs.trace_event("snap_collect", &slot.name, "ok");
                Ok(bytes)
            }
            Ok(Some(_) | None) => {
                obs.trace_event("snap_collect", &slot.name, "timeout");
                Err(ProxyError::Timeout)
            }
            Err(e) => Err(ProxyError::Transport(e)),
        }
    }

    /// Drop queued-but-uncollected tags after a failure: their replies —
    /// if any ever arrive; a dead stub drops the requests silently — are
    /// discarded on sight, and any already stashed in the inbox are
    /// purged. Must cover every tag of the app's cancelled window slots
    /// before the app is restored and the window refills.
    pub fn cancel_pending(&mut self, h: AppHandle, seqs: &[u64]) -> Result<(), ProxyError> {
        let slot = self.apps.get_mut(h.0).ok_or(ProxyError::UnknownApp)?;
        slot.cancelled.extend(seqs.iter().copied());
        let AppSlot {
            inbox, cancelled, ..
        } = slot;
        inbox.retain(|m| reply_seq(m).is_none_or(|s| !cancelled.contains(&s)));
        Ok(())
    }

    /// Drain pending heartbeats (non-blocking-ish) and return the apps whose
    /// heartbeat is stale — the paper's background crash detector.
    pub fn check_liveness(&mut self) -> Vec<AppHandle> {
        let obs = self.obs.clone();
        let _span = obs.span("appvisor.check_liveness");
        let threshold = self.config.heartbeat_timeout;
        let mut stale = Vec::new();
        for (i, slot) in self.apps.iter_mut().enumerate() {
            // Drain whatever is already queued, without blocking: the old
            // sub-tick `recv_timeout(1µs)` violated the `time_left`
            // contract — the socket transports round it up to a full
            // millisecond of blocking plus a wasted syscall per app, so a
            // 1000-app sweep could stall the control loop for a second.
            while let Ok(Some(frame)) = slot.transport.try_recv() {
                slot.stats.bytes_received += frame.len() as u64;
                obs.counter("appvisor", "bytes_received", &slot.name)
                    .add(frame.len() as u64);
                if matches!(decode_frame(&frame), Ok(RpcMessage::Heartbeat { .. })) {
                    slot.last_heartbeat = Instant::now();
                }
            }
            if slot.alive && slot.last_heartbeat.elapsed() > threshold {
                slot.alive = false;
                obs.record(RecordKind::HeartbeatMiss {
                    app: slot.name.clone(),
                });
                obs.counter("appvisor", "heartbeat_misses", &slot.name)
                    .inc();
                stale.push(AppHandle(i));
            }
        }
        stale
    }

    /// Shut all stubs down and collect their reports. Blocking stubs are
    /// joined; hosted (polled) stubs get a grace period to serve their
    /// `Shutdown` frames before the host and poller pools stop.
    pub fn shutdown(mut self) -> Vec<StubReport> {
        let mut reports = Vec::new();
        for slot in &mut self.apps {
            let _ = slot.transport.send(&encode_frame(&RpcMessage::Shutdown));
        }
        for slot in &mut self.apps {
            if let Some(handle) = slot.stub_thread.take() {
                if let Ok(report) = handle.join() {
                    reports.push(report);
                }
            }
        }
        if let Some(host) = self.stub_host.take() {
            reports.extend(host.shutdown(Duration::from_secs(2)));
        }
        if let Some(mut poller) = self.poller.take() {
            poller.shutdown();
        }
        reports
    }
}

/// Account and push an already-encoded queued request; on send failure
/// mark the slot dead and record the comm failure (mirrors
/// [`AppVisorProxy::fanout_send`]'s per-slot behaviour).
fn send_queued(slot: &mut AppSlot, frame: &[u8], seq: u64, obs: &Obs) -> Option<u64> {
    slot.stats.bytes_sent += frame.len() as u64;
    obs.counter("appvisor", "bytes_sent", &slot.name)
        .add(frame.len() as u64);
    match slot.transport.send(frame) {
        Ok(()) => Some(seq),
        Err(_) => {
            slot.alive = false;
            slot.stats.comm_failures += 1;
            obs.counter("appvisor", "comm_failures", &slot.name).inc();
            None
        }
    }
}

/// Await the reply tagged `seq`: inbox first, then the transport.
/// Later tags' replies are stashed in the inbox, cancelled and stale
/// tags are dropped, and the cancelled set is pruned below a matched tag
/// (FIFO replies make those unreachable). `Ok(None)` is a timeout.
fn await_tag(
    slot: &mut AppSlot,
    seq: u64,
    deadline: Instant,
    obs: &Obs,
) -> Result<Option<RpcMessage>, TransportError> {
    if let Some(pos) = slot.inbox.iter().position(|m| reply_seq(m) == Some(seq)) {
        let msg = slot.inbox.remove(pos).expect("position is in range");
        slot.cancelled = slot.cancelled.split_off(&seq);
        return Ok(Some(msg));
    }
    loop {
        let Some(remaining) = time_left(deadline) else {
            return Ok(None);
        };
        match slot.transport.recv_timeout(remaining) {
            Ok(Some(frame)) => {
                slot.stats.bytes_received += frame.len() as u64;
                obs.counter("appvisor", "bytes_received", &slot.name)
                    .add(frame.len() as u64);
                let Ok(msg) = decode_frame(&frame) else {
                    continue;
                };
                if matches!(msg, RpcMessage::Heartbeat { .. }) {
                    slot.last_heartbeat = Instant::now();
                    continue;
                }
                match reply_seq(&msg) {
                    Some(s) if s == seq => {
                        slot.cancelled = slot.cancelled.split_off(&seq);
                        return Ok(Some(msg));
                    }
                    Some(s) if slot.cancelled.contains(&s) => {}
                    // A later tag's reply outran ours (UDP datagrams can
                    // reorder) or sits ahead of a reply we collect later:
                    // keep it for that collect.
                    Some(s) if s > seq => slot.inbox.push_back(msg),
                    // Below the tag we are waiting on: already collected
                    // or pre-restore — stale either way.
                    _ => {}
                }
            }
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::app::{Ctx, RestoreError};
    use legosdn_openflow::prelude::*;

    struct TestApp {
        count: u32,
        crash_on_count: Option<u32>,
    }

    impl SdnApp for TestApp {
        fn name(&self) -> &str {
            "proxy-test-app"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::PacketIn, EventKind::SwitchUp]
        }
        fn on_event(&mut self, _event: &Event, ctx: &mut Ctx<'_>) {
            self.count += 1;
            if Some(self.count) == self.crash_on_count {
                panic!("proxy test crash");
            }
            ctx.send(DatapathId(self.count as u64), Message::BarrierRequest);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.count =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn proxy() -> AppVisorProxy {
        AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(300),
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_millis(100),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: true,
            },
            ..Default::default()
        })
    }

    fn deliver(p: &mut AppVisorProxy, h: AppHandle) -> DeliverOutcome {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        p.deliver(
            h,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn launch_register_deliver_channel() {
        let mut p = proxy();
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Channel,
            )
            .unwrap();
        assert_eq!(p.app_name(h).unwrap(), "proxy-test-app");
        assert_eq!(p.subscriptions(h).unwrap().len(), 2);
        match deliver(&mut p, h) {
            DeliverOutcome::Commands(cmds) => {
                assert_eq!(cmds.len(), 1);
                assert_eq!(cmds[0].dpid, DatapathId(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = p.wire_stats(h).unwrap();
        assert_eq!(stats.events_delivered, 1);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
        let reports = p.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].events_processed, 1);
    }

    #[test]
    fn launch_register_deliver_udp() {
        let mut p = proxy();
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Udp,
            )
            .unwrap();
        match deliver(&mut p, h) {
            DeliverOutcome::Commands(cmds) => assert_eq!(cmds.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        p.shutdown();
    }

    #[test]
    fn crash_detected_and_recovered_via_checkpoint() {
        let mut p = proxy();
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(2),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        // Checkpoint before each event (the paper's discipline).
        let checkpoint = p.snapshot(h).unwrap();
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Commands(_)));
        let checkpoint2 = p.snapshot(h).unwrap();
        match deliver(&mut p, h) {
            DeliverOutcome::Crashed { panic_message } => {
                assert!(panic_message.contains("proxy test crash"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!p.is_alive(h).unwrap());
        // Restore to the pre-crash checkpoint: alive again, same state.
        assert!(p.restore(h, &checkpoint2).unwrap());
        assert!(p.is_alive(h).unwrap());
        // Replaying the same (deterministic) event crashes again.
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Crashed { .. }));
        // Restoring the earlier checkpoint shifts the crash point.
        assert!(p.restore(h, &checkpoint).unwrap());
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Commands(_)));
        let _ = p.shutdown();
    }

    #[test]
    fn comm_failure_on_silent_crash() {
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(100),
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_millis(50),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: false, // dead process mode
            },
            ..Default::default()
        });
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(1),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        assert_eq!(deliver(&mut p, h), DeliverOutcome::CommFailure);
        assert!(!p.is_alive(h).unwrap());
        assert_eq!(p.wire_stats(h).unwrap().comm_failures, 1);
        let _ = p.shutdown();
    }

    #[test]
    fn heartbeat_staleness_detects_silent_death() {
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(200),
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_millis(60),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: false,
            },
            ..Default::default()
        });
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(1),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        // Healthy: heartbeats keep it alive.
        std::thread::sleep(Duration::from_millis(80));
        assert!(p.check_liveness().is_empty());
        // Kill it silently (comm failure on the event), then wait out the
        // heartbeat threshold.
        let _ = deliver(&mut p, h); // CommFailure marks it dead already
        let stale = p.check_liveness();
        assert!(stale.is_empty(), "already marked dead, not re-reported");
        let _ = p.shutdown();
    }

    #[test]
    fn heartbeat_detector_fires_without_delivery() {
        // Crash the app via a delivery on a second proxy-app, then observe
        // staleness on the first... simpler: stop heartbeats by crashing
        // through delivery is the only kill switch we have; instead verify
        // the detector's arithmetic by shrinking the threshold below the
        // heartbeat period.
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(200),
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_millis(1),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(500), // slower than threshold
                report_crashes: true,
            },
            ..Default::default()
        });
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Channel,
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let stale = p.check_liveness();
        assert_eq!(stale, vec![h], "no heartbeat within 1ms threshold");
        let _ = p.shutdown();
    }

    #[test]
    fn fanout_delivers_to_all_in_parallel() {
        let mut p = proxy();
        let handles: Vec<AppHandle> = (0..4)
            .map(|_| {
                p.launch_app(
                    Box::new(TestApp {
                        count: 0,
                        crash_on_count: None,
                    }),
                    TransportKind::Channel,
                )
                .unwrap()
            })
            .collect();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let results = p.deliver_fanout(
            &handles,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                matches!(&r.outcome, Ok(DeliverOutcome::Commands(c)) if c.len() == 1),
                "{r:?}"
            );
        }
        // Mixed with a crasher and a bogus handle.
        let crashy = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(1),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        let mut all = handles.clone();
        all.push(crashy);
        all.push(AppHandle(99));
        let results = p.deliver_fanout(
            &all,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        assert!(matches!(
            &results[4].outcome,
            Ok(DeliverOutcome::Crashed { .. })
        ));
        assert!(matches!(&results[5].outcome, Err(ProxyError::UnknownApp)));
        // Healthy apps unaffected by their neighbor's crash.
        for r in &results[..4] {
            assert!(matches!(&r.outcome, Ok(DeliverOutcome::Commands(_))));
        }
        let _ = p.shutdown();
    }

    #[test]
    fn fanout_send_collect_split_matches_composed_call() {
        // The pipelined runtime calls the halves directly so it can run
        // local sandboxes between them; the split must behave exactly
        // like the composed `deliver_fanout` and report per-app wall time.
        let mut p = proxy();
        let handles: Vec<AppHandle> = (0..3)
            .map(|_| {
                p.launch_app(
                    Box::new(TestApp {
                        count: 0,
                        crash_on_count: None,
                    }),
                    TransportKind::Channel,
                )
                .unwrap()
            })
            .collect();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let ticket = p.fanout_send(
            &handles,
            &Event::SwitchUp(DatapathId(7)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        assert_eq!(ticket.handles(), &handles[..]);
        // Stubs are processing while the caller is free to do other work.
        let results = p.fanout_collect(ticket);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                matches!(&r.outcome, Ok(DeliverOutcome::Commands(c)) if c.len() == 1),
                "{r:?}"
            );
            assert!(r.elapsed < Duration::from_secs(1));
        }
        let _ = p.shutdown();
    }

    #[test]
    fn expired_deadline_is_one_timeout_classification() {
        // A zero deliver timeout means the deadline has already passed when
        // the recv loop starts: it must short-circuit to exactly one
        // CommFailure — one comm_failures increment, no heartbeat-miss
        // double count — without issuing a zero-duration recv.
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::ZERO,
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(10),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: true,
            },
            ..Default::default()
        });
        let obs = legosdn_obs::Obs::new();
        p.set_obs(obs.clone());
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Channel,
            )
            .unwrap();
        assert_eq!(deliver(&mut p, h), DeliverOutcome::CommFailure);
        let stats = p.wire_stats(h).unwrap();
        assert_eq!(stats.comm_failures, 1, "exactly one classification");
        assert_eq!(stats.events_delivered, 0);
        assert_eq!(
            obs.counter("appvisor", "comm_failures", "proxy-test-app")
                .get(),
            1
        );
        assert_eq!(
            obs.counter("appvisor", "heartbeat_misses", "proxy-test-app")
                .get(),
            0,
            "timeout must not also count as a heartbeat miss"
        );
        let _ = p.shutdown();
    }

    #[test]
    fn expired_rpc_deadline_times_out_snapshot_and_restore() {
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(300),
            rpc_timeout: Duration::ZERO,
            heartbeat_timeout: Duration::from_secs(10),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: true,
            },
            ..Default::default()
        });
        // Registration also runs on rpc_timeout; hand-register over a raw
        // transport pair so launch itself is not subject to the zero
        // deadline.
        let (proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on_count: None,
            }),
            p.config.stub.clone(),
        );
        // Restore a sane registration window just for the handshake.
        p.config.rpc_timeout = Duration::from_secs(1);
        let h = p
            .register_transport(Box::new(proxy_side), Some(handle))
            .unwrap();
        p.config.rpc_timeout = Duration::ZERO;
        assert_eq!(p.snapshot(h).unwrap_err(), ProxyError::Timeout);
        assert_eq!(p.restore(h, &[]).unwrap_err(), ProxyError::Timeout);
        let _ = p.shutdown();
    }

    #[test]
    fn tagged_queue_interleaves_deliveries_and_snapshots_in_order() {
        // The windowed dispatch pattern: [deliver k, snapshot, deliver
        // k+1] queued up front, collected in order. The snapshot queued
        // between the deliveries must capture the state *between* them.
        let mut p = proxy();
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Channel,
            )
            .unwrap();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let ev = Event::SwitchUp(DatapathId(1));
        let d1 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        let s1 = p.queue_snapshot(h).unwrap().unwrap();
        let d2 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        assert!(d1 < s1 && s1 < d2, "tags are the per-slot send order");
        assert!(matches!(
            p.collect_deliver(h, d1).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        let between = p.collect_snapshot(h, s1).unwrap();
        assert_eq!(between, 1u32.to_be_bytes().to_vec(), "one event seen");
        assert!(matches!(
            p.collect_deliver(h, d2).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        assert_eq!(p.wire_stats(h).unwrap().events_delivered, 2);
        let _ = p.shutdown();
    }

    #[test]
    fn out_of_order_replies_park_in_the_inbox() {
        // Hand-run the stub side so replies can be sent out of tag order
        // (as UDP datagram reordering would): the collect for the earlier
        // tag must stash the later reply, and the later collect must find
        // it in the inbox without touching the transport.
        let (proxy_side, mut stub_side) = ChannelTransport::pair();
        stub_side
            .send(&encode_frame(&RpcMessage::Register {
                app_name: "manual".into(),
                subscriptions: vec![EventKind::PacketIn],
            }))
            .unwrap();
        let mut p = proxy();
        let h = p.register_transport(Box::new(proxy_side), None).unwrap();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let ev = Event::SwitchUp(DatapathId(1));
        let d1 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        let d2 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        // Reply to d2 first, then d1.
        stub_side
            .send(&encode_frame(&RpcMessage::EventAck {
                seq: d2,
                commands: vec![],
            }))
            .unwrap();
        stub_side
            .send(&encode_frame(&RpcMessage::Crashed {
                seq: d1,
                panic_message: "late".into(),
            }))
            .unwrap();
        assert!(matches!(
            p.collect_deliver(h, d1).unwrap(),
            DeliverOutcome::Crashed { .. }
        ));
        assert!(matches!(
            p.collect_deliver(h, d2).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        assert_eq!(p.wire_stats(h).unwrap().crashes_detected, 1);
    }

    #[test]
    fn cancelled_tags_are_dropped_and_restore_resets_the_queue() {
        // Crash mid-window: collect the crash, cancel the queued
        // follow-ups, restore, and the stream must be clean for re-sends.
        let mut p = proxy();
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(2),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let ev = Event::SwitchUp(DatapathId(1));
        let checkpoint = p.snapshot(h).unwrap();
        let tags: Vec<u64> = (0..3)
            .map(|_| {
                p.queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
                    .unwrap()
                    .unwrap()
            })
            .collect();
        assert!(matches!(
            p.collect_deliver(h, tags[0]).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        assert!(matches!(
            p.collect_deliver(h, tags[1]).unwrap(),
            DeliverOutcome::Crashed { .. }
        ));
        assert!(!p.is_alive(h).unwrap());
        // The dead stub silently dropped tags[2]; never collect it.
        p.cancel_pending(h, &tags[2..]).unwrap();
        assert!(p.restore(h, &checkpoint).unwrap());
        assert!(p.is_alive(h).unwrap());
        // Fresh delivery on the cleaned stream works (count restored to
        // 0, so the crash-on-2 bug is one event away again).
        let d = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        assert!(matches!(
            p.collect_deliver(h, d).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        let _ = p.shutdown();
    }

    #[test]
    fn unknown_handle_errors() {
        let mut p = proxy();
        assert_eq!(
            p.app_name(AppHandle(9)).unwrap_err(),
            ProxyError::UnknownApp
        );
        assert!(p.snapshot(AppHandle(9)).is_err());
    }

    fn polled_proxy(io_threads: usize) -> AppVisorProxy {
        AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(500),
            rpc_timeout: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_millis(100),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(10),
                report_crashes: true,
            },
            io: IoMode::Polled { io_threads },
            ..Default::default()
        })
    }

    #[test]
    fn polled_launch_deliver_crash_restore_roundtrip() {
        // The full proxy protocol — deliver, snapshot, crash detection,
        // restore, replay — over the multiplexed path.
        let mut p = polled_proxy(2);
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: Some(2),
                }),
                TransportKind::Channel,
            )
            .unwrap();
        assert_eq!(p.app_name(h).unwrap(), "proxy-test-app");
        let checkpoint = p.snapshot(h).unwrap();
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Commands(_)));
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Crashed { .. }));
        assert!(!p.is_alive(h).unwrap());
        assert!(p.restore(h, &checkpoint).unwrap());
        assert!(matches!(deliver(&mut p, h), DeliverOutcome::Commands(_)));
        let reports = p.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].crashes_contained, 1);
        assert_eq!(reports[0].restores, 1);
    }

    #[test]
    fn polled_launch_works_over_sockets() {
        for kind in [TransportKind::Udp, TransportKind::Tcp] {
            let mut p = polled_proxy(1);
            let h = p
                .launch_app(
                    Box::new(TestApp {
                        count: 0,
                        crash_on_count: None,
                    }),
                    kind,
                )
                .unwrap();
            match deliver(&mut p, h) {
                DeliverOutcome::Commands(cmds) => assert_eq!(cmds.len(), 1),
                other => panic!("unexpected {other:?} over {kind:?}"),
            }
            let reports = p.shutdown();
            assert_eq!(reports.len(), 1, "over {kind:?}");
        }
    }

    #[test]
    fn polled_tagged_queue_interleaves_like_blocking() {
        // The windowed-dispatch machinery (queue/collect with tags,
        // inbox stashing) must behave identically over the polled path.
        let mut p = polled_proxy(2);
        let h = p
            .launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Channel,
            )
            .unwrap();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let ev = Event::SwitchUp(DatapathId(1));
        let d1 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        let s1 = p.queue_snapshot(h).unwrap().unwrap();
        let d2 = p
            .queue_deliver(h, &ev, &topo, &dev, SimTime::ZERO)
            .unwrap()
            .unwrap();
        assert!(matches!(
            p.collect_deliver(h, d1).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        assert_eq!(
            p.collect_snapshot(h, s1).unwrap(),
            1u32.to_be_bytes().to_vec()
        );
        assert!(matches!(
            p.collect_deliver(h, d2).unwrap(),
            DeliverOutcome::Commands(_)
        ));
        let _ = p.shutdown();
    }

    #[test]
    fn polled_fleet_shares_the_io_pool() {
        // Many apps, one small pool: a fan-out still reaches everyone and
        // shutdown retires every hosted stub.
        let mut p = polled_proxy(2);
        let handles: Vec<AppHandle> = (0..24)
            .map(|_| {
                p.launch_app(
                    Box::new(TestApp {
                        count: 0,
                        crash_on_count: None,
                    }),
                    TransportKind::Channel,
                )
                .unwrap()
            })
            .collect();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let results = p.deliver_fanout(
            &handles,
            &Event::SwitchUp(DatapathId(1)),
            &topo,
            &dev,
            SimTime::ZERO,
        );
        for r in &results {
            assert!(
                matches!(&r.outcome, Ok(DeliverOutcome::Commands(_))),
                "{r:?}"
            );
        }
        let reports = p.shutdown();
        assert_eq!(reports.len(), 24);
        assert!(reports.iter().all(|r| r.events_processed == 1));
    }

    #[test]
    fn liveness_sweep_is_sub_millisecond_across_many_socket_apps() {
        // Regression for the 1µs recv_timeout in check_liveness: the UDP
        // transport rounded it up to a blocking millisecond per app, so a
        // 16-app sweep cost ≥16ms. The try_recv drain must keep a sweep
        // under a millisecond regardless of app count.
        let mut p = AppVisorProxy::new(ProxyConfig {
            deliver_timeout: Duration::from_millis(300),
            rpc_timeout: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_secs(10),
            stub: StubConfig {
                heartbeat_period: Duration::from_millis(50),
                report_crashes: true,
            },
            ..Default::default()
        });
        for _ in 0..16 {
            p.launch_app(
                Box::new(TestApp {
                    count: 0,
                    crash_on_count: None,
                }),
                TransportKind::Udp,
            )
            .unwrap();
        }
        // Best of several sweeps, so scheduler noise cannot fail the
        // assertion: the old code floor was 16ms on *every* sweep.
        let best = (0..5)
            .map(|_| {
                let start = Instant::now();
                let stale = p.check_liveness();
                assert!(stale.is_empty());
                start.elapsed()
            })
            .min()
            .unwrap();
        assert!(
            best < Duration::from_millis(1),
            "liveness sweep took {best:?}; the non-blocking drain is broken"
        );
        let _ = p.shutdown();
    }
}
