//! AppVisor — the isolation layer between SDN applications and the
//! controller (paper §3.1, §4.1).
//!
//! The paper's architecture splits app hosting into two halves:
//!
//! - the **proxy** ([`proxy::AppVisorProxy`]) runs alongside the controller,
//!   dispatches events to isolated apps, maintains the subscription table,
//!   and detects crashes via explicit reports, communication failures, and
//!   heartbeat loss;
//! - the **stub** ([`stub::run_stub`]) hosts one app in its own fault
//!   domain, converts controller calls to RPC frames, and sends periodic
//!   heartbeats.
//!
//! The RPC rides a pluggable [`transport::Transport`]: in-memory channels or
//! UDP loopback (the paper's prototype transport). Fault domains are
//! sandboxed threads with panic containment — the process-isolation
//! substitution documented in DESIGN.md §2.

pub mod poll;
pub mod proxy;
pub mod rpc;
pub mod stub;
pub mod transport;

pub use poll::{
    queue_duplex_pair, tcp_duplex_pair, udp_duplex_pair, Duplex, FrameSink, FrameSource,
    PolledTransport, Poller, SlotQueue,
};
pub use proxy::{
    AppHandle, AppVisorProxy, AppWireStats, DeliverOutcome, FanoutDelivery, FanoutTicket, IoMode,
    ProxyConfig, ProxyError, TransportKind,
};
pub use rpc::{decode_frame, encode_frame, RpcMessage};
pub use stub::{run_stub, spawn_stub, StubConfig, StubHost, StubReport};
pub use transport::{
    ChannelTransport, FlakyTransport, TcpTransport, Transport, TransportError, UdpTransport,
    MAX_DATAGRAM,
};
