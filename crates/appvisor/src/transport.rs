//! Transports carrying RPC frames between proxy and stub.
//!
//! Two implementations:
//!
//! - [`ChannelTransport`] — in-memory std mpsc channels. Fast, always
//!   available; models stubs hosted in sandboxed threads.
//! - [`UdpTransport`] — real UDP sockets on loopback, as in the paper's
//!   prototype ("the proxy and stub communicate with each other using
//!   UDP"). Includes the full serialization + kernel round-trip cost the
//!   isolation-latency experiment (E2) measures.

use std::fmt;
use std::io::ErrorKind;
use std::net::UdpSocket;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The far end is gone (channel disconnected / socket closed).
    Disconnected,
    /// OS-level I/O error.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, message-oriented byte transport.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Receive one frame, waiting up to `timeout`. `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError>;
}

/// In-memory transport over std mpsc channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// A connected pair: writes on one side arrive on the other.
    #[must_use]
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Maximum UDP datagram we send (the paper's prototype shares the limit).
pub const MAX_DATAGRAM: usize = 60_000;

/// UDP loopback transport — the paper-prototype configuration.
pub struct UdpTransport {
    socket: UdpSocket,
}

impl UdpTransport {
    /// A connected pair of loopback sockets on ephemeral ports.
    pub fn pair() -> std::io::Result<(UdpTransport, UdpTransport)> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        Ok((UdpTransport { socket: a }, UdpTransport { socket: b }))
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.len() > MAX_DATAGRAM {
            return Err(TransportError::Io(format!(
                "frame of {} bytes exceeds datagram limit {MAX_DATAGRAM}",
                bytes.len()
            )));
        }
        self.socket
            .send(bytes)
            .map(|_| ())
            .map_err(|e| TransportError::Io(e.to_string()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.socket
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        match self.socket.recv(&mut buf) {
            Ok(n) => {
                buf.truncate(n);
                Ok(Some(buf))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }
}

/// TCP loopback transport with explicit `u32 LE` length framing — the
/// reliable-stream alternative to the paper's UDP prototype. Handles
/// partial reads across calls, so frames larger than the socket buffer
/// arrive intact.
pub struct TcpTransport {
    stream: std::net::TcpStream,
    /// Bytes received but not yet assembled into a frame.
    pending: Vec<u8>,
}

impl TcpTransport {
    /// A connected pair over loopback.
    pub fn pair() -> std::io::Result<(TcpTransport, TcpTransport)> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = std::net::TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        for s in [&client, &server] {
            s.set_nodelay(true)?;
        }
        Ok((
            TcpTransport {
                stream: client,
                pending: Vec::new(),
            },
            TcpTransport {
                stream: server,
                pending: Vec::new(),
            },
        ))
    }

    /// Try to pop one complete frame from the pending buffer.
    fn take_frame(&mut self) -> Option<Vec<u8>> {
        if self.pending.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(self.pending[..4].try_into().unwrap()) as usize;
        if self.pending.len() < 4 + len {
            return None;
        }
        let frame = self.pending[4..4 + len].to_vec();
        self.pending.drain(..4 + len);
        Some(frame)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        use std::io::Write;
        let len = (bytes.len() as u32).to_le_bytes();
        self.stream
            .write_all(&len)
            .and_then(|()| self.stream.write_all(bytes))
            .map_err(|e| match e.kind() {
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => TransportError::Disconnected,
                _ => TransportError::Io(e.to_string()),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        use std::io::Read;
        if let Some(frame) = self.take_frame() {
            return Ok(Some(frame));
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(|e| TransportError::Io(e.to_string()))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.pending.extend_from_slice(&chunk[..n]);
                    if let Some(frame) = self.take_frame() {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }
}

/// A transport wrapper that drops frames with a seeded probability — UDP's
/// reality, concentrated. Used to test the proxy's comm-failure detection
/// and to measure detection latency under loss.
pub struct FlakyTransport<T: Transport> {
    inner: T,
    /// Drop probability per frame, in per-mille (0..=1000).
    drop_per_mille: u32,
    rng: u64,
    /// Frames silently dropped so far.
    pub dropped: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wrap `inner`, dropping ~`drop_per_mille`/1000 of sent frames.
    #[must_use]
    pub fn new(inner: T, drop_per_mille: u32, seed: u64) -> Self {
        FlakyTransport {
            inner,
            drop_per_mille,
            rng: seed | 1,
            dropped: 0,
        }
    }

    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.roll() % 1000 < u64::from(self.drop_per_mille) {
            self.dropped += 1;
            return Ok(()); // silently eaten, like a lost datagram
        }
        self.inner.send(bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Transport>(mut a: T, mut b: T) {
        a.send(b"hello").unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, b"hello");
        b.send(b"world").unwrap();
        let got = a.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, b"world");
        // Timeout path.
        let got = a.recv_timeout(Duration::from_millis(5)).unwrap();
        assert!(got.is_none());
        // Ordering.
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            b"1"
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            b"2"
        );
    }

    #[test]
    fn channel_transport_works() {
        let (a, b) = ChannelTransport::pair();
        exercise(a, b);
    }

    #[test]
    fn udp_transport_works() {
        let (a, b) = UdpTransport::pair().expect("loopback sockets");
        exercise(a, b);
    }

    #[test]
    fn tcp_transport_works() {
        let (a, b) = TcpTransport::pair().expect("loopback sockets");
        exercise(a, b);
    }

    #[test]
    fn tcp_transport_carries_large_frames() {
        let (mut a, mut b) = TcpTransport::pair().unwrap();
        // Larger than the UDP limit and any single socket buffer read.
        let big = vec![0xabu8; 1_000_000];
        a.send(&big).unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(got, big);
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (mut a, b) = TcpTransport::pair().unwrap();
        drop(b);
        // Either the send or the following recv must observe the close.
        let send_res = a.send(b"x");
        let recv_res = a.recv_timeout(Duration::from_millis(100));
        assert!(
            send_res.is_err() || matches!(recv_res, Err(TransportError::Disconnected)),
            "send: {send_res:?}, recv: {recv_res:?}"
        );
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Disconnected));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Disconnected)
        );
    }

    #[test]
    fn udp_rejects_oversized_frames() {
        let (mut a, _b) = UdpTransport::pair().unwrap();
        let huge = vec![0u8; MAX_DATAGRAM + 1];
        assert!(matches!(a.send(&huge), Err(TransportError::Io(_))));
    }

    #[test]
    fn flaky_transport_drops_deterministically() {
        let (a, mut b) = ChannelTransport::pair();
        let mut flaky = FlakyTransport::new(a, 500, 42);
        let sent = 200u64;
        for i in 0..sent {
            flaky.send(&[i as u8]).unwrap();
        }
        let mut received = 0u64;
        while b.recv_timeout(Duration::from_millis(5)).unwrap().is_some() {
            received += 1;
        }
        assert_eq!(received + flaky.dropped, sent);
        // ~50% drop rate, generous tolerance.
        assert!(
            flaky.dropped > 50 && flaky.dropped < 150,
            "dropped {}",
            flaky.dropped
        );
        // Determinism: same seed, same drops.
        let (a2, _b2) = ChannelTransport::pair();
        let mut flaky2 = FlakyTransport::new(a2, 500, 42);
        for i in 0..sent {
            flaky2.send(&[i as u8]).unwrap();
        }
        assert_eq!(flaky.dropped, flaky2.dropped);
    }

    #[test]
    fn lossless_flaky_is_transparent() {
        let (a, b) = ChannelTransport::pair();
        exercise(FlakyTransport::new(a, 0, 1), FlakyTransport::new(b, 0, 2));
    }
}
