//! Transports carrying RPC frames between proxy and stub.
//!
//! Blocking implementations (one transport per stub, `recv_timeout`
//! parks the calling thread):
//!
//! - [`ChannelTransport`] — in-memory std mpsc channels. Fast, always
//!   available; models stubs hosted in sandboxed threads.
//! - [`UdpTransport`] — real UDP sockets on loopback, as in the paper's
//!   prototype ("the proxy and stub communicate with each other using
//!   UDP"). Includes the full serialization + kernel round-trip cost the
//!   isolation-latency experiment (E2) measures.
//! - [`TcpTransport`] — TCP loopback with length framing, the
//!   reliable-stream alternative.
//!
//! The readiness-polled path that multiplexes *all* stubs onto a fixed
//! I/O thread pool lives in [`crate::poll`]; it splits each of these
//! transports into a non-blocking sink/source pair.

use std::fmt;
use std::io::ErrorKind;
use std::net::UdpSocket;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

/// Transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The far end is gone (channel disconnected / socket closed).
    Disconnected,
    /// OS-level I/O error.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, message-oriented byte transport.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Receive one frame, waiting up to `timeout`. `Ok(None)` on timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError>;

    /// Receive one frame if one is already available, without blocking
    /// and without arming any socket timeout. `Ok(None)` means "nothing
    /// queued right now" — the liveness sweep and other opportunistic
    /// drains use this instead of a sub-tick `recv_timeout`, which the
    /// socket transports would round up to a full millisecond of
    /// blocking.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;
}

/// In-memory transport over std mpsc channels.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// A connected pair: writes on one side arrive on the other.
    #[must_use]
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Maximum UDP datagram we send (the paper's prototype shares the limit).
pub const MAX_DATAGRAM: usize = 60_000;

/// Round a deadline-derived timeout up to whole milliseconds (minimum
/// 1ms, the same floor the transports always applied). Arming
/// `SO_RCVTIMEO` is a syscall; rounding to a coarse grid means
/// consecutive waits against the same deadline usually hit the
/// [`UdpTransport`]/[`TcpTransport`] armed-timeout cache instead of
/// re-issuing it. The ≤1ms overshoot this allows is the floor the
/// un-cached code already had.
fn ceil_ms(timeout: Duration) -> Duration {
    let ms = u64::try_from(timeout.as_micros().div_ceil(1000))
        .unwrap_or(u64::MAX)
        .max(1);
    Duration::from_millis(ms)
}

/// UDP loopback transport — the paper-prototype configuration.
pub struct UdpTransport {
    socket: UdpSocket,
    /// Scratch receive buffer, allocated once per transport instead of
    /// 60 KB per `recv_timeout` call.
    buf: Vec<u8>,
    /// Last timeout armed via `set_read_timeout`; unchanged timeouts skip
    /// the syscall.
    armed: Option<Duration>,
}

impl UdpTransport {
    /// A connected pair of loopback sockets on ephemeral ports.
    pub fn pair() -> std::io::Result<(UdpTransport, UdpTransport)> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        a.connect(b.local_addr()?)?;
        b.connect(a.local_addr()?)?;
        Ok((Self::from_socket(a), Self::from_socket(b)))
    }

    pub(crate) fn from_socket(socket: UdpSocket) -> UdpTransport {
        UdpTransport {
            socket,
            buf: vec![0u8; MAX_DATAGRAM],
            armed: None,
        }
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if bytes.len() > MAX_DATAGRAM {
            return Err(TransportError::Io(format!(
                "frame of {} bytes exceeds datagram limit {MAX_DATAGRAM}",
                bytes.len()
            )));
        }
        self.socket
            .send(bytes)
            .map(|_| ())
            .map_err(|e| TransportError::Io(e.to_string()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        let want = ceil_ms(timeout);
        if self.armed != Some(want) {
            self.socket
                .set_read_timeout(Some(want))
                .map_err(|e| TransportError::Io(e.to_string()))?;
            self.armed = Some(want);
        }
        match self.socket.recv(&mut self.buf) {
            Ok(n) => Ok(Some(self.buf[..n].to_vec())),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        // O_NONBLOCK overrides SO_RCVTIMEO while set, so the armed-timeout
        // cache stays valid across the toggle.
        self.socket
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let res = self.socket.recv(&mut self.buf);
        let restore = self.socket.set_nonblocking(false);
        let out = match res {
            Ok(n) => Ok(Some(self.buf[..n].to_vec())),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(TransportError::Io(e.to_string())),
        };
        restore.map_err(|e| TransportError::Io(e.to_string()))?;
        out
    }
}

/// Length-framed (u32 LE) reassembly buffer shared by the blocking
/// [`TcpTransport`] and the polled TCP source. Tracks a consumed offset
/// so popping a frame is O(frame) — the buffer is compacted once per
/// read batch, not memmoved per frame, which kept a burst of small
/// frames sharing one socket read from going quadratic.
#[derive(Default)]
pub(crate) struct TcpFramer {
    pending: Vec<u8>,
    consumed: usize,
}

impl TcpFramer {
    /// Append raw stream bytes.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Pop one complete frame, advancing the consumed offset.
    pub(crate) fn take(&mut self) -> Option<Vec<u8>> {
        let avail = &self.pending[self.consumed..];
        if avail.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if avail.len() < 4 + len {
            return None;
        }
        let frame = avail[4..4 + len].to_vec();
        self.consumed += 4 + len;
        if self.consumed == self.pending.len() {
            // Everything delivered: reset in O(1), keeping the allocation.
            self.pending.clear();
            self.consumed = 0;
        }
        Some(frame)
    }

    /// Reclaim consumed bytes — one memmove per batch of frames.
    pub(crate) fn compact(&mut self) {
        if self.consumed > 0 {
            self.pending.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

/// TCP loopback transport with explicit `u32 LE` length framing — the
/// reliable-stream alternative to the paper's UDP prototype. Handles
/// partial reads across calls, so frames larger than the socket buffer
/// arrive intact.
pub struct TcpTransport {
    stream: std::net::TcpStream,
    framer: TcpFramer,
    /// Last timeout armed via `set_read_timeout` (see [`UdpTransport`]).
    armed: Option<Duration>,
}

impl TcpTransport {
    /// A connected pair over loopback.
    pub fn pair() -> std::io::Result<(TcpTransport, TcpTransport)> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = std::net::TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        for s in [&client, &server] {
            s.set_nodelay(true)?;
        }
        Ok((Self::from_stream(client), Self::from_stream(server)))
    }

    fn from_stream(stream: std::net::TcpStream) -> TcpTransport {
        TcpTransport {
            stream,
            framer: TcpFramer::default(),
            armed: None,
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        use std::io::Write;
        let len = (bytes.len() as u32).to_le_bytes();
        self.stream
            .write_all(&len)
            .and_then(|()| self.stream.write_all(bytes))
            .map_err(|e| match e.kind() {
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => TransportError::Disconnected,
                _ => TransportError::Io(e.to_string()),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        use std::io::Read;
        if let Some(frame) = self.framer.take() {
            return Ok(Some(frame));
        }
        self.framer.compact();
        let deadline = std::time::Instant::now() + timeout;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            let want = ceil_ms(remaining);
            if self.armed != Some(want) {
                self.stream
                    .set_read_timeout(Some(want))
                    .map_err(|e| TransportError::Io(e.to_string()))?;
                self.armed = Some(want);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    self.framer.extend(&chunk[..n]);
                    if let Some(frame) = self.framer.take() {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    return Err(TransportError::Disconnected)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        use std::io::Read;
        if let Some(frame) = self.framer.take() {
            return Ok(Some(frame));
        }
        self.framer.compact();
        self.stream
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut chunk = [0u8; 16 * 1024];
        let mut res = Ok(());
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    res = Err(TransportError::Disconnected);
                    break;
                }
                Ok(n) => self.framer.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break
                }
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    res = Err(TransportError::Disconnected);
                    break;
                }
                Err(e) => {
                    res = Err(TransportError::Io(e.to_string()));
                    break;
                }
            }
        }
        let restore = self.stream.set_nonblocking(false);
        // Deliver buffered frames before surfacing any error.
        if let Some(frame) = self.framer.take() {
            return Ok(Some(frame));
        }
        res?;
        restore.map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(None)
    }
}

/// SplitMix64 — a full-avalanche mix, so adjacent seeds land in
/// unrelated xorshift orbits.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A transport wrapper that drops frames with a seeded probability — UDP's
/// reality, concentrated. Used to test the proxy's comm-failure detection
/// and to measure detection latency under loss.
pub struct FlakyTransport<T: Transport> {
    inner: T,
    /// Drop probability per frame, in per-mille (0..=1000).
    drop_per_mille: u32,
    rng: u64,
    /// Frames silently dropped so far.
    pub dropped: u64,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wrap `inner`, dropping ~`drop_per_mille`/1000 of sent frames.
    /// The seed is mixed through SplitMix64 so adjacent seeds explore
    /// distinct drop schedules (the old `seed | 1` state made seeds `2k`
    /// and `2k+1` identical, silently halving campaign coverage).
    #[must_use]
    pub fn new(inner: T, drop_per_mille: u32, seed: u64) -> Self {
        let mixed = splitmix64(seed);
        FlakyTransport {
            inner,
            drop_per_mille,
            // xorshift has a fixed point at 0; SplitMix64 maps exactly one
            // seed there, so nudge it off.
            rng: if mixed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                mixed
            },
            dropped: 0,
        }
    }

    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.roll() % 1000 < u64::from(self.drop_per_mille) {
            self.dropped += 1;
            return Ok(()); // silently eaten, like a lost datagram
        }
        self.inner.send(bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        self.inner.try_recv()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::time::Instant;

    pub(crate) fn exercise<T: Transport>(mut a: T, mut b: T) {
        a.send(b"hello").unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, b"hello");
        b.send(b"world").unwrap();
        let got = a.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(got, b"world");
        // Timeout path.
        let got = a.recv_timeout(Duration::from_millis(5)).unwrap();
        assert!(got.is_none());
        // Ordering.
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            b"1"
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            b"2"
        );
        // Non-blocking path: a sent frame becomes try_recv-visible (the
        // socket transports may need a beat for loopback delivery), and
        // an idle transport yields None without blocking.
        a.send(b"nb").unwrap();
        let deadline = Instant::now() + Duration::from_secs(1);
        let got = loop {
            if let Some(frame) = b.try_recv().unwrap() {
                break frame;
            }
            assert!(Instant::now() < deadline, "try_recv never saw the frame");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(got, b"nb");
        let start = Instant::now();
        assert_eq!(b.try_recv().unwrap(), None);
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "try_recv must not block"
        );
    }

    #[test]
    fn channel_transport_works() {
        let (a, b) = ChannelTransport::pair();
        exercise(a, b);
    }

    #[test]
    fn udp_transport_works() {
        let (a, b) = UdpTransport::pair().expect("loopback sockets");
        exercise(a, b);
    }

    #[test]
    fn tcp_transport_works() {
        let (a, b) = TcpTransport::pair().expect("loopback sockets");
        exercise(a, b);
    }

    #[test]
    fn tcp_transport_carries_large_frames() {
        let (mut a, mut b) = TcpTransport::pair().unwrap();
        // Larger than the UDP limit and any single socket buffer read.
        let big = vec![0xabu8; 1_000_000];
        a.send(&big).unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(got, big);
    }

    #[test]
    fn tcp_small_frame_burst_arrives_in_order() {
        // Many small frames share socket reads; the framer must pop them
        // all from its offset without losing bytes across compactions.
        let (mut a, mut b) = TcpTransport::pair().unwrap();
        let n = 64u32;
        for i in 0..n {
            a.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..n {
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got, i.to_le_bytes());
        }
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn framer_pops_frames_at_offset_and_compacts_once() {
        let mut f = TcpFramer::default();
        let mut wire = Vec::new();
        for payload in [&b"aa"[..], b"b", b"cccc"] {
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(payload);
        }
        // Feed everything plus half of a fourth frame's header.
        f.extend(&wire);
        f.extend(&[9, 0]);
        assert_eq!(f.take().unwrap(), b"aa");
        assert_eq!(f.take().unwrap(), b"b");
        assert_eq!(f.take().unwrap(), b"cccc");
        assert!(f.take().is_none(), "partial header is not a frame");
        f.compact();
        assert_eq!(f.consumed, 0);
        assert_eq!(f.pending, vec![9, 0]);
        // Completing the partial frame delivers it.
        f.extend(&[0, 0]);
        f.extend(&[7; 9]);
        assert_eq!(f.take().unwrap(), vec![7; 9]);
        assert!(f.take().is_none());
        assert_eq!(f.pending.len(), 0, "fully-drained buffer resets in O(1)");
    }

    #[test]
    fn tcp_disconnect_detected() {
        let (mut a, b) = TcpTransport::pair().unwrap();
        drop(b);
        // Either the send or the following recv must observe the close.
        let send_res = a.send(b"x");
        let recv_res = a.recv_timeout(Duration::from_millis(100));
        assert!(
            send_res.is_err() || matches!(recv_res, Err(TransportError::Disconnected)),
            "send: {send_res:?}, recv: {recv_res:?}"
        );
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Disconnected));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(TransportError::Disconnected)
        );
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn udp_rejects_oversized_frames() {
        let (mut a, _b) = UdpTransport::pair().unwrap();
        let huge = vec![0u8; MAX_DATAGRAM + 1];
        assert!(matches!(a.send(&huge), Err(TransportError::Io(_))));
    }

    #[test]
    fn read_timeout_is_armed_once_per_deadline() {
        // The cache must avoid re-arming for an unchanged timeout and
        // still time out correctly when the armed value is stale-but-equal.
        let (mut a, _b) = UdpTransport::pair().unwrap();
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        assert_eq!(a.armed, Some(Duration::from_millis(5)));
        // Same timeout again: no re-arm needed (armed value unchanged),
        // behavior identical.
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        assert_eq!(a.armed, Some(Duration::from_millis(5)));
        // Sub-millisecond timeouts keep the 1ms floor.
        assert!(a.recv_timeout(Duration::from_micros(50)).unwrap().is_none());
        assert_eq!(a.armed, Some(Duration::from_millis(1)));
    }

    #[test]
    fn flaky_transport_drops_deterministically() {
        let (a, mut b) = ChannelTransport::pair();
        let mut flaky = FlakyTransport::new(a, 500, 42);
        let sent = 200u64;
        for i in 0..sent {
            flaky.send(&[i as u8]).unwrap();
        }
        let mut received = 0u64;
        while b.recv_timeout(Duration::from_millis(5)).unwrap().is_some() {
            received += 1;
        }
        assert_eq!(received + flaky.dropped, sent);
        // ~50% drop rate, generous tolerance.
        assert!(
            flaky.dropped > 50 && flaky.dropped < 150,
            "dropped {}",
            flaky.dropped
        );
        // Determinism: same seed, same drops.
        let (a2, _b2) = ChannelTransport::pair();
        let mut flaky2 = FlakyTransport::new(a2, 500, 42);
        for i in 0..sent {
            flaky2.send(&[i as u8]).unwrap();
        }
        assert_eq!(flaky.dropped, flaky2.dropped);
    }

    #[test]
    fn flaky_adjacent_seeds_explore_distinct_schedules() {
        // The old `seed | 1` seeding collapsed seeds 2k and 2k+1 onto one
        // drop pattern, so adjacent-seed campaign runs silently explored
        // the same fault schedule.
        fn drop_pattern(seed: u64) -> Vec<bool> {
            let (a, _b) = ChannelTransport::pair();
            let mut flaky = FlakyTransport::new(a, 500, seed);
            (0..200u64)
                .map(|i| {
                    let before = flaky.dropped;
                    flaky.send(&[i as u8]).unwrap();
                    flaky.dropped > before
                })
                .collect()
        }
        for base in [0u64, 2, 42, 1000] {
            assert_ne!(
                drop_pattern(base),
                drop_pattern(base + 1),
                "seeds {base} and {} share a drop schedule",
                base + 1
            );
        }
        assert_eq!(drop_pattern(7), drop_pattern(7), "same seed stays stable");
    }

    #[test]
    fn lossless_flaky_is_transparent() {
        let (a, b) = ChannelTransport::pair();
        exercise(FlakyTransport::new(a, 0, 1), FlakyTransport::new(b, 0, 2));
    }
}
