//! The AppVisor Stub: "a stand-alone application hosting an SDN-App"
//! (paper §4.1).
//!
//! The stub owns the app, registers it (name + subscriptions) with the
//! proxy, then serves the RPC loop: deliver events to the app, return its
//! commands, answer snapshot/restore requests, and emit heartbeats.
//!
//! **Fault containment substitution** (DESIGN.md §2): the paper runs the
//! stub in a separate JVM process; here the stub runs in a sandboxed thread
//! and contains app panics with `catch_unwind`. A crashed app leaves the
//! stub in the `dead` state: it stops processing events and (configurably)
//! stops heart-beating, which is exactly the observable a separate dead
//! process would present to the proxy. A `RestoreRequest` revives it — the
//! CRIU-restore analogue.

use crate::poll::{Duplex, FrameSink, FrameSource, PollWaker};
use crate::rpc::{decode_frame, encode_frame, RpcMessage};
use crate::transport::{Transport, TransportError};
use legosdn_controller::app::{Ctx, SdnApp};
use legosdn_controller::monolithic::panic_text;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Stub behaviour knobs.
#[derive(Clone, Debug)]
pub struct StubConfig {
    /// Heartbeat period (wall clock — the RPC plane is real I/O).
    pub heartbeat_period: Duration,
    /// If true, a crash is reported with an explicit `Crashed` frame (fast
    /// detection). If false, the stub goes silent like a dead process and
    /// the proxy must detect the crash from communication failure /
    /// heartbeat loss — the paper's primary mechanism.
    pub report_crashes: bool,
}

impl Default for StubConfig {
    fn default() -> Self {
        StubConfig {
            heartbeat_period: Duration::from_millis(20),
            report_crashes: true,
        }
    }
}

/// Statistics the stub reports when it exits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StubReport {
    pub events_processed: u64,
    pub crashes_contained: u64,
    pub restores: u64,
    pub heartbeats_sent: u64,
}

/// What [`StubCore::handle_frame`] asks its I/O driver to do next.
enum StubStep {
    /// Nothing to send; keep serving.
    Continue,
    /// Send this frame, then keep serving.
    Reply(Vec<u8>),
    /// `Shutdown` received: stop serving and surface the report.
    Shutdown,
}

/// The sans-io stub state machine: app + liveness state + report, with
/// all I/O hoisted out. [`run_stub`] drives it from a blocking loop (one
/// thread per stub); [`StubHost`] drives many cores from a fixed worker
/// pool — same protocol, same containment, two thread models.
struct StubCore {
    app: Box<dyn SdnApp>,
    config: StubConfig,
    dead: bool,
    hb_seq: u64,
    last_heartbeat: Instant,
    report: StubReport,
}

impl StubCore {
    fn new(app: Box<dyn SdnApp>, config: StubConfig) -> StubCore {
        StubCore {
            app,
            config,
            dead: false,
            hb_seq: 0,
            last_heartbeat: Instant::now(),
            report: StubReport::default(),
        }
    }

    /// The `Register` frame that must open the conversation.
    fn register_frame(&self) -> Vec<u8> {
        encode_frame(&RpcMessage::Register {
            app_name: self.app.name().to_string(),
            subscriptions: self.app.subscriptions(),
        })
    }

    /// A heartbeat frame when one is due (and the app is alive — a dead
    /// process doesn't beat).
    fn heartbeat_if_due(&mut self) -> Option<Vec<u8>> {
        if self.dead || self.last_heartbeat.elapsed() < self.config.heartbeat_period {
            return None;
        }
        self.hb_seq += 1;
        self.report.heartbeats_sent += 1;
        self.last_heartbeat = Instant::now();
        Some(encode_frame(&RpcMessage::Heartbeat { seq: self.hb_seq }))
    }

    /// Time until the next heartbeat is due (zero if overdue or dead —
    /// a dead stub has nothing to schedule).
    fn heartbeat_due_in(&self) -> Duration {
        if self.dead {
            return self.config.heartbeat_period;
        }
        self.config
            .heartbeat_period
            .saturating_sub(self.last_heartbeat.elapsed())
    }

    /// Serve one proxy frame: deliver/snapshot/restore/shutdown, with
    /// panic containment around the app exactly as before.
    fn handle_frame(&mut self, frame: &[u8]) -> StubStep {
        let Ok(msg) = decode_frame(frame) else {
            return StubStep::Continue;
        };
        match msg {
            RpcMessage::EventDeliver {
                seq,
                event,
                topology,
                devices,
                now,
            } => {
                if self.dead {
                    // A dead process can't answer. (The proxy's delivery
                    // timeout is its comm-failure crash signal.)
                    return StubStep::Continue;
                }
                let mut ctx = Ctx::new(now, &topology, &devices);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    self.app.on_event(&event, &mut ctx);
                }));
                match result {
                    Ok(()) => {
                        self.report.events_processed += 1;
                        StubStep::Reply(encode_frame(&RpcMessage::EventAck {
                            seq,
                            commands: ctx.into_commands(),
                        }))
                    }
                    Err(payload) => {
                        self.report.crashes_contained += 1;
                        self.dead = true;
                        if self.config.report_crashes {
                            StubStep::Reply(encode_frame(&RpcMessage::Crashed {
                                seq,
                                panic_message: panic_text(&*payload),
                            }))
                        } else {
                            StubStep::Continue
                        }
                    }
                }
            }
            RpcMessage::SnapshotRequest { seq } => {
                if self.dead {
                    return StubStep::Continue;
                }
                StubStep::Reply(encode_frame(&RpcMessage::SnapshotReply {
                    seq,
                    bytes: self.app.snapshot(),
                }))
            }
            RpcMessage::RestoreRequest { seq, bytes } => {
                // Restore revives a dead app (the CRIU restart+restore).
                let ok = self.app.restore(&bytes).is_ok();
                if ok {
                    self.dead = false;
                    self.report.restores += 1;
                    self.last_heartbeat = Instant::now();
                }
                StubStep::Reply(encode_frame(&RpcMessage::RestoreAck { seq, ok }))
            }
            RpcMessage::Shutdown => StubStep::Shutdown,
            // Proxy-bound frames are ignored if echoed back.
            _ => StubStep::Continue,
        }
    }
}

/// Run the stub loop until `Shutdown` or transport disconnect. This is the
/// body of the stub thread; it is also callable directly for deterministic
/// single-threaded tests.
pub fn run_stub<T: Transport>(
    mut transport: T,
    app: Box<dyn SdnApp>,
    config: &StubConfig,
) -> StubReport {
    let mut core = StubCore::new(app, config.clone());

    // Register first.
    if transport.send(&core.register_frame()).is_err() {
        return core.report;
    }

    loop {
        if let Some(hb) = core.heartbeat_if_due() {
            if transport.send(&hb).is_err() {
                return core.report;
            }
        }
        let frame = match transport.recv_timeout(config.heartbeat_period / 2) {
            Ok(Some(f)) => f,
            Ok(None) => continue,
            Err(TransportError::Disconnected) => return core.report,
            Err(_) => continue,
        };
        match core.handle_frame(&frame) {
            StubStep::Continue => {}
            StubStep::Reply(reply) => {
                if transport.send(&reply).is_err() {
                    return core.report;
                }
            }
            StubStep::Shutdown => return core.report,
        }
    }
}

/// Spawn the stub loop on its own sandbox thread.
pub fn spawn_stub<T: Transport + 'static>(
    transport: T,
    app: Box<dyn SdnApp>,
    config: StubConfig,
) -> JoinHandle<StubReport> {
    std::thread::Builder::new()
        .name("appvisor-stub".into())
        .spawn(move || run_stub(transport, app, &config))
        .expect("spawn stub thread")
}

// ---------------------------------------------------------------------
// Multiplexed stub hosting (the fleet-scale thread model).
// ---------------------------------------------------------------------

struct HostedStub {
    core: StubCore,
    sink: Box<dyn FrameSink>,
    source: Box<dyn FrameSource>,
}

struct HostWorker {
    waker: Arc<PollWaker>,
    inject: Arc<Mutex<Vec<HostedStub>>>,
    thread: Option<JoinHandle<()>>,
}

/// Hosts many [`StubCore`]s on a fixed pool of worker threads, each
/// driving its stubs' frames and heartbeats through split non-blocking
/// transports ([`crate::poll`]). Same containment guarantees as
/// [`spawn_stub`] — `catch_unwind` still walls off app panics, a crashed
/// app goes `dead` on its worker without disturbing neighbors — but a
/// 1000-app fleet costs `workers` threads instead of 1000.
pub struct StubHost {
    workers: Vec<HostWorker>,
    next: AtomicUsize,
    spawned: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    reports: Arc<Mutex<Vec<StubReport>>>,
}

impl StubHost {
    /// Start `workers` stub-hosting threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> StubHost {
        let stop = Arc::new(AtomicBool::new(false));
        let reports: Arc<Mutex<Vec<StubReport>>> = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..workers.max(1))
            .map(|i| {
                let waker = PollWaker::new();
                let inject: Arc<Mutex<Vec<HostedStub>>> = Arc::new(Mutex::new(Vec::new()));
                let thread = {
                    let waker = waker.clone();
                    let inject = inject.clone();
                    let stop = stop.clone();
                    let reports = reports.clone();
                    std::thread::Builder::new()
                        .name(format!("appvisor-stubhost-{i}"))
                        .spawn(move || host_loop(&waker, &inject, &stop, &reports))
                        .expect("spawn stub host worker")
                };
                HostWorker {
                    waker,
                    inject,
                    thread: Some(thread),
                }
            })
            .collect();
        StubHost {
            workers,
            next: AtomicUsize::new(0),
            spawned: Arc::new(AtomicUsize::new(0)),
            stop,
            reports,
        }
    }

    /// Host `app` over the stub side of a split transport. Sends the
    /// `Register` frame synchronously (so the proxy can await it
    /// immediately after this returns), then hands the stub to a worker.
    pub fn spawn(
        &self,
        app: Box<dyn SdnApp>,
        transport: Duplex,
        config: StubConfig,
    ) -> Result<(), TransportError> {
        let core = StubCore::new(app, config);
        let Duplex {
            mut sink,
            mut source,
        } = transport;
        sink.send(&core.register_frame())?;
        let worker = &self.workers[self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len()];
        source.set_waker(worker.waker.clone());
        self.spawned.fetch_add(1, Ordering::SeqCst);
        worker
            .inject
            .lock()
            .unwrap()
            .push(HostedStub { core, sink, source });
        worker.waker.wake();
        Ok(())
    }

    /// Wait up to `grace` for all hosted stubs to retire (a stub retires
    /// when it serves `Shutdown` or its transport disconnects), then stop
    /// the workers and return every stub's report. Stubs still live at
    /// the deadline are cut off and report whatever they had.
    pub fn shutdown(mut self, grace: Duration) -> Vec<StubReport> {
        let deadline = Instant::now() + grace;
        while Instant::now() < deadline {
            if self.reports.lock().unwrap().len() >= self.spawned.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.waker.wake();
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        std::mem::take(&mut *self.reports.lock().unwrap())
    }
}

impl Drop for StubHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in &self.workers {
            w.waker.wake();
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// Floor for the host park interval so an overdue heartbeat cannot spin
/// the scan loop.
const HOST_PARK_MIN: Duration = Duration::from_micros(50);
/// Park ceiling when every source has a waker (sends end the park early).
const HOST_PARK_MAX: Duration = Duration::from_millis(5);
/// Park ceiling when any source is a waker-less socket.
const HOST_PARK_SCAN: Duration = Duration::from_micros(100);

fn host_loop(
    waker: &Arc<PollWaker>,
    inject: &Arc<Mutex<Vec<HostedStub>>>,
    stop: &Arc<AtomicBool>,
    reports: &Arc<Mutex<Vec<StubReport>>>,
) {
    let mut stubs: Vec<HostedStub> = Vec::new();
    loop {
        let seen = waker.current();
        {
            let mut pending = inject.lock().unwrap();
            stubs.append(&mut pending);
        }
        if stop.load(Ordering::SeqCst) {
            let mut out = reports.lock().unwrap();
            for s in stubs.drain(..) {
                out.push(s.core.report);
            }
            return;
        }
        let mut activity = 0u64;
        stubs.retain_mut(|s| {
            let retired = drive_stub(s, &mut activity);
            if retired {
                reports.lock().unwrap().push(s.core.report);
            }
            !retired
        });
        if activity == 0 {
            let mut park = if stubs.iter().all(|s| s.source.has_waker()) {
                HOST_PARK_MAX
            } else {
                HOST_PARK_SCAN
            };
            for s in &stubs {
                park = park.min(s.core.heartbeat_due_in());
            }
            waker.wait_past(seen, park.max(HOST_PARK_MIN));
        }
    }
}

/// One scan of one hosted stub: heartbeat if due, then drain and serve
/// its queued frames. Returns true when the stub retires (shutdown or
/// transport loss).
fn drive_stub(s: &mut HostedStub, activity: &mut u64) -> bool {
    if let Some(hb) = s.core.heartbeat_if_due() {
        if s.sink.send(&hb).is_err() {
            return true;
        }
    }
    loop {
        match s.source.try_recv() {
            Ok(Some(frame)) => {
                *activity += 1;
                match s.core.handle_frame(&frame) {
                    StubStep::Continue => {}
                    StubStep::Reply(reply) => {
                        if s.sink.send(&reply).is_err() {
                            return true;
                        }
                    }
                    StubStep::Shutdown => return true,
                }
            }
            Ok(None) => return false,
            Err(_) => return true,
        }
    }
}

#[cfg(test)]
mod stub_tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use legosdn_controller::app::RestoreError;
    use legosdn_controller::event::{Event, EventKind};
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;
    use legosdn_openflow::prelude::*;

    /// Minimal app: counts events, crashes on demand.
    struct TestApp {
        count: u32,
        crash_on: Option<u32>,
    }

    impl SdnApp for TestApp {
        fn name(&self) -> &str {
            "test-app"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::SwitchUp]
        }
        fn on_event(&mut self, _event: &Event, ctx: &mut Ctx<'_>) {
            self.count += 1;
            if Some(self.count) == self.crash_on {
                panic!("test app crash at {}", self.count);
            }
            ctx.send(DatapathId(1), Message::BarrierRequest);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.count =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn deliver_frame(seq: u64) -> Vec<u8> {
        encode_frame(&RpcMessage::EventDeliver {
            seq,
            event: Event::SwitchUp(DatapathId(1)),
            topology: TopologyView::default(),
            devices: DeviceView::default(),
            now: SimTime::ZERO,
        })
    }

    fn recv_msg(t: &mut ChannelTransport) -> RpcMessage {
        loop {
            let frame = t
                .recv_timeout(Duration::from_secs(2))
                .expect("transport alive")
                .expect("frame within deadline");
            let msg = decode_frame(&frame).expect("valid frame");
            if !matches!(msg, RpcMessage::Heartbeat { .. }) {
                return msg;
            }
        }
    }

    #[test]
    fn stub_registers_then_serves_events() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: None,
            }),
            StubConfig::default(),
        );
        match recv_msg(&mut proxy_side) {
            RpcMessage::Register {
                app_name,
                subscriptions,
            } => {
                assert_eq!(app_name, "test-app");
                assert_eq!(subscriptions, vec![EventKind::SwitchUp]);
            }
            other => panic!("expected register, got {other:?}"),
        }
        proxy_side.send(&deliver_frame(1)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::EventAck { seq, commands } => {
                assert_eq!(seq, 1);
                assert_eq!(commands.len(), 1);
            }
            other => panic!("expected ack, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.events_processed, 1);
        assert_eq!(report.crashes_contained, 0);
    }

    #[test]
    fn crash_is_contained_and_reported() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: Some(2),
            }),
            StubConfig::default(),
        );
        let _ = recv_msg(&mut proxy_side); // register
        proxy_side.send(&deliver_frame(1)).unwrap();
        let _ = recv_msg(&mut proxy_side); // ack 1
        proxy_side.send(&deliver_frame(2)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::Crashed { seq, panic_message } => {
                assert_eq!(seq, 2);
                assert!(panic_message.contains("test app crash"));
            }
            other => panic!("expected crashed, got {other:?}"),
        }
        // Dead stub ignores further events: at most heartbeats come back.
        proxy_side.send(&deliver_frame(3)).unwrap();
        let _ = proxy_side.recv_timeout(Duration::from_millis(100)).unwrap();
        // ...until restored.
        proxy_side
            .send(&encode_frame(&RpcMessage::RestoreRequest {
                seq: 4,
                bytes: 1u32.to_be_bytes().to_vec(),
            }))
            .unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::RestoreAck { seq, ok } => {
                assert_eq!(seq, 4);
                assert!(ok);
            }
            other => panic!("expected restore ack, got {other:?}"),
        }
        // Alive again: counts from the restored state (1), so event → 2 → crash again (deterministic bug).
        proxy_side.send(&deliver_frame(5)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::Crashed { seq, .. } => assert_eq!(seq, 5),
            other => panic!("deterministic bug must re-crash, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.crashes_contained, 2);
        assert_eq!(report.restores, 1);
    }

    #[test]
    fn silent_crash_mode_goes_quiet() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let config = StubConfig {
            heartbeat_period: Duration::from_millis(10),
            report_crashes: false,
        };
        let _handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: Some(1),
            }),
            config,
        );
        let _ = recv_msg(&mut proxy_side); // register
        proxy_side.send(&deliver_frame(1)).unwrap();
        // No Crashed frame, no ack, and heartbeats stop: silence.
        let deadline = Instant::now() + Duration::from_millis(300);
        let mut last_non_heartbeat = None;
        while Instant::now() < deadline {
            if let Ok(Some(frame)) = proxy_side.recv_timeout(Duration::from_millis(20)) {
                let msg = decode_frame(&frame).unwrap();
                if !matches!(msg, RpcMessage::Heartbeat { .. }) {
                    last_non_heartbeat = Some(msg);
                }
            }
        }
        assert!(last_non_heartbeat.is_none(), "got {last_non_heartbeat:?}");
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
    }

    #[test]
    fn snapshot_request_roundtrips() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 7,
                crash_on: None,
            }),
            StubConfig::default(),
        );
        let _ = recv_msg(&mut proxy_side);
        proxy_side
            .send(&encode_frame(&RpcMessage::SnapshotRequest { seq: 1 }))
            .unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::SnapshotReply { seq, bytes } => {
                assert_eq!(seq, 1);
                assert_eq!(bytes, 7u32.to_be_bytes().to_vec());
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn heartbeats_flow() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let config = StubConfig {
            heartbeat_period: Duration::from_millis(5),
            report_crashes: true,
        };
        let _handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: None,
            }),
            config,
        );
        let _ = proxy_side.recv_timeout(Duration::from_secs(1)); // register
        let mut beats = 0;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline && beats < 3 {
            if let Ok(Some(frame)) = proxy_side.recv_timeout(Duration::from_millis(50)) {
                if matches!(decode_frame(&frame), Ok(RpcMessage::Heartbeat { .. })) {
                    beats += 1;
                }
            }
        }
        assert!(beats >= 3, "expected heartbeats, got {beats}");
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
    }

    /// Proxy-side view of a hosted stub: a raw duplex driven by hand.
    fn hosted(
        host: &StubHost,
        crash_on: Option<u32>,
    ) -> (
        Box<dyn crate::poll::FrameSink>,
        Box<dyn crate::poll::FrameSource>,
    ) {
        let (proxy_dx, stub_dx) = crate::poll::queue_duplex_pair();
        host.spawn(
            Box::new(TestApp { count: 0, crash_on }),
            stub_dx,
            StubConfig::default(),
        )
        .unwrap();
        (proxy_dx.sink, proxy_dx.source)
    }

    fn await_frame(source: &mut Box<dyn crate::poll::FrameSource>) -> RpcMessage {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if let Some(frame) = source.try_recv().unwrap() {
                let msg = decode_frame(&frame).unwrap();
                if !matches!(msg, RpcMessage::Heartbeat { .. }) {
                    return msg;
                }
            }
            assert!(Instant::now() < deadline, "no frame within deadline");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn stub_host_serves_many_stubs_on_bounded_workers() {
        let host = StubHost::new(2);
        let n = 16;
        let mut channels: Vec<_> = (0..n).map(|_| hosted(&host, None)).collect();
        for (sink, source) in &mut channels {
            assert!(matches!(await_frame(source), RpcMessage::Register { .. }));
            sink.send(&deliver_frame(1)).unwrap();
        }
        for (_, source) in &mut channels {
            match await_frame(source) {
                RpcMessage::EventAck { seq, commands } => {
                    assert_eq!(seq, 1);
                    assert_eq!(commands.len(), 1);
                }
                other => panic!("expected ack, got {other:?}"),
            }
        }
        for (sink, _) in &mut channels {
            sink.send(&encode_frame(&RpcMessage::Shutdown)).unwrap();
        }
        let reports = host.shutdown(Duration::from_secs(2));
        assert_eq!(reports.len(), n);
        assert!(reports.iter().all(|r| r.events_processed == 1));
    }

    #[test]
    fn hosted_crash_is_contained_per_stub() {
        let host = StubHost::new(1);
        let (mut crashy_sink, mut crashy_source) = hosted(&host, Some(1));
        let (mut ok_sink, mut ok_source) = hosted(&host, None);
        assert!(matches!(
            await_frame(&mut crashy_source),
            RpcMessage::Register { .. }
        ));
        assert!(matches!(
            await_frame(&mut ok_source),
            RpcMessage::Register { .. }
        ));
        crashy_sink.send(&deliver_frame(1)).unwrap();
        match await_frame(&mut crashy_source) {
            RpcMessage::Crashed { seq, panic_message } => {
                assert_eq!(seq, 1);
                assert!(panic_message.contains("test app crash"));
            }
            other => panic!("expected crashed, got {other:?}"),
        }
        // The neighbor on the same worker is untouched.
        ok_sink.send(&deliver_frame(1)).unwrap();
        assert!(matches!(
            await_frame(&mut ok_source),
            RpcMessage::EventAck { .. }
        ));
        // Restore revives the crashed one.
        crashy_sink
            .send(&encode_frame(&RpcMessage::RestoreRequest {
                seq: 2,
                bytes: 0u32.to_be_bytes().to_vec(),
            }))
            .unwrap();
        assert!(matches!(
            await_frame(&mut crashy_source),
            RpcMessage::RestoreAck { seq: 2, ok: true }
        ));
        for sink in [&mut crashy_sink, &mut ok_sink] {
            sink.send(&encode_frame(&RpcMessage::Shutdown)).unwrap();
        }
        let reports = host.shutdown(Duration::from_secs(2));
        assert_eq!(reports.len(), 2);
        let crashes: u64 = reports.iter().map(|r| r.crashes_contained).sum();
        let restores: u64 = reports.iter().map(|r| r.restores).sum();
        assert_eq!(crashes, 1);
        assert_eq!(restores, 1);
    }

    #[test]
    fn hosted_stubs_heartbeat() {
        let host = StubHost::new(1);
        let (proxy_dx, stub_dx) = crate::poll::queue_duplex_pair();
        host.spawn(
            Box::new(TestApp {
                count: 0,
                crash_on: None,
            }),
            stub_dx,
            StubConfig {
                heartbeat_period: Duration::from_millis(5),
                report_crashes: true,
            },
        )
        .unwrap();
        let mut source = proxy_dx.source;
        let mut beats = 0;
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline && beats < 3 {
            if let Ok(Some(frame)) = source.try_recv() {
                if matches!(decode_frame(&frame), Ok(RpcMessage::Heartbeat { .. })) {
                    beats += 1;
                }
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(beats >= 3, "expected hosted heartbeats, got {beats}");
        let _ = host.shutdown(Duration::from_millis(50));
    }
}
