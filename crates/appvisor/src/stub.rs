//! The AppVisor Stub: "a stand-alone application hosting an SDN-App"
//! (paper §4.1).
//!
//! The stub owns the app, registers it (name + subscriptions) with the
//! proxy, then serves the RPC loop: deliver events to the app, return its
//! commands, answer snapshot/restore requests, and emit heartbeats.
//!
//! **Fault containment substitution** (DESIGN.md §2): the paper runs the
//! stub in a separate JVM process; here the stub runs in a sandboxed thread
//! and contains app panics with `catch_unwind`. A crashed app leaves the
//! stub in the `dead` state: it stops processing events and (configurably)
//! stops heart-beating, which is exactly the observable a separate dead
//! process would present to the proxy. A `RestoreRequest` revives it — the
//! CRIU-restore analogue.

use crate::rpc::{decode_frame, encode_frame, RpcMessage};
use crate::transport::{Transport, TransportError};
use legosdn_controller::app::{Ctx, SdnApp};
use legosdn_controller::monolithic::panic_text;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Stub behaviour knobs.
#[derive(Clone, Debug)]
pub struct StubConfig {
    /// Heartbeat period (wall clock — the RPC plane is real I/O).
    pub heartbeat_period: Duration,
    /// If true, a crash is reported with an explicit `Crashed` frame (fast
    /// detection). If false, the stub goes silent like a dead process and
    /// the proxy must detect the crash from communication failure /
    /// heartbeat loss — the paper's primary mechanism.
    pub report_crashes: bool,
}

impl Default for StubConfig {
    fn default() -> Self {
        StubConfig {
            heartbeat_period: Duration::from_millis(20),
            report_crashes: true,
        }
    }
}

/// Statistics the stub reports when it exits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StubReport {
    pub events_processed: u64,
    pub crashes_contained: u64,
    pub restores: u64,
    pub heartbeats_sent: u64,
}

/// Run the stub loop until `Shutdown` or transport disconnect. This is the
/// body of the stub thread; it is also callable directly for deterministic
/// single-threaded tests.
pub fn run_stub<T: Transport>(
    mut transport: T,
    mut app: Box<dyn SdnApp>,
    config: &StubConfig,
) -> StubReport {
    let mut report = StubReport::default();
    let mut dead = false;
    let mut hb_seq = 0u64;
    let mut last_heartbeat = Instant::now();

    // Register first.
    let reg = RpcMessage::Register {
        app_name: app.name().to_string(),
        subscriptions: app.subscriptions(),
    };
    if transport.send(&encode_frame(&reg)).is_err() {
        return report;
    }

    loop {
        // Heartbeat when due (and alive — a dead process doesn't beat).
        if !dead && last_heartbeat.elapsed() >= config.heartbeat_period {
            hb_seq += 1;
            report.heartbeats_sent += 1;
            last_heartbeat = Instant::now();
            if transport
                .send(&encode_frame(&RpcMessage::Heartbeat { seq: hb_seq }))
                .is_err()
            {
                return report;
            }
        }
        let frame = match transport.recv_timeout(config.heartbeat_period / 2) {
            Ok(Some(f)) => f,
            Ok(None) => continue,
            Err(TransportError::Disconnected) => return report,
            Err(_) => continue,
        };
        let Ok(msg) = decode_frame(&frame) else {
            continue;
        };
        match msg {
            RpcMessage::EventDeliver {
                seq,
                event,
                topology,
                devices,
                now,
            } => {
                if dead {
                    // A dead process can't answer. (The proxy's delivery
                    // timeout is its comm-failure crash signal.)
                    continue;
                }
                let mut ctx = Ctx::new(now, &topology, &devices);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    app.on_event(&event, &mut ctx);
                }));
                match result {
                    Ok(()) => {
                        report.events_processed += 1;
                        let ack = RpcMessage::EventAck {
                            seq,
                            commands: ctx.into_commands(),
                        };
                        if transport.send(&encode_frame(&ack)).is_err() {
                            return report;
                        }
                    }
                    Err(payload) => {
                        report.crashes_contained += 1;
                        dead = true;
                        if config.report_crashes {
                            let crashed = RpcMessage::Crashed {
                                seq,
                                panic_message: panic_text(&*payload),
                            };
                            let _ = transport.send(&encode_frame(&crashed));
                        }
                    }
                }
            }
            RpcMessage::SnapshotRequest { seq } => {
                if dead {
                    continue;
                }
                let reply = RpcMessage::SnapshotReply {
                    seq,
                    bytes: app.snapshot(),
                };
                if transport.send(&encode_frame(&reply)).is_err() {
                    return report;
                }
            }
            RpcMessage::RestoreRequest { seq, bytes } => {
                // Restore revives a dead app (the CRIU restart+restore).
                let ok = app.restore(&bytes).is_ok();
                if ok {
                    dead = false;
                    report.restores += 1;
                    last_heartbeat = Instant::now();
                }
                let ack = RpcMessage::RestoreAck { seq, ok };
                if transport.send(&encode_frame(&ack)).is_err() {
                    return report;
                }
            }
            RpcMessage::Shutdown => return report,
            // Proxy-bound frames are ignored if echoed back.
            _ => {}
        }
    }
}

/// Spawn the stub loop on its own sandbox thread.
pub fn spawn_stub<T: Transport + 'static>(
    transport: T,
    app: Box<dyn SdnApp>,
    config: StubConfig,
) -> JoinHandle<StubReport> {
    std::thread::Builder::new()
        .name("appvisor-stub".into())
        .spawn(move || run_stub(transport, app, &config))
        .expect("spawn stub thread")
}

#[cfg(test)]
mod stub_tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use legosdn_controller::app::RestoreError;
    use legosdn_controller::event::{Event, EventKind};
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;
    use legosdn_openflow::prelude::*;

    /// Minimal app: counts events, crashes on demand.
    struct TestApp {
        count: u32,
        crash_on: Option<u32>,
    }

    impl SdnApp for TestApp {
        fn name(&self) -> &str {
            "test-app"
        }
        fn subscriptions(&self) -> Vec<EventKind> {
            vec![EventKind::SwitchUp]
        }
        fn on_event(&mut self, _event: &Event, ctx: &mut Ctx<'_>) {
            self.count += 1;
            if Some(self.count) == self.crash_on {
                panic!("test app crash at {}", self.count);
            }
            ctx.send(DatapathId(1), Message::BarrierRequest);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_be_bytes().to_vec()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
            self.count =
                u32::from_be_bytes(bytes.try_into().map_err(|_| RestoreError("len".into()))?);
            Ok(())
        }
    }

    fn deliver_frame(seq: u64) -> Vec<u8> {
        encode_frame(&RpcMessage::EventDeliver {
            seq,
            event: Event::SwitchUp(DatapathId(1)),
            topology: TopologyView::default(),
            devices: DeviceView::default(),
            now: SimTime::ZERO,
        })
    }

    fn recv_msg(t: &mut ChannelTransport) -> RpcMessage {
        loop {
            let frame = t
                .recv_timeout(Duration::from_secs(2))
                .expect("transport alive")
                .expect("frame within deadline");
            let msg = decode_frame(&frame).expect("valid frame");
            if !matches!(msg, RpcMessage::Heartbeat { .. }) {
                return msg;
            }
        }
    }

    #[test]
    fn stub_registers_then_serves_events() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: None,
            }),
            StubConfig::default(),
        );
        match recv_msg(&mut proxy_side) {
            RpcMessage::Register {
                app_name,
                subscriptions,
            } => {
                assert_eq!(app_name, "test-app");
                assert_eq!(subscriptions, vec![EventKind::SwitchUp]);
            }
            other => panic!("expected register, got {other:?}"),
        }
        proxy_side.send(&deliver_frame(1)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::EventAck { seq, commands } => {
                assert_eq!(seq, 1);
                assert_eq!(commands.len(), 1);
            }
            other => panic!("expected ack, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.events_processed, 1);
        assert_eq!(report.crashes_contained, 0);
    }

    #[test]
    fn crash_is_contained_and_reported() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: Some(2),
            }),
            StubConfig::default(),
        );
        let _ = recv_msg(&mut proxy_side); // register
        proxy_side.send(&deliver_frame(1)).unwrap();
        let _ = recv_msg(&mut proxy_side); // ack 1
        proxy_side.send(&deliver_frame(2)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::Crashed { seq, panic_message } => {
                assert_eq!(seq, 2);
                assert!(panic_message.contains("test app crash"));
            }
            other => panic!("expected crashed, got {other:?}"),
        }
        // Dead stub ignores further events: at most heartbeats come back.
        proxy_side.send(&deliver_frame(3)).unwrap();
        let _ = proxy_side.recv_timeout(Duration::from_millis(100)).unwrap();
        // ...until restored.
        proxy_side
            .send(&encode_frame(&RpcMessage::RestoreRequest {
                seq: 4,
                bytes: 1u32.to_be_bytes().to_vec(),
            }))
            .unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::RestoreAck { seq, ok } => {
                assert_eq!(seq, 4);
                assert!(ok);
            }
            other => panic!("expected restore ack, got {other:?}"),
        }
        // Alive again: counts from the restored state (1), so event → 2 → crash again (deterministic bug).
        proxy_side.send(&deliver_frame(5)).unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::Crashed { seq, .. } => assert_eq!(seq, 5),
            other => panic!("deterministic bug must re-crash, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.crashes_contained, 2);
        assert_eq!(report.restores, 1);
    }

    #[test]
    fn silent_crash_mode_goes_quiet() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let config = StubConfig {
            heartbeat_period: Duration::from_millis(10),
            report_crashes: false,
        };
        let _handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: Some(1),
            }),
            config,
        );
        let _ = recv_msg(&mut proxy_side); // register
        proxy_side.send(&deliver_frame(1)).unwrap();
        // No Crashed frame, no ack, and heartbeats stop: silence.
        let deadline = Instant::now() + Duration::from_millis(300);
        let mut last_non_heartbeat = None;
        while Instant::now() < deadline {
            if let Ok(Some(frame)) = proxy_side.recv_timeout(Duration::from_millis(20)) {
                let msg = decode_frame(&frame).unwrap();
                if !matches!(msg, RpcMessage::Heartbeat { .. }) {
                    last_non_heartbeat = Some(msg);
                }
            }
        }
        assert!(last_non_heartbeat.is_none(), "got {last_non_heartbeat:?}");
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
    }

    #[test]
    fn snapshot_request_roundtrips() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 7,
                crash_on: None,
            }),
            StubConfig::default(),
        );
        let _ = recv_msg(&mut proxy_side);
        proxy_side
            .send(&encode_frame(&RpcMessage::SnapshotRequest { seq: 1 }))
            .unwrap();
        match recv_msg(&mut proxy_side) {
            RpcMessage::SnapshotReply { seq, bytes } => {
                assert_eq!(seq, 1);
                assert_eq!(bytes, 7u32.to_be_bytes().to_vec());
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn heartbeats_flow() {
        let (mut proxy_side, stub_side) = ChannelTransport::pair();
        let config = StubConfig {
            heartbeat_period: Duration::from_millis(5),
            report_crashes: true,
        };
        let _handle = spawn_stub(
            stub_side,
            Box::new(TestApp {
                count: 0,
                crash_on: None,
            }),
            config,
        );
        let _ = proxy_side.recv_timeout(Duration::from_secs(1)); // register
        let mut beats = 0;
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline && beats < 3 {
            if let Ok(Some(frame)) = proxy_side.recv_timeout(Duration::from_millis(50)) {
                if matches!(decode_frame(&frame), Ok(RpcMessage::Heartbeat { .. })) {
                    beats += 1;
                }
            }
        }
        assert!(beats >= 3, "expected heartbeats, got {beats}");
        proxy_side
            .send(&encode_frame(&RpcMessage::Shutdown))
            .unwrap();
    }
}
