//! Property tests for the AppVisor RPC plane: frame roundtrips over
//! arbitrary protocol values, and end-to-end proxy⇄stub consistency for
//! random event streams.

use legosdn_appvisor::{decode_frame, encode_frame, RpcMessage};
use legosdn_controller::app::Command;
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::{Endpoint, SimTime};
use legosdn_openflow::prelude::*;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (1u64..100).prop_map(|d| Event::SwitchUp(DatapathId(d))),
        (1u64..100).prop_map(|d| Event::SwitchDown(DatapathId(d))),
        (1u64..50, 1u64..50, 1u16..8, 1u16..8).prop_map(|(a, b, pa, pb)| Event::LinkDown {
            a: Endpoint::new(DatapathId(a), pa),
            b: Endpoint::new(DatapathId(b), pb),
        }),
        (1u64..100, 1u64..64, 1u64..64, 1u16..48).prop_map(|(d, src, dst, port)| {
            Event::PacketIn(
                DatapathId(d),
                PacketIn {
                    buffer_id: BufferId::NONE,
                    in_port: PortNo::Phys(port),
                    reason: PacketInReason::NoMatch,
                    packet: Packet::ethernet(MacAddr::from_index(src), MacAddr::from_index(dst)),
                },
            )
        }),
        (0u64..10_000).prop_map(|us| Event::Tick(SimTime::from_micros(us))),
    ]
}

fn arb_command() -> impl Strategy<Value = Command> {
    (1u64..100, 1u64..64, 1u16..48).prop_map(|(d, dst, port)| Command {
        dpid: DatapathId(d),
        msg: Message::FlowMod(
            FlowMod::add(Match::eth_dst(MacAddr::from_index(dst)))
                .action(Action::Output(PortNo::Phys(port))),
        ),
    })
}

fn arb_views() -> impl Strategy<Value = (TopologyView, DeviceView)> {
    (
        proptest::collection::vec((1u64..20, 1u64..20, 1u16..8, 1u16..8), 0..10),
        proptest::collection::vec((1u64..64, 1u64..20, 1u16..8), 0..10),
    )
        .prop_map(|(links, hosts)| {
            let mut topo = TopologyView::default();
            for (a, b, pa, pb) in links {
                topo.switch_up(DatapathId(a), vec![]);
                topo.switch_up(DatapathId(b), vec![]);
                if a != b {
                    topo.link_up(Endpoint::new(DatapathId(a), pa), Endpoint::new(DatapathId(b), pb));
                }
            }
            let mut dev = DeviceView::default();
            for (mac, d, p) in hosts {
                dev.learn(
                    MacAddr::from_index(mac),
                    Some(Ipv4Addr::from_index(mac as u32)),
                    Endpoint::new(DatapathId(d), p),
                    SimTime::ZERO,
                );
            }
            (topo, dev)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frames_roundtrip(
        seq in any::<u64>(),
        event in arb_event(),
        (topology, devices) in arb_views(),
        commands in proptest::collection::vec(arb_command(), 0..8),
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        name in "[a-z-]{1,24}",
        ok in any::<bool>(),
    ) {
        let frames = vec![
            RpcMessage::Register {
                app_name: name,
                subscriptions: vec![EventKind::PacketIn, EventKind::Tick],
            },
            RpcMessage::Heartbeat { seq },
            RpcMessage::EventAck { seq, commands },
            RpcMessage::Crashed { seq, panic_message: "p".into() },
            RpcMessage::SnapshotReply { seq, bytes: bytes.clone() },
            RpcMessage::RestoreAck { seq, ok },
            RpcMessage::EventDeliver {
                seq,
                event,
                topology,
                devices,
                now: SimTime::from_micros(seq % 1_000_000),
            },
            RpcMessage::SnapshotRequest { seq },
            RpcMessage::RestoreRequest { seq, bytes },
            RpcMessage::Shutdown,
        ];
        for f in frames {
            let encoded = encode_frame(&f);
            let back = decode_frame(&encoded).expect("decode");
            prop_assert_eq!(back, f);
        }
    }

    /// Truncation never decodes, never panics.
    #[test]
    fn truncated_frames_never_decode(
        event in arb_event(),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(&RpcMessage::EventDeliver {
            seq: 1,
            event,
            topology: TopologyView::default(),
            devices: DeviceView::default(),
            now: SimTime::ZERO,
        });
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_frame(&frame[..cut]).is_err());
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }
}
