//! Property tests for the AppVisor RPC plane: frame roundtrips over
//! arbitrary protocol values, and end-to-end proxy⇄stub consistency for
//! random event streams.

use legosdn_appvisor::{decode_frame, encode_frame, RpcMessage};
use legosdn_controller::app::Command;
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::{DeviceView, TopologyView};
use legosdn_netsim::{Endpoint, SimTime};
use legosdn_openflow::prelude::*;
use legosdn_testkit::{forall, Rng};

fn arb_event(rng: &mut Rng) -> Event {
    match rng.gen_range(0u32..5) {
        0 => Event::SwitchUp(DatapathId(rng.gen_range(1u64..100))),
        1 => Event::SwitchDown(DatapathId(rng.gen_range(1u64..100))),
        2 => Event::LinkDown {
            a: Endpoint::new(DatapathId(rng.gen_range(1u64..50)), rng.gen_range(1u16..8)),
            b: Endpoint::new(DatapathId(rng.gen_range(1u64..50)), rng.gen_range(1u16..8)),
        },
        3 => Event::PacketIn(
            DatapathId(rng.gen_range(1u64..100)),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(rng.gen_range(1u16..48)),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(
                    MacAddr::from_index(rng.gen_range(1u64..64)),
                    MacAddr::from_index(rng.gen_range(1u64..64)),
                ),
            },
        ),
        _ => Event::Tick(SimTime::from_micros(rng.gen_range(0u64..10_000))),
    }
}

fn arb_command(rng: &mut Rng) -> Command {
    Command {
        dpid: DatapathId(rng.gen_range(1u64..100)),
        msg: Message::FlowMod(
            FlowMod::add(Match::eth_dst(MacAddr::from_index(rng.gen_range(1u64..64))))
                .action(Action::Output(PortNo::Phys(rng.gen_range(1u16..48)))),
        ),
    }
}

fn arb_views(rng: &mut Rng) -> (TopologyView, DeviceView) {
    let links = rng.gen_vec(0..10, |r| {
        (
            r.gen_range(1u64..20),
            r.gen_range(1u64..20),
            r.gen_range(1u16..8),
            r.gen_range(1u16..8),
        )
    });
    let hosts = rng.gen_vec(0..10, |r| {
        (
            r.gen_range(1u64..64),
            r.gen_range(1u64..20),
            r.gen_range(1u16..8),
        )
    });
    let mut topo = TopologyView::default();
    for (a, b, pa, pb) in links {
        topo.switch_up(DatapathId(a), vec![]);
        topo.switch_up(DatapathId(b), vec![]);
        if a != b {
            topo.link_up(
                Endpoint::new(DatapathId(a), pa),
                Endpoint::new(DatapathId(b), pb),
            );
        }
    }
    let mut dev = DeviceView::default();
    for (mac, d, p) in hosts {
        dev.learn(
            MacAddr::from_index(mac),
            Some(Ipv4Addr::from_index(mac as u32)),
            Endpoint::new(DatapathId(d), p),
            SimTime::ZERO,
        );
    }
    (topo, dev)
}

#[test]
fn frames_roundtrip() {
    forall(256, |rng| {
        let seq = rng.next_u64();
        let event = arb_event(rng);
        let (topology, devices) = arb_views(rng);
        let commands = rng.gen_vec(0..8, arb_command);
        let bytes = rng.gen_vec(0..128, |r| r.next_u64() as u8);
        let name = rng.gen_name(1..25);
        let ok = rng.gen_bool(0.5);
        let frames = vec![
            RpcMessage::Register {
                app_name: name,
                subscriptions: vec![EventKind::PacketIn, EventKind::Tick],
            },
            RpcMessage::Heartbeat { seq },
            RpcMessage::EventAck { seq, commands },
            RpcMessage::Crashed {
                seq,
                panic_message: "p".into(),
            },
            RpcMessage::SnapshotReply {
                seq,
                bytes: bytes.clone(),
            },
            RpcMessage::RestoreAck { seq, ok },
            RpcMessage::EventDeliver {
                seq,
                event,
                topology,
                devices,
                now: SimTime::from_micros(seq % 1_000_000),
            },
            RpcMessage::SnapshotRequest { seq },
            RpcMessage::RestoreRequest { seq, bytes },
            RpcMessage::Shutdown,
        ];
        for f in frames {
            let encoded = encode_frame(&f);
            let back = decode_frame(&encoded).expect("decode");
            assert_eq!(back, f);
        }
    });
}

/// Truncation never decodes, never panics.
#[test]
fn truncated_frames_never_decode() {
    forall(256, |rng| {
        let event = arb_event(rng);
        let cut_frac = rng.gen_f64();
        let frame = encode_frame(&RpcMessage::EventDeliver {
            seq: 1,
            event,
            topology: TopologyView::default(),
            devices: DeviceView::default(),
            now: SimTime::ZERO,
        });
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        assert!(cut < frame.len());
        assert!(decode_frame(&frame[..cut]).is_err());
    });
}

/// Random garbage never panics the decoder.
#[test]
fn garbage_never_panics() {
    forall(256, |rng| {
        let bytes = rng.gen_vec(0..256, |r| r.next_u64() as u8);
        let _ = decode_frame(&bytes);
    });
}
