//! Property tests for the invariant checker: the probe agrees with the
//! real dataplane, checks are side-effect-free, and the gate is sound
//! (never lets a detectable violation through) on randomized topologies
//! and rule sets.

use legosdn_invariants::{probe, Checker};
use legosdn_netsim::{Network, Topology};
use legosdn_openflow::prelude::*;
use legosdn_testkit::forall;

/// Install destination-based forwarding along shortest paths for every
/// host (ground-truth-correct rules).
fn install_correct_routing(net: &mut Network, topo: &Topology) {
    // Controller-side BFS over the topology spec.
    for h in &topo.hosts {
        // Final hop.
        let fm =
            FlowMod::add(Match::eth_dst(h.mac)).action(Action::Output(PortNo::Phys(h.attach.port)));
        net.apply(h.attach.dpid, &Message::FlowMod(fm)).unwrap();
        // Other switches: BFS toward the attach switch.
        let dpids: Vec<DatapathId> = topo.switches.keys().copied().collect();
        for &d in &dpids {
            if d == h.attach.dpid {
                continue;
            }
            // BFS from d to h.attach.dpid over topo.links.
            let mut prev: std::collections::BTreeMap<DatapathId, (DatapathId, u16)> =
                Default::default();
            let mut q = std::collections::VecDeque::from([d]);
            let mut seen = std::collections::BTreeSet::from([d]);
            while let Some(cur) = q.pop_front() {
                for l in &topo.links {
                    let (from, to) = if l.a.dpid == cur {
                        (l.a, l.b)
                    } else if l.b.dpid == cur {
                        (l.b, l.a)
                    } else {
                        continue;
                    };
                    if seen.insert(to.dpid) {
                        prev.insert(to.dpid, (cur, from.port));
                        q.push_back(to.dpid);
                    }
                }
            }
            // Walk back from target to find d's out-port.
            let mut cur = h.attach.dpid;
            let mut out_port = None;
            while let Some(&(p, port)) = prev.get(&cur) {
                if p == d {
                    out_port = Some(port);
                    break;
                }
                cur = p;
            }
            if let Some(port) = out_port {
                let fm =
                    FlowMod::add(Match::eth_dst(h.mac)).action(Action::Output(PortNo::Phys(port)));
                net.apply(d, &Message::FlowMod(fm)).unwrap();
            }
        }
    }
}

/// On correctly-routed random topologies the checker reports clean and
/// all pairs delivered; and probing agrees with actually injecting.
#[test]
fn correct_routing_is_clean_and_probe_matches_dataplane() {
    forall(64, |rng| {
        let seed = rng.gen_range(0u64..500);
        let topo = Topology::random(5, 2, 1, seed);
        let mut net = Network::new(&topo);
        install_correct_routing(&mut net, &topo);
        let report = Checker::default().check(&net);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.pairs_delivered, report.pairs_checked);

        // Probe vs dataplane agreement on a few pairs.
        for (i, src) in topo.hosts.iter().enumerate().take(3) {
            let dst = &topo.hosts[(i + 1) % topo.hosts.len()];
            if src.mac == dst.mac {
                continue;
            }
            let pkt = Packet::ethernet(src.mac, dst.mac);
            let probe_says = probe(&net, src.mac, dst.mac, &pkt).is_delivered();
            let trace = net.inject(src.mac, pkt).unwrap();
            assert_eq!(probe_says, trace.delivered_to(dst.mac));
        }
    });
}

/// check() is observationally pure: flow counters and stats untouched.
#[test]
fn check_has_no_side_effects() {
    forall(64, |rng| {
        let seed = rng.gen_range(0u64..500);
        let topo = Topology::random(4, 1, 1, seed);
        let mut net = Network::new(&topo);
        install_correct_routing(&mut net, &topo);
        let lookups_before: Vec<u64> = net
            .switches()
            .map(|s| s.table().stats().lookup_count)
            .collect();
        let _ = Checker::default().check(&net);
        let lookups_after: Vec<u64> = net
            .switches()
            .map(|s| s.table().stats().lookup_count)
            .collect();
        assert_eq!(lookups_before, lookups_after);
    });
}

/// Gate soundness: adding a top-priority drop rule to any switch on a
/// delivering path is caught, and the gate leaves the network intact.
#[test]
fn gate_catches_planted_blackhole() {
    forall(64, |rng| {
        let seed = rng.gen_range(0u64..500);
        let victim_idx = rng.gen_range(0usize..5);
        let topo = Topology::random(5, 1, 1, seed);
        let mut net = Network::new(&topo);
        install_correct_routing(&mut net, &topo);
        let dpids: Vec<DatapathId> = topo.switches.keys().copied().collect();
        let victim = dpids[victim_idx % dpids.len()];
        let bad = vec![(
            victim,
            Message::FlowMod(FlowMod::add(Match::any()).priority(u16::MAX)),
        )];
        let report = Checker::default().gate(&net, &bad);
        // The victim switch hosts at least one host or forwards for one, so
        // some pair must die.
        assert!(!report.is_clean(), "blackhole on {victim:?} undetected");
        // Gate never mutates the real network.
        assert!(Checker::default().check(&net).is_clean());
    });
}

/// Loop soundness: pointing two adjacent switches at each other with a
/// top-priority rule is always caught as a loop or black-hole.
#[test]
fn gate_catches_planted_loop() {
    forall(64, |rng| {
        let seed = rng.gen_range(0u64..500);
        let topo = Topology::random(4, 1, 1, seed);
        let mut net = Network::new(&topo);
        install_correct_routing(&mut net, &topo);
        let link = topo.links[0];
        let bad = vec![
            (
                link.a.dpid,
                Message::FlowMod(
                    FlowMod::add(Match::any())
                        .priority(u16::MAX)
                        .action(Action::Output(PortNo::Phys(link.a.port))),
                ),
            ),
            (
                link.b.dpid,
                Message::FlowMod(
                    FlowMod::add(Match::any())
                        .priority(u16::MAX)
                        .action(Action::Output(PortNo::Phys(link.b.port))),
                ),
            ),
        ];
        let report = Checker::default().gate(&net, &bad);
        assert!(!report.is_clean(), "planted loop undetected");
    });
}
