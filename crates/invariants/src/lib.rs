//! Network invariant checking — the VeriFlow-style policy checker the paper
//! assumes for byzantine-failure detection (§3.3) and "No-Compromise"
//! enforcement (§5).
//!
//! - [`mod@probe`]: non-mutating dataplane walks classifying each host pair as
//!   delivered / punted / black-holed / looping.
//! - [`checker`]: invariant sets, full-network checks, the NetLog pre-commit
//!   [`Checker::gate`], and the §5 [`checker::shutdown_network`] escape
//!   hatch.

pub mod checker;
pub mod probe;

pub use checker::{shutdown_network, CheckReport, Checker, Invariant, Violation};
pub use probe::{probe, ProbeOutcome, PROBE_HOP_LIMIT};
