//! Network-wide invariant evaluation and the NetLog pre-commit gate.
//!
//! Implements the VeriFlow-style policy checker the paper leans on for
//! byzantine-failure detection (§3.3) and for enforcing "No-Compromise"
//! invariants with a network-shutdown escape hatch (§5).

use crate::probe::{probe, ProbeOutcome};
use legosdn_codec::Codec;
use legosdn_netsim::{Endpoint, Network};
use legosdn_openflow::prelude::{DatapathId, MacAddr, Message, Packet};

/// A checkable network-wide invariant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Codec)]
pub enum Invariant {
    /// No host pair's traffic dies at a drop rule or dead port.
    NoBlackHoles,
    /// No host pair's traffic cycles.
    NoLoops,
    /// Every host pair is delivered or at worst punts to the controller.
    AllPairsServiced,
}

/// A concrete violation found by the checker.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub enum Violation {
    BlackHole {
        src: MacAddr,
        dst: MacAddr,
        at: Endpoint,
    },
    Loop {
        src: MacAddr,
        dst: MacAddr,
        path: Vec<Endpoint>,
    },
    Undelivered {
        src: MacAddr,
        dst: MacAddr,
    },
}

impl Violation {
    /// Which invariant does this violate?
    #[must_use]
    pub fn invariant(&self) -> Invariant {
        match self {
            Violation::BlackHole { .. } => Invariant::NoBlackHoles,
            Violation::Loop { .. } => Invariant::NoLoops,
            Violation::Undelivered { .. } => Invariant::AllPairsServiced,
        }
    }
}

/// Result of a full check.
#[derive(Clone, Debug, Default, PartialEq, Eq, Codec)]
pub struct CheckReport {
    pub pairs_checked: usize,
    pub pairs_delivered: usize,
    pub pairs_punted: usize,
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// No violations found?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a specific invariant.
    #[must_use]
    pub fn violations_of(&self, inv: Invariant) -> usize {
        self.violations
            .iter()
            .filter(|v| v.invariant() == inv)
            .count()
    }
}

/// The invariant checker: probes host pairs and classifies outcomes.
#[derive(Clone, Debug)]
pub struct Checker {
    /// Which invariants to enforce.
    pub invariants: Vec<Invariant>,
    /// Cap on host pairs probed per check (all-pairs is quadratic; large
    /// topologies sample the first N pairs deterministically).
    pub max_pairs: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            invariants: vec![Invariant::NoBlackHoles, Invariant::NoLoops],
            max_pairs: 4096,
        }
    }
}

impl Checker {
    /// A checker enforcing the given invariants.
    #[must_use]
    pub fn new(invariants: Vec<Invariant>) -> Self {
        Checker {
            invariants,
            ..Checker::default()
        }
    }

    /// Probe every (ordered) host pair and report violations of the
    /// enforced invariants.
    #[must_use]
    pub fn check(&self, net: &Network) -> CheckReport {
        let hosts: Vec<_> = net.hosts().to_vec();
        let mut report = CheckReport::default();
        'outer: for src in &hosts {
            for dst in &hosts {
                if src.mac == dst.mac {
                    continue;
                }
                if report.pairs_checked >= self.max_pairs {
                    break 'outer;
                }
                report.pairs_checked += 1;
                let pkt = Packet::ethernet(src.mac, dst.mac);
                match probe(net, src.mac, dst.mac, &pkt) {
                    ProbeOutcome::Delivered
                    | ProbeOutcome::Flooded {
                        reached_destination: true,
                    } => {
                        report.pairs_delivered += 1;
                    }
                    ProbeOutcome::Punt { .. } => {
                        report.pairs_punted += 1;
                    }
                    ProbeOutcome::BlackHole { at } => {
                        if self.invariants.contains(&Invariant::NoBlackHoles) {
                            report.violations.push(Violation::BlackHole {
                                src: src.mac,
                                dst: dst.mac,
                                at,
                            });
                        }
                    }
                    ProbeOutcome::Loop { path } => {
                        if self.invariants.contains(&Invariant::NoLoops) {
                            report.violations.push(Violation::Loop {
                                src: src.mac,
                                dst: dst.mac,
                                path,
                            });
                        }
                    }
                    ProbeOutcome::Flooded {
                        reached_destination: false,
                    } => {
                        if self.invariants.contains(&Invariant::AllPairsServiced) {
                            report.violations.push(Violation::Undelivered {
                                src: src.mac,
                                dst: dst.mac,
                            });
                        }
                    }
                    ProbeOutcome::NoSuchSource => {}
                }
            }
        }
        report
    }

    /// The pre-commit gate: would applying `commands` violate the enforced
    /// invariants? Verifies against a scratch clone; the real network is
    /// untouched.
    ///
    /// This is how NetLog detects byzantine output before it damages the
    /// network (§3.3: "the output of the SDN-App violates network
    /// invariants, which can be detected using policy checkers").
    #[must_use]
    pub fn gate(&self, net: &Network, commands: &[(DatapathId, Message)]) -> CheckReport {
        let mut scratch = net.clone();
        for (dpid, msg) in commands {
            let _ = scratch.apply(*dpid, msg);
        }
        self.check(&scratch)
    }
}

/// The §5 escape hatch: when a "No-Compromise" invariant is violated, the
/// network shuts down rather than run unsafely. Powers every switch off.
pub fn shutdown_network(net: &mut Network) {
    let dpids: Vec<DatapathId> = net.switches().map(|s| s.dpid()).collect();
    for d in dpids {
        let _ = net.set_switch_up(d, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_netsim::Topology;
    use legosdn_openflow::prelude::*;

    fn delivered_net() -> (Network, Topology) {
        let topo = Topology::linear(2, 1);
        let mut net = Network::new(&topo);
        // Full L2 forwarding both ways.
        for h in &topo.hosts {
            let fm = FlowMod::add(Match::eth_dst(h.mac))
                .action(Action::Output(PortNo::Phys(h.attach.port)));
            net.apply(h.attach.dpid, &Message::FlowMod(fm)).unwrap();
            for (l, _) in net.links().map(|(l, up)| (*l, up)).collect::<Vec<_>>() {
                let (d, p) = if l.a.dpid != h.attach.dpid {
                    (l.a.dpid, l.a.port)
                } else {
                    (l.b.dpid, l.b.port)
                };
                let fm =
                    FlowMod::add(Match::eth_dst(h.mac)).action(Action::Output(PortNo::Phys(p)));
                net.apply(d, &Message::FlowMod(fm)).unwrap();
            }
        }
        (net, topo)
    }

    #[test]
    fn clean_network_is_clean() {
        let (net, _) = delivered_net();
        let report = Checker::default().check(&net);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.pairs_checked, 2);
        assert_eq!(report.pairs_delivered, 2);
    }

    #[test]
    fn empty_network_punts_cleanly() {
        let topo = Topology::linear(2, 1);
        let net = Network::new(&topo);
        let report = Checker::default().check(&net);
        assert!(report.is_clean());
        assert_eq!(report.pairs_punted, 2);
    }

    #[test]
    fn blackhole_is_reported() {
        let (mut net, topo) = delivered_net();
        let d1 = topo.hosts[0].attach.dpid;
        net.apply(
            d1,
            &Message::FlowMod(FlowMod::add(Match::any()).priority(u16::MAX)),
        )
        .unwrap();
        let report = Checker::default().check(&net);
        assert!(!report.is_clean());
        assert!(report.violations_of(Invariant::NoBlackHoles) >= 1);
    }

    #[test]
    fn loop_is_reported() {
        let topo = Topology::linear(2, 1);
        let mut net = Network::new(&topo);
        for (l, _) in net.links().map(|(l, up)| (*l, up)).collect::<Vec<_>>() {
            for ep in [l.a, l.b] {
                let fm = FlowMod::add(Match::any())
                    .priority(u16::MAX)
                    .action(Action::Output(PortNo::Phys(ep.port)));
                net.apply(ep.dpid, &Message::FlowMod(fm)).unwrap();
            }
        }
        let report = Checker::default().check(&net);
        assert!(report.violations_of(Invariant::NoLoops) >= 1, "{report:?}");
    }

    #[test]
    fn disabled_invariants_are_not_reported() {
        let (mut net, topo) = delivered_net();
        let d1 = topo.hosts[0].attach.dpid;
        net.apply(
            d1,
            &Message::FlowMod(FlowMod::add(Match::any()).priority(u16::MAX)),
        )
        .unwrap();
        let loose = Checker::new(vec![Invariant::NoLoops]);
        assert!(loose.check(&net).is_clean());
    }

    #[test]
    fn gate_detects_violation_without_touching_network() {
        let (net, topo) = delivered_net();
        let d1 = topo.hosts[0].attach.dpid;
        let bad = vec![(
            d1,
            Message::FlowMod(FlowMod::add(Match::any()).priority(u16::MAX)),
        )];
        let report = Checker::default().gate(&net, &bad);
        assert!(!report.is_clean());
        // Real network unchanged: still clean.
        assert!(Checker::default().check(&net).is_clean());
        assert_eq!(
            net.switch(d1)
                .unwrap()
                .table()
                .iter()
                .filter(|e| e.priority == u16::MAX)
                .count(),
            0
        );
    }

    #[test]
    fn gate_passes_benign_commands() {
        let (net, topo) = delivered_net();
        let d1 = topo.hosts[0].attach.dpid;
        let benign = vec![(
            d1,
            Message::FlowMod(
                FlowMod::add(Match::eth_dst(MacAddr::from_index(50)))
                    .action(Action::Output(PortNo::Phys(1))),
            ),
        )];
        assert!(Checker::default().gate(&net, &benign).is_clean());
    }

    #[test]
    fn max_pairs_caps_work() {
        let topo = Topology::star(3, 2); // 6 hosts → 30 ordered pairs
        let net = Network::new(&topo);
        let checker = Checker {
            max_pairs: 7,
            ..Checker::default()
        };
        let report = checker.check(&net);
        assert_eq!(report.pairs_checked, 7);
    }

    #[test]
    fn shutdown_powers_everything_off() {
        let (mut net, _) = delivered_net();
        shutdown_network(&mut net);
        assert!(net.switches().all(|s| !s.is_up()));
    }

    #[test]
    fn all_pairs_serviced_catches_flood_miss() {
        // A flood that reaches the wrong hosts only.
        let topo = Topology::star(2, 1); // core + 2 leaves, 1 host each
        let mut net = Network::new(&topo);
        // Leaf switches flood; core drops toward leaf 2 by having no rule...
        // Simpler: give the source's leaf a rule flooding only to nowhere:
        // actually verify Undelivered via flood that misses: point the
        // packet at a third host that doesn't exist on the flood path.
        for sw in topo.switches.keys() {
            let fm = FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood));
            net.apply(*sw, &Message::FlowMod(fm)).unwrap();
        }
        // With full flooding every pair is reached, so this stays clean.
        let strict = Checker::new(vec![
            Invariant::NoBlackHoles,
            Invariant::NoLoops,
            Invariant::AllPairsServiced,
        ]);
        let report = strict.check(&net);
        assert!(report.is_clean(), "{report:?}");
    }
}
