//! Non-mutating dataplane probing.
//!
//! Walks a hypothetical packet through the network's flow tables using
//! read-only lookups (`FlowTable::peek`), classifying the outcome without
//! touching counters, buffers, or the event queue. This is what lets the
//! checker evaluate the *current* rule set — and, against a scratch clone of
//! the network, a *candidate* rule set — without observable side effects.

use legosdn_codec::Codec;
use legosdn_netsim::{Endpoint, Network};
use legosdn_openflow::prelude::{apply_actions, MacAddr, Packet, PortNo};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Hop budget for a probe (matches the dataplane's limit).
pub const PROBE_HOP_LIMIT: usize = 64;

/// How a probed packet fared.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub enum ProbeOutcome {
    /// Reached the destination host.
    Delivered,
    /// Matched a rule whose outputs lead nowhere (or a drop rule) at this
    /// switch — a black-hole.
    BlackHole { at: Endpoint },
    /// Revisited a (switch, port, packet) state or exhausted the hop
    /// budget — a forwarding loop.
    Loop { path: Vec<Endpoint> },
    /// No rule matched somewhere: the packet would punt to the controller.
    /// Not a violation — reactive apps are expected to handle it.
    Punt { at: Endpoint },
    /// Delivered, but to hosts other than the intended destination (e.g. a
    /// flood); carries whether the intended host was among them.
    Flooded { reached_destination: bool },
    /// The source host is unknown to the network.
    NoSuchSource,
}

impl ProbeOutcome {
    /// Does the outcome mean the destination is reachable right now without
    /// controller intervention?
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(
            self,
            ProbeOutcome::Delivered
                | ProbeOutcome::Flooded {
                    reached_destination: true
                }
        )
    }

    /// Is this outcome an invariant violation (black-hole or loop)?
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            ProbeOutcome::BlackHole { .. } | ProbeOutcome::Loop { .. }
        )
    }
}

fn hash_packet(pkt: &Packet) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pkt.hash(&mut h);
    h.finish()
}

/// Probe `packet` from `src` toward `dst` through the current flow tables.
#[must_use]
pub fn probe(net: &Network, src: MacAddr, dst: MacAddr, packet: &Packet) -> ProbeOutcome {
    let Some(host) = net.host_by_mac(src) else {
        return ProbeOutcome::NoSuchSource;
    };
    let mut queue: VecDeque<(Endpoint, Packet)> = VecDeque::new();
    let mut visited: HashSet<(Endpoint, u64)> = HashSet::new();
    let mut path: Vec<Endpoint> = Vec::new();
    queue.push_back((host.attach, packet.clone()));

    let mut delivered_to_dst = false;
    let mut delivered_other = false;
    let mut punt: Option<Endpoint> = None;
    let mut black_hole: Option<Endpoint> = None;
    let mut hops = 0usize;

    while let Some((at, pkt)) = queue.pop_front() {
        hops += 1;
        if hops > PROBE_HOP_LIMIT || !visited.insert((at, hash_packet(&pkt))) {
            return ProbeOutcome::Loop { path };
        }
        path.push(at);
        let Some(sw) = net.switch(at.dpid) else {
            black_hole.get_or_insert(at);
            continue;
        };
        if !sw.is_up() {
            black_hole.get_or_insert(at);
            continue;
        }
        let in_port_live = sw.port(at.port).map(|p| p.desc.is_live()).unwrap_or(false);
        if !in_port_live {
            black_hole.get_or_insert(at);
            continue;
        }
        let Some(entry) = sw.table().peek(&pkt, PortNo::Phys(at.port)) else {
            punt.get_or_insert(at);
            continue;
        };
        if entry.actions.is_empty() {
            black_hole.get_or_insert(at);
            continue;
        }
        let (rewritten, outputs) = apply_actions(&entry.actions, &pkt);
        let mut emitted_any = false;
        for out in outputs {
            let ports: Vec<u16> = match out {
                PortNo::Phys(p) => vec![p],
                PortNo::InPort => vec![at.port],
                PortNo::Flood | PortNo::All => sw.live_ports().filter(|&p| p != at.port).collect(),
                // Controller output punts; other pseudo-ports drop.
                PortNo::Controller => {
                    punt.get_or_insert(at);
                    continue;
                }
                _ => continue,
            };
            for p in ports {
                let from = Endpoint::new(at.dpid, p);
                let port_live = sw.port(p).map(|ps| ps.desc.is_live()).unwrap_or(false);
                if !port_live {
                    continue;
                }
                if let Some(h) = net.host_at(from) {
                    emitted_any = true;
                    if h.mac == dst {
                        delivered_to_dst = true;
                    } else {
                        delivered_other = true;
                    }
                } else if let Some(peer) = net.link_peer(from) {
                    emitted_any = true;
                    queue.push_back((peer, rewritten.clone()));
                }
                // Dangling live port: emitted into the void — not counted.
            }
        }
        if !emitted_any && punt.is_none() {
            // Every output died (dead ports, dangling links): black-hole.
            black_hole.get_or_insert(at);
        }
    }

    if delivered_to_dst && !delivered_other {
        ProbeOutcome::Delivered
    } else if delivered_to_dst || delivered_other {
        ProbeOutcome::Flooded {
            reached_destination: delivered_to_dst,
        }
    } else if let Some(at) = punt {
        ProbeOutcome::Punt { at }
    } else if let Some(at) = black_hole {
        ProbeOutcome::BlackHole { at }
    } else {
        // Nothing happened at all (e.g. source attach port dead).
        ProbeOutcome::BlackHole { at: host.attach }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_netsim::Topology;
    use legosdn_openflow::prelude::*;

    fn net2() -> (Network, Topology) {
        let topo = Topology::linear(2, 1);
        (Network::new(&topo), topo)
    }

    fn install(net: &mut Network, dpid: DatapathId, fm: FlowMod) {
        net.apply(dpid, &Message::FlowMod(fm)).unwrap();
    }

    fn trunk_port(net: &Network, d: DatapathId) -> u16 {
        net.links()
            .find_map(|(l, _)| {
                if l.a.dpid == d {
                    Some(l.a.port)
                } else if l.b.dpid == d {
                    Some(l.b.port)
                } else {
                    None
                }
            })
            .unwrap()
    }

    #[test]
    fn empty_tables_punt() {
        let (net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert!(matches!(out, ProbeOutcome::Punt { .. }));
        assert!(!out.is_violation());
        // Probing must not mutate counters.
        assert_eq!(
            net.switch(DatapathId(1))
                .unwrap()
                .table()
                .stats()
                .lookup_count,
            0
        );
    }

    #[test]
    fn full_path_delivers() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        let b_attach = topo.hosts[1].attach;
        let d1 = topo.hosts[0].attach.dpid;
        let trunk = trunk_port(&net, d1);
        install(
            &mut net,
            d1,
            FlowMod::add(Match::eth_dst(b)).action(Action::Output(PortNo::Phys(trunk))),
        );
        install(
            &mut net,
            b_attach.dpid,
            FlowMod::add(Match::eth_dst(b)).action(Action::Output(PortNo::Phys(b_attach.port))),
        );
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert_eq!(out, ProbeOutcome::Delivered);
        assert!(out.is_delivered());
    }

    #[test]
    fn drop_rule_is_black_hole() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        let d1 = topo.hosts[0].attach.dpid;
        install(&mut net, d1, FlowMod::add(Match::any()).priority(u16::MAX));
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert!(matches!(out, ProbeOutcome::BlackHole { at } if at.dpid == d1));
        assert!(out.is_violation());
    }

    #[test]
    fn dead_egress_is_black_hole() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        let d1 = topo.hosts[0].attach.dpid;
        let trunk = trunk_port(&net, d1);
        install(
            &mut net,
            d1,
            FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(trunk))),
        );
        net.set_link_up(0, false).unwrap();
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert!(matches!(out, ProbeOutcome::BlackHole { .. }), "got {out:?}");
    }

    #[test]
    fn two_switch_loop_detected() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for sw in topo.switches.keys() {
            let out_port = trunk_port(&net, *sw);
            install(
                &mut net,
                *sw,
                FlowMod::add(Match::any()).action(Action::Output(PortNo::Phys(out_port))),
            );
        }
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert!(
            matches!(out, ProbeOutcome::Loop { ref path } if path.len() >= 2),
            "got {out:?}"
        );
    }

    #[test]
    fn flood_reaches_destination_as_flooded() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        for sw in topo.switches.keys() {
            install(
                &mut net,
                *sw,
                FlowMod::add(Match::any()).action(Action::Output(PortNo::Flood)),
            );
        }
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        // Linear(2, 1): the flood exits to host b only (other ports are the
        // trunk); b is on the far switch, so it arrives. Intermediate
        // deliveries to other hosts don't exist here, so Delivered.
        assert!(out.is_delivered(), "got {out:?}");
    }

    #[test]
    fn controller_output_is_punt() {
        let (mut net, topo) = net2();
        let (a, b) = (topo.hosts[0].mac, topo.hosts[1].mac);
        let d1 = topo.hosts[0].attach.dpid;
        install(
            &mut net,
            d1,
            FlowMod::add(Match::any()).action(Action::Output(PortNo::Controller)),
        );
        let out = probe(&net, a, b, &Packet::ethernet(a, b));
        assert!(matches!(out, ProbeOutcome::Punt { .. }), "got {out:?}");
    }

    #[test]
    fn unknown_source() {
        let (net, topo) = net2();
        let ghost = MacAddr::from_index(999);
        let out = probe(
            &net,
            ghost,
            topo.hosts[0].mac,
            &Packet::ethernet(ghost, ghost),
        );
        assert_eq!(out, ProbeOutcome::NoSuchSource);
    }
}
