//! `#[derive(Codec)]` — implements `legosdn_codec::Codec` for structs and
//! enums.
//!
//! Hand-rolled over raw `proc_macro::TokenTree`s because the build
//! environment has no registry access (no `syn`/`quote`). Supported shapes
//! cover everything the workspace serializes:
//!
//! - named-field structs, tuple structs, unit structs
//! - enums with unit / tuple / struct variants (encoded as a `u32` variant
//!   index followed by the fields in order)
//! - `#[codec(skip)]` on a named field: not encoded, `Default::default()`
//!   on decode
//!
//! Generic type parameters are intentionally unsupported — no workspace
//! snapshot type needs them, and rejecting them keeps the parser honest.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `legosdn_codec::Codec` for a struct or enum.
#[proc_macro_derive(Codec, attributes(codec))]
pub fn derive_codec(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

const TRAIT: &str = "::legosdn_codec::Codec";
const ERR: &str = "::legosdn_codec::CodecError";

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "#[derive(Codec)] does not support generics (on `{name}`)"
        ));
    }

    if kind == "struct" {
        match tokens.get(i) {
            // Unit struct: `struct X;`
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(unit_struct_impl(&name)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(named_struct_impl(&name, &fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                Ok(tuple_struct_impl(&name, n))
            }
            other => Err(format!("unexpected struct body for `{name}`: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                if variants.is_empty() {
                    return Err(format!("cannot derive Codec for empty enum `{name}`"));
                }
                Ok(enum_impl(&name, &variants))
            }
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]`
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            // `pub` possibly followed by `(crate)` / `(super)` / `(in ...)`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a token sequence at top-level commas. Groups are atomic token
/// trees, so only `<`/`>` generic angles need depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().unwrap().push(tt);
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Whether the leading attributes of a field contain `#[codec(skip)]`.
fn has_skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.first().map(String::as_str) == Some("codec")
                && inner.get(1).is_some_and(|s| s.contains("skip"))
            {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

struct Field {
    name: String,
    skip: bool,
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        let skip = has_skip_attr(&part, &mut i);
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match part.get(i) {
            None => VariantFields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminants are unsupported (variant `{name}`)"
                ));
            }
            other => {
                return Err(format!(
                    "unexpected tokens after variant `{name}`: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn impl_header(name: &str, encode_body: &str, decode_body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl {TRAIT} for {name} {{\n\
             fn encode(&self, out: &mut ::std::vec::Vec<u8>) {{ {encode_body} }}\n\
             fn decode(r: &mut ::legosdn_codec::Reader<'_>) \
                 -> ::std::result::Result<Self, {ERR}> {{ {decode_body} }}\n\
         }}"
    )
}

fn unit_struct_impl(name: &str) -> String {
    impl_header(
        name,
        "let _ = out;",
        &format!("let _ = r; ::std::result::Result::Ok({name})"),
    )
}

fn named_struct_impl(name: &str, fields: &[Field]) -> String {
    let mut enc = String::from("let _ = &out;");
    let mut dec = String::from("::std::result::Result::Ok(Self {");
    for f in fields {
        if f.skip {
            dec.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else {
            enc.push_str(&format!("{TRAIT}::encode(&self.{}, out);", f.name));
            dec.push_str(&format!("{}: <_ as {TRAIT}>::decode(r)?,", f.name));
        }
    }
    dec.push_str("})");
    impl_header(name, &enc, &dec)
}

fn tuple_struct_impl(name: &str, n: usize) -> String {
    let mut enc = String::from("let _ = &out;");
    let mut dec = String::from("::std::result::Result::Ok(Self(");
    for i in 0..n {
        enc.push_str(&format!("{TRAIT}::encode(&self.{i}, out);"));
        dec.push_str(&format!("<_ as {TRAIT}>::decode(r)?,"));
    }
    dec.push_str("))");
    impl_header(name, &enc, &dec)
}

fn enum_impl(name: &str, variants: &[Variant]) -> String {
    let mut enc = String::from("match self {");
    let mut dec = format!("match <u32 as {TRAIT}>::decode(r)? {{");
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => {
                enc.push_str(&format!(
                    "{name}::{vname} => {{ {TRAIT}::encode(&{idx}u32, out); }}"
                ));
                dec.push_str(&format!(
                    "{idx}u32 => ::std::result::Result::Ok({name}::{vname}),"
                ));
            }
            VariantFields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                enc.push_str(&format!(
                    "{name}::{vname}({}) => {{ {TRAIT}::encode(&{idx}u32, out); {} }}",
                    binds.join(","),
                    binds
                        .iter()
                        .map(|b| format!("{TRAIT}::encode({b}, out);"))
                        .collect::<String>()
                ));
                dec.push_str(&format!(
                    "{idx}u32 => ::std::result::Result::Ok({name}::{vname}({})),",
                    (0..*n)
                        .map(|_| format!("<_ as {TRAIT}>::decode(r)?,"))
                        .collect::<String>()
                ));
            }
            VariantFields::Named(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                enc.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{ {TRAIT}::encode(&{idx}u32, out); {} }}",
                    binds.join(","),
                    fields
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| format!("{TRAIT}::encode({}, out);", f.name))
                        .collect::<String>()
                ));
                let field_decs: String = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::std::default::Default::default(),", f.name)
                        } else {
                            format!("{}: <_ as {TRAIT}>::decode(r)?,", f.name)
                        }
                    })
                    .collect();
                dec.push_str(&format!(
                    "{idx}u32 => ::std::result::Result::Ok({name}::{vname} {{ {field_decs} }}),"
                ));
            }
        }
    }
    enc.push('}');
    dec.push_str(&format!(
        "v => ::std::result::Result::Err({ERR}::Invalid(\
             ::std::format!(\"variant {{v}} out of range for {name}\"))),\
         }}"
    ));
    impl_header(name, &enc, &dec)
}
