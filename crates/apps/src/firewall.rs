//! A BigTap-style security app (paper Table 2): an ordered ACL evaluated on
//! packet-ins. Denied flows get a high-priority drop rule pushed to the
//! switch; allowed traffic is left to the routing apps.
//!
//! The firewall is the canonical "No Compromise" app for Crash-Pad's policy
//! language (§3.3): operators would rather lose availability than skip a
//! security decision.

use crate::util::{snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;

/// ACL verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Codec)]
pub enum Verdict {
    Allow,
    Deny,
}

/// One ACL rule. `None` fields are wildcards; first matching rule wins.
#[derive(Clone, Debug, PartialEq, Eq, Codec)]
pub struct AclRule {
    pub src: Option<(Ipv4Addr, u8)>,
    pub dst: Option<(Ipv4Addr, u8)>,
    pub tp_dst: Option<u16>,
    pub verdict: Verdict,
}

impl AclRule {
    /// Deny everything to a destination port (e.g. block telnet).
    #[must_use]
    pub fn deny_port(tp_dst: u16) -> Self {
        AclRule {
            src: None,
            dst: None,
            tp_dst: Some(tp_dst),
            verdict: Verdict::Deny,
        }
    }

    /// Deny a source prefix.
    #[must_use]
    pub fn deny_src(net: Ipv4Addr, prefix: u8) -> Self {
        AclRule {
            src: Some((net, prefix)),
            dst: None,
            tp_dst: None,
            verdict: Verdict::Deny,
        }
    }

    fn matches(&self, pkt: &Packet) -> bool {
        if let Some((net, len)) = self.src {
            match pkt.ip_src {
                Some(ip) if ip.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some((net, len)) = self.dst {
            match pkt.ip_dst {
                Some(ip) if ip.in_prefix(net, len) => {}
                _ => return false,
            }
        }
        if let Some(p) = self.tp_dst {
            if pkt.tp_dst != Some(p) {
                return false;
            }
        }
        true
    }
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    rules: Vec<AclRule>,
    denies_installed: u64,
    packets_evaluated: u64,
}

/// Priority for pushed drop rules: above everything reactive apps install.
const DROP_PRIORITY: u16 = 0xf000;

/// An ordered-ACL firewall.
#[derive(Debug, Default)]
pub struct Firewall {
    state: State,
}

impl Firewall {
    /// A firewall with the given ordered rule set (default allow).
    #[must_use]
    pub fn new(rules: Vec<AclRule>) -> Self {
        Firewall {
            state: State {
                rules,
                ..State::default()
            },
        }
    }

    /// Packets evaluated so far.
    #[must_use]
    pub fn packets_evaluated(&self) -> u64 {
        self.state.packets_evaluated
    }

    /// Drop rules installed so far.
    #[must_use]
    pub fn denies_installed(&self) -> u64 {
        self.state.denies_installed
    }

    fn evaluate(&self, pkt: &Packet) -> Verdict {
        self.state
            .rules
            .iter()
            .find(|r| r.matches(pkt))
            .map_or(Verdict::Allow, |r| r.verdict)
    }
}

impl SdnApp for Firewall {
    fn name(&self) -> &str {
        "firewall"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        let Event::PacketIn(dpid, pi) = event else {
            return;
        };
        self.state.packets_evaluated += 1;
        if self.evaluate(&pi.packet) == Verdict::Deny {
            // Push a targeted drop rule; the buffered packet is simply not
            // released, so it dies in the switch buffer.
            let fm = FlowMod::add(Match::from_packet(&pi.packet, pi.in_port))
                .priority(DROP_PRIORITY)
                .idle_timeout(60);
            self.state.denies_installed += 1;
            ctx.send(*dpid, Message::FlowMod(fm));
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;

    fn pin(tp_dst: u16, src_ip: Ipv4Addr) -> Event {
        Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId(1),
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::tcp(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    src_ip,
                    Ipv4Addr::from_index(2),
                    5555,
                    tp_dst,
                ),
            },
        )
    }

    fn run(fw: &mut Firewall, ev: &Event) -> Vec<legosdn_controller::app::Command> {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        fw.on_event(ev, &mut ctx);
        ctx.into_commands()
    }

    #[test]
    fn default_allow() {
        let mut fw = Firewall::new(vec![]);
        let cmds = run(&mut fw, &pin(80, Ipv4Addr::from_index(1)));
        assert!(cmds.is_empty());
        assert_eq!(fw.packets_evaluated(), 1);
        assert_eq!(fw.denies_installed(), 0);
    }

    #[test]
    fn deny_port_installs_high_priority_drop() {
        let mut fw = Firewall::new(vec![AclRule::deny_port(23)]);
        let cmds = run(&mut fw, &pin(23, Ipv4Addr::from_index(1)));
        assert_eq!(cmds.len(), 1);
        match &cmds[0].msg {
            Message::FlowMod(fm) => {
                assert_eq!(fm.priority, DROP_PRIORITY);
                assert!(fm.actions.is_empty(), "empty actions == drop");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Port 80 still allowed.
        assert!(run(&mut fw, &pin(80, Ipv4Addr::from_index(1))).is_empty());
    }

    #[test]
    fn deny_src_prefix() {
        let mut fw = Firewall::new(vec![AclRule::deny_src(Ipv4Addr::new(10, 0, 0, 0), 24)]);
        assert_eq!(run(&mut fw, &pin(80, Ipv4Addr::new(10, 0, 0, 77))).len(), 1);
        assert!(run(&mut fw, &pin(80, Ipv4Addr::new(10, 0, 1, 77))).is_empty());
    }

    #[test]
    fn first_match_wins() {
        let allow_then_deny = vec![
            AclRule {
                src: None,
                dst: None,
                tp_dst: Some(80),
                verdict: Verdict::Allow,
            },
            AclRule::deny_src(Ipv4Addr::new(10, 0, 0, 0), 8),
        ];
        let mut fw = Firewall::new(allow_then_deny);
        // Port 80 hits the allow first even from the denied prefix.
        assert!(run(&mut fw, &pin(80, Ipv4Addr::new(10, 1, 2, 3))).is_empty());
        // Port 443 falls through to the deny.
        assert_eq!(run(&mut fw, &pin(443, Ipv4Addr::new(10, 1, 2, 3))).len(), 1);
    }

    #[test]
    fn non_ip_traffic_passes_ip_rules() {
        let mut fw = Firewall::new(vec![AclRule::deny_src(Ipv4Addr::new(0, 0, 0, 0), 1)]);
        let l2 = Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2)),
            },
        );
        assert!(run(&mut fw, &l2).is_empty());
    }

    #[test]
    fn counters_roundtrip_snapshot() {
        let mut fw = Firewall::new(vec![AclRule::deny_port(23)]);
        run(&mut fw, &pin(23, Ipv4Addr::from_index(1)));
        let s = fw.snapshot();
        let mut fresh = Firewall::new(vec![]);
        fresh.restore(&s).unwrap();
        assert_eq!(fresh.denies_installed(), 1);
        // Restored rules still enforce.
        assert_eq!(run(&mut fresh, &pin(23, Ipv4Addr::from_index(9))).len(), 1);
    }
}
