//! A RouteFlow-style shortest-path router (paper Table 2: "Routing").
//!
//! Reactively routes packet-ins along BFS shortest paths from the
//! controller's topology view, installing per-destination flows at every
//! hop. Tears installed routes down when a link they traverse fails — the
//! stateful behaviour that makes naive app reboots lossy (paper §1).

use crate::util::{packet_out_reply, snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_netsim::Endpoint;
use legosdn_openflow::prelude::*;

/// One installed route.
#[derive(Clone, Debug, PartialEq, Codec)]
struct Route {
    dst: MacAddr,
    cookie: u64,
    /// `(switch, out_port)` per hop, including the final host-facing hop.
    hops: Vec<(DatapathId, u16)>,
}

impl Route {
    /// Does this route forward across the link `a`—`b`?
    fn uses_link(&self, a: Endpoint, b: Endpoint) -> bool {
        self.hops
            .iter()
            .any(|&(d, p)| (d == a.dpid && p == a.port) || (d == b.dpid && p == b.port))
    }
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    routes: Vec<Route>,
    next_cookie: u64,
    packets_routed: u64,
    routes_torn_down: u64,
}

/// Reactive shortest-path router.
#[derive(Debug, Default)]
pub struct ShortestPathRouter {
    state: State,
    /// Idle timeout for installed route flows, seconds (0 = permanent).
    pub idle_timeout: u16,
}

/// Cookie namespace so the router only deletes its own flows.
const COOKIE_BASE: u64 = 0x5250_0000_0000_0000; // "RP"

impl ShortestPathRouter {
    /// A router installing flows with a 30-second idle timeout.
    #[must_use]
    pub fn new() -> Self {
        ShortestPathRouter {
            state: State::default(),
            idle_timeout: 30,
        }
    }

    /// Routes currently installed.
    #[must_use]
    pub fn active_routes(&self) -> usize {
        self.state.routes.len()
    }

    /// Packets routed so far.
    #[must_use]
    pub fn packets_routed(&self) -> u64 {
        self.state.packets_routed
    }

    fn route_packet(&mut self, dpid: DatapathId, pi: &PacketIn, ctx: &mut Ctx<'_>) {
        let dst = pi.packet.eth_dst;
        if dst.is_multicast() {
            ctx.send(
                dpid,
                Message::PacketOut(packet_out_reply(pi, vec![Action::Output(PortNo::Flood)])),
            );
            return;
        }
        let Some(dev) = ctx.devices.get(dst) else {
            // Destination unknown: flood and let the reply teach us.
            ctx.send(
                dpid,
                Message::PacketOut(packet_out_reply(pi, vec![Action::Output(PortNo::Flood)])),
            );
            return;
        };
        let target = dev.attach;
        let Some(path) = ctx.topology.shortest_path(dpid, target.dpid) else {
            // No path right now (partition): drop by doing nothing.
            return;
        };
        // Hops along the path, then the host-facing port.
        let mut hops: Vec<(DatapathId, u16)> = path;
        hops.push((target.dpid, target.port));

        let cookie = COOKIE_BASE | self.state.next_cookie;
        self.state.next_cookie += 1;
        for &(d, out_port) in &hops {
            let fm = FlowMod::add(Match::eth_dst(dst))
                .cookie(cookie)
                .idle_timeout(self.idle_timeout)
                .action(Action::Output(PortNo::Phys(out_port)));
            ctx.send(d, Message::FlowMod(fm));
        }
        // Release the original packet along the fresh path.
        let first_port = hops[0].1;
        ctx.send(
            dpid,
            Message::PacketOut(packet_out_reply(
                pi,
                vec![Action::Output(PortNo::Phys(first_port))],
            )),
        );
        self.state.packets_routed += 1;
        self.state.routes.push(Route { dst, cookie, hops });
    }

    fn handle_link_down(&mut self, a: Endpoint, b: Endpoint, ctx: &mut Ctx<'_>) {
        let (dead, alive): (Vec<Route>, Vec<Route>) =
            self.state.routes.drain(..).partition(|r| r.uses_link(a, b));
        for route in &dead {
            self.state.routes_torn_down += 1;
            for &(d, _) in &route.hops {
                ctx.send(
                    d,
                    Message::FlowMod(FlowMod::delete(Match::eth_dst(route.dst))),
                );
            }
        }
        self.state.routes = alive;
    }
}

impl SdnApp for ShortestPathRouter {
    fn name(&self) -> &str {
        "shortest-path-router"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![
            EventKind::PacketIn,
            EventKind::LinkDown,
            EventKind::SwitchDown,
            EventKind::FlowRemoved,
        ]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match event {
            Event::PacketIn(dpid, pi) => self.route_packet(*dpid, pi, ctx),
            Event::LinkDown { a, b } => self.handle_link_down(*a, *b, ctx),
            Event::SwitchDown(dpid) => {
                // Routes through the dead switch are gone with it.
                let before = self.state.routes.len();
                self.state.routes.retain(|r| !r.hops.iter().any(|&(d, _)| d == *dpid));
                self.state.routes_torn_down += (before - self.state.routes.len()) as u64;
            }
            Event::FlowRemoved(_, fr)
                // An idle-expired route: forget the matching record.
                if fr.cookie & COOKIE_BASE == COOKIE_BASE => {
                    self.state.routes.retain(|r| r.cookie != fr.cookie);
                }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;

    /// 1 -(1:1)- 2 -(2:1)- 3, host A at 1:3, host B at 3:3.
    fn views() -> (TopologyView, DeviceView) {
        let mut topo = TopologyView::default();
        for d in 1..=3 {
            topo.switch_up(DatapathId(d), vec![]);
        }
        topo.link_up(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 1),
        );
        topo.link_up(
            Endpoint::new(DatapathId(2), 2),
            Endpoint::new(DatapathId(3), 1),
        );
        let mut dev = DeviceView::default();
        dev.learn(
            MacAddr::from_index(1),
            Some(Ipv4Addr::from_index(1)),
            Endpoint::new(DatapathId(1), 3),
            SimTime::ZERO,
        );
        dev.learn(
            MacAddr::from_index(2),
            Some(Ipv4Addr::from_index(2)),
            Endpoint::new(DatapathId(3), 3),
            SimTime::ZERO,
        );
        (topo, dev)
    }

    fn pin(dpid: u64, src: u64, dst: u64) -> Event {
        Event::PacketIn(
            DatapathId(dpid),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(3),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(src), MacAddr::from_index(dst)),
            },
        )
    }

    #[test]
    fn installs_flows_along_whole_path() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        let cmds = ctx.into_commands();
        // 3 flow-mods (switches 1,2,3) + 1 packet-out.
        let fms: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(c.msg, Message::FlowMod(_)))
            .collect();
        assert_eq!(fms.len(), 3);
        let dpids: Vec<u64> = fms.iter().map(|c| c.dpid.0).collect();
        assert_eq!(dpids, vec![1, 2, 3]);
        // Final hop forwards to the host port.
        match &fms[2].msg {
            Message::FlowMod(fm) => {
                assert_eq!(fm.actions, vec![Action::Output(PortNo::Phys(3))]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(cmds.iter().any(|c| matches!(c.msg, Message::PacketOut(_))));
        assert_eq!(app.active_routes(), 1);
    }

    #[test]
    fn unknown_destination_floods() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 99), &mut ctx);
        let cmds = ctx.into_commands();
        assert_eq!(cmds.len(), 1);
        assert!(matches!(&cmds[0].msg, Message::PacketOut(po)
            if po.actions == vec![Action::Output(PortNo::Flood)]));
        assert_eq!(app.active_routes(), 0);
    }

    #[test]
    fn no_path_means_drop() {
        let (mut topo, dev) = views();
        topo.link_down(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 1),
        );
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        assert!(ctx.commands().is_empty());
    }

    #[test]
    fn link_down_tears_down_affected_routes() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        assert_eq!(app.active_routes(), 1);
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(
            &Event::LinkDown {
                a: Endpoint::new(DatapathId(2), 2),
                b: Endpoint::new(DatapathId(3), 1),
            },
            &mut ctx,
        );
        let cmds = ctx.into_commands();
        assert_eq!(cmds.len(), 3, "delete at every hop: {cmds:?}");
        assert!(cmds
            .iter()
            .all(|c| matches!(&c.msg, Message::FlowMod(fm) if fm.is_delete())));
        assert_eq!(app.active_routes(), 0);
    }

    #[test]
    fn unrelated_link_down_is_ignored() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(
            &Event::LinkDown {
                a: Endpoint::new(DatapathId(7), 1),
                b: Endpoint::new(DatapathId(8), 1),
            },
            &mut ctx,
        );
        assert!(ctx.commands().is_empty());
        assert_eq!(app.active_routes(), 1);
    }

    #[test]
    fn switch_down_forgets_routes_through_it() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&Event::SwitchDown(DatapathId(2)), &mut ctx);
        assert_eq!(app.active_routes(), 0);
    }

    #[test]
    fn flow_removed_retires_route_record() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        let cookie = COOKIE_BASE; // first route
        let fr = Event::FlowRemoved(
            DatapathId(1),
            FlowRemoved {
                mat: Match::eth_dst(MacAddr::from_index(2)),
                cookie,
                priority: 0x8000,
                reason: FlowRemovedReason::IdleTimeout,
                duration_sec: 30,
                idle_timeout: 30,
                packet_count: 5,
                byte_count: 500,
            },
        );
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&fr, &mut ctx);
        assert_eq!(app.active_routes(), 0);
    }

    #[test]
    fn state_roundtrips() {
        let (topo, dev) = views();
        let mut app = ShortestPathRouter::new();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(&pin(1, 1, 2), &mut ctx);
        let snap = app.snapshot();
        let mut fresh = ShortestPathRouter::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.active_routes(), 1);
        assert_eq!(fresh.packets_routed(), 1);
    }
}
