//! A monitoring app: polls per-switch aggregate statistics on its timer tick
//! and keeps a bounded history. Stands in for FloodLight's counter-store
//! users (§4.1 notes the paper had to comment those out — ours works).

use crate::util::{snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_netsim::SimTime;
use legosdn_openflow::prelude::*;
use std::collections::BTreeSet;

/// One aggregate sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Codec)]
pub struct Sample {
    pub at: SimTime,
    pub dpid: DatapathId,
    pub packets: u64,
    pub bytes: u64,
    pub flows: u32,
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    switches: BTreeSet<DatapathId>,
    history: Vec<Sample>,
    polls_sent: u64,
}

/// Maximum retained samples.
const HISTORY_CAP: usize = 4096;

/// Periodic aggregate-statistics poller.
#[derive(Debug, Default)]
pub struct StatsMonitor {
    state: State,
}

impl StatsMonitor {
    /// A new monitor.
    #[must_use]
    pub fn new() -> Self {
        StatsMonitor::default()
    }

    /// Recorded samples, oldest first.
    #[must_use]
    pub fn history(&self) -> &[Sample] {
        &self.state.history
    }

    /// Stats polls issued so far.
    #[must_use]
    pub fn polls_sent(&self) -> u64 {
        self.state.polls_sent
    }
}

impl SdnApp for StatsMonitor {
    fn name(&self) -> &str {
        "stats-monitor"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![
            EventKind::SwitchUp,
            EventKind::SwitchDown,
            EventKind::Tick,
            EventKind::StatsReply,
        ]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match event {
            Event::SwitchUp(dpid) => {
                self.state.switches.insert(*dpid);
            }
            Event::SwitchDown(dpid) => {
                self.state.switches.remove(dpid);
            }
            Event::Tick(_) => {
                for &dpid in &self.state.switches {
                    self.state.polls_sent += 1;
                    ctx.send(
                        dpid,
                        Message::StatsRequest(StatsRequest::Aggregate {
                            mat: Match::any(),
                            out_port: PortNo::None,
                        }),
                    );
                }
            }
            Event::StatsReply(
                dpid,
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                },
            ) => {
                if self.state.history.len() >= HISTORY_CAP {
                    self.state.history.remove(0);
                }
                self.state.history.push(Sample {
                    at: ctx.now,
                    dpid: *dpid,
                    packets: *packet_count,
                    bytes: *byte_count,
                    flows: *flow_count,
                });
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};

    fn run(app: &mut StatsMonitor, ev: &Event, now: SimTime) -> usize {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(now, &topo, &dev);
        app.on_event(ev, &mut ctx);
        ctx.commands().len()
    }

    #[test]
    fn polls_known_switches_on_tick() {
        let mut app = StatsMonitor::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)), SimTime::ZERO);
        run(&mut app, &Event::SwitchUp(DatapathId(2)), SimTime::ZERO);
        let n = run(
            &mut app,
            &Event::Tick(SimTime::from_secs(1)),
            SimTime::from_secs(1),
        );
        assert_eq!(n, 2);
        assert_eq!(app.polls_sent(), 2);
        // A dead switch stops being polled.
        run(
            &mut app,
            &Event::SwitchDown(DatapathId(2)),
            SimTime::from_secs(2),
        );
        let n = run(
            &mut app,
            &Event::Tick(SimTime::from_secs(3)),
            SimTime::from_secs(3),
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn records_aggregate_replies_with_time() {
        let mut app = StatsMonitor::new();
        let reply = Event::StatsReply(
            DatapathId(1),
            StatsReply::Aggregate {
                packet_count: 10,
                byte_count: 640,
                flow_count: 2,
            },
        );
        run(&mut app, &reply, SimTime::from_secs(9));
        assert_eq!(app.history().len(), 1);
        let s = app.history()[0];
        assert_eq!(s.at, SimTime::from_secs(9));
        assert_eq!((s.packets, s.bytes, s.flows), (10, 640, 2));
    }

    #[test]
    fn history_is_bounded() {
        let mut app = StatsMonitor::new();
        let reply = Event::StatsReply(
            DatapathId(1),
            StatsReply::Aggregate {
                packet_count: 1,
                byte_count: 1,
                flow_count: 1,
            },
        );
        for i in 0..(HISTORY_CAP + 10) {
            run(&mut app, &reply, SimTime::from_secs(i as u64));
        }
        assert_eq!(app.history().len(), HISTORY_CAP);
        // Oldest entries were evicted.
        assert_eq!(app.history()[0].at, SimTime::from_secs(10));
    }

    #[test]
    fn flow_stats_replies_are_ignored() {
        let mut app = StatsMonitor::new();
        run(
            &mut app,
            &Event::StatsReply(DatapathId(1), StatsReply::Flow(vec![])),
            SimTime::ZERO,
        );
        assert!(app.history().is_empty());
    }

    #[test]
    fn snapshot_preserves_history_and_switches() {
        let mut app = StatsMonitor::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)), SimTime::ZERO);
        let reply = Event::StatsReply(
            DatapathId(1),
            StatsReply::Aggregate {
                packet_count: 5,
                byte_count: 50,
                flow_count: 1,
            },
        );
        run(&mut app, &reply, SimTime::from_secs(1));
        let s = app.snapshot();
        let mut fresh = StatsMonitor::new();
        fresh.restore(&s).unwrap();
        assert_eq!(fresh.history().len(), 1);
        assert_eq!(
            run(
                &mut fresh,
                &Event::Tick(SimTime::from_secs(2)),
                SimTime::from_secs(2)
            ),
            1
        );
    }
}
