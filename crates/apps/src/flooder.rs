//! The Flooder — proactively installs a flood-all rule on every switch as it
//! joins, so packets never reach the controller. The third app the paper
//! ported into its stub (§4.1).

use crate::util::{packet_out_reply, snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    provisioned: BTreeSet<DatapathId>,
}

/// Installs `match-any → flood` on every switch at join time.
#[derive(Debug, Default)]
pub struct Flooder {
    state: State,
}

impl Flooder {
    /// A new flooder.
    #[must_use]
    pub fn new() -> Self {
        Flooder::default()
    }

    /// Switches provisioned so far.
    #[must_use]
    pub fn provisioned(&self) -> usize {
        self.state.provisioned.len()
    }
}

impl SdnApp for Flooder {
    fn name(&self) -> &str {
        "flooder"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![
            EventKind::SwitchUp,
            EventKind::SwitchDown,
            EventKind::PacketIn,
        ]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match event {
            Event::SwitchUp(dpid) if self.state.provisioned.insert(*dpid) => {
                let fm = FlowMod::add(Match::any())
                    .priority(1)
                    .action(Action::Output(PortNo::Flood));
                ctx.send(*dpid, Message::FlowMod(fm));
            }
            Event::SwitchDown(dpid) => {
                self.state.provisioned.remove(dpid);
            }
            // A miss that raced the rule install: flood reactively.
            Event::PacketIn(dpid, pi) => {
                ctx.send(
                    *dpid,
                    Message::PacketOut(packet_out_reply(pi, vec![Action::Output(PortNo::Flood)])),
                );
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;

    fn run(app: &mut Flooder, ev: &Event) -> usize {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(ev, &mut ctx);
        ctx.commands().len()
    }

    #[test]
    fn provisions_each_switch_once() {
        let mut app = Flooder::new();
        assert_eq!(run(&mut app, &Event::SwitchUp(DatapathId(1))), 1);
        assert_eq!(
            run(&mut app, &Event::SwitchUp(DatapathId(1))),
            0,
            "idempotent"
        );
        assert_eq!(run(&mut app, &Event::SwitchUp(DatapathId(2))), 1);
        assert_eq!(app.provisioned(), 2);
    }

    #[test]
    fn reprovisions_after_switch_bounce() {
        let mut app = Flooder::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)));
        run(&mut app, &Event::SwitchDown(DatapathId(1)));
        assert_eq!(run(&mut app, &Event::SwitchUp(DatapathId(1))), 1);
    }

    #[test]
    fn state_survives_snapshot() {
        let mut app = Flooder::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)));
        let snap = app.snapshot();
        let mut fresh = Flooder::new();
        fresh.restore(&snap).unwrap();
        // Restored app knows switch 1 is provisioned.
        assert_eq!(run(&mut fresh, &Event::SwitchUp(DatapathId(1))), 0);
    }
}
