//! The Hub — floods every packet, no learning. Bundled with FloodLight and
//! one of the apps the paper ran inside its stub (§4.1).

use crate::util::{packet_out_reply, snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    packets_flooded: u64,
}

/// Floods every packet-in out every port.
#[derive(Debug, Default)]
pub struct Hub {
    state: State,
}

impl Hub {
    /// A new hub.
    #[must_use]
    pub fn new() -> Self {
        Hub::default()
    }

    /// Packets flooded so far.
    #[must_use]
    pub fn packets_flooded(&self) -> u64 {
        self.state.packets_flooded
    }
}

impl SdnApp for Hub {
    fn name(&self) -> &str {
        "hub"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        if let Event::PacketIn(dpid, pi) = event {
            self.state.packets_flooded += 1;
            ctx.send(
                *dpid,
                Message::PacketOut(packet_out_reply(pi, vec![Action::Output(PortNo::Flood)])),
            );
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;

    #[test]
    fn hub_floods_everything() {
        let mut hub = Hub::new();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        let ev = Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId(3),
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2)),
            },
        );
        hub.on_event(&ev, &mut ctx);
        hub.on_event(&ev, &mut ctx);
        assert_eq!(ctx.commands().len(), 2);
        assert_eq!(hub.packets_flooded(), 2);
        let snap = hub.snapshot();
        let mut fresh = Hub::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.packets_flooded(), 2);
    }

    #[test]
    fn hub_ignores_other_events() {
        let mut hub = Hub::new();
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        hub.on_event(&Event::SwitchUp(DatapathId(1)), &mut ctx);
        assert!(ctx.commands().is_empty());
        assert_eq!(hub.packets_flooded(), 0);
    }
}
