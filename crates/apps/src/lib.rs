//! The SDN application suite, mirroring the paper's Table 2 survey plus the
//! three FloodLight-bundled apps its prototype hosted (§4.1), and the fault
//! injector that reproduces the paper's bug classes.
//!
//! | App | Paper analogue | Purpose |
//! |---|---|---|
//! | [`LearningSwitch`] | FloodLight LearningSwitch | L2 reactive forwarding |
//! | [`Hub`] | FloodLight Hub | flood everything |
//! | [`Flooder`] | FloodLight Flooder | proactive flood rules |
//! | [`ShortestPathRouter`] | RouteFlow | routing |
//! | [`LoadBalancer`] | FlowScale | traffic engineering |
//! | [`Firewall`] | BigTap | security |
//! | [`StatsMonitor`] | counter-store clients | monitoring |
//! | [`SpanningTree`] | (loop-free flooding) | broadcast containment |
//! | [`FaultyApp`] | FlowScale's catastrophic bugs | fault injection |

pub mod faults;
pub mod firewall;
pub mod flooder;
pub mod hub;
pub mod learning_switch;
pub mod load_balancer;
pub mod router;
pub mod spanning_tree;
pub mod stats_monitor;
pub mod util;

pub use faults::{BugEffect, BugTrigger, FaultyApp};
pub use firewall::{AclRule, Firewall, Verdict};
pub use flooder::Flooder;
pub use hub::Hub;
pub use learning_switch::LearningSwitch;
pub use load_balancer::{Backend, LoadBalancer};
pub use router::ShortestPathRouter;
pub use spanning_tree::SpanningTree;
pub use stats_monitor::{Sample, StatsMonitor};
