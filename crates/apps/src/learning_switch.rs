//! The classic reactive learning switch — one of the FloodLight apps the
//! paper moved into its prototype stub (§4.1).
//!
//! Per-switch MAC tables learned from packet-ins. Known destinations get an
//! exact-match flow (with idle timeout) plus a packet-out; unknown
//! destinations flood.

use crate::util::{packet_out_reply, snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;
use std::collections::BTreeMap;

/// Serializable state: per-switch MAC → port tables.
#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    tables: BTreeMap<DatapathId, BTreeMap<MacAddr, u16>>,
    packets_handled: u64,
    flows_installed: u64,
}

/// A per-switch L2 learning switch.
#[derive(Debug, Default)]
pub struct LearningSwitch {
    state: State,
    /// Idle timeout for installed flows, seconds.
    pub idle_timeout: u16,
}

impl LearningSwitch {
    /// A learning switch with the FloodLight default 5-second idle timeout.
    #[must_use]
    pub fn new() -> Self {
        LearningSwitch {
            state: State::default(),
            idle_timeout: 5,
        }
    }

    /// Number of (switch, mac) entries learned.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.state.tables.values().map(BTreeMap::len).sum()
    }

    /// Packets processed so far.
    #[must_use]
    pub fn packets_handled(&self) -> u64 {
        self.state.packets_handled
    }
}

impl SdnApp for LearningSwitch {
    fn name(&self) -> &str {
        "learning-switch"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn, EventKind::SwitchDown]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match event {
            Event::PacketIn(dpid, pi) => {
                let Some(in_port) = pi.in_port.phys() else {
                    return;
                };
                self.state.packets_handled += 1;
                let table = self.state.tables.entry(*dpid).or_default();
                if !pi.packet.eth_src.is_multicast() {
                    table.insert(pi.packet.eth_src, in_port);
                }
                let dst = pi.packet.eth_dst;
                match table.get(&dst) {
                    Some(&out_port) if !dst.is_multicast() => {
                        let fm = FlowMod::add(Match::from_packet(&pi.packet, pi.in_port))
                            .idle_timeout(self.idle_timeout)
                            .action(Action::Output(PortNo::Phys(out_port)));
                        self.state.flows_installed += 1;
                        ctx.send(*dpid, Message::FlowMod(fm));
                        ctx.send(
                            *dpid,
                            Message::PacketOut(packet_out_reply(
                                pi,
                                vec![Action::Output(PortNo::Phys(out_port))],
                            )),
                        );
                    }
                    _ => {
                        ctx.send(
                            *dpid,
                            Message::PacketOut(packet_out_reply(
                                pi,
                                vec![Action::Output(PortNo::Flood)],
                            )),
                        );
                    }
                }
            }
            Event::SwitchDown(dpid) => {
                self.state.tables.remove(dpid);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::SimTime;

    fn pin(dpid: u64, src: u64, dst: u64, port: u16) -> Event {
        Event::PacketIn(
            DatapathId(dpid),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(port),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(src), MacAddr::from_index(dst)),
            },
        )
    }

    fn run(app: &mut LearningSwitch, ev: &Event) -> Vec<legosdn_controller::app::Command> {
        let topo = TopologyView::default();
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        app.on_event(ev, &mut ctx);
        ctx.into_commands()
    }

    #[test]
    fn unknown_destination_floods() {
        let mut app = LearningSwitch::new();
        let cmds = run(&mut app, &pin(1, 1, 2, 3));
        assert_eq!(cmds.len(), 1);
        match &cmds[0].msg {
            Message::PacketOut(po) => {
                assert_eq!(po.actions, vec![Action::Output(PortNo::Flood)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(app.entries(), 1, "source learned");
    }

    #[test]
    fn known_destination_installs_flow() {
        let mut app = LearningSwitch::new();
        run(&mut app, &pin(1, 2, 1, 7)); // learn host 2 at port 7
        let cmds = run(&mut app, &pin(1, 1, 2, 3)); // now 1 → 2 is known
        assert_eq!(cmds.len(), 2);
        match &cmds[0].msg {
            Message::FlowMod(fm) => {
                assert_eq!(fm.idle_timeout, 5);
                assert_eq!(fm.actions, vec![Action::Output(PortNo::Phys(7))]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&cmds[1].msg, Message::PacketOut(_)));
    }

    #[test]
    fn tables_are_per_switch() {
        let mut app = LearningSwitch::new();
        run(&mut app, &pin(1, 2, 9, 7)); // learn host 2 on switch 1
        let cmds = run(&mut app, &pin(2, 1, 2, 3)); // switch 2 doesn't know host 2
        assert_eq!(cmds.len(), 1, "flood, not install: {cmds:?}");
    }

    #[test]
    fn broadcast_destination_always_floods_and_is_never_learned() {
        let mut app = LearningSwitch::new();
        let ev = Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::BROADCAST, MacAddr::BROADCAST),
            },
        );
        let cmds = run(&mut app, &ev);
        assert_eq!(cmds.len(), 1);
        assert_eq!(app.entries(), 0);
    }

    #[test]
    fn switch_down_forgets_table() {
        let mut app = LearningSwitch::new();
        run(&mut app, &pin(1, 1, 2, 3));
        assert_eq!(app.entries(), 1);
        run(&mut app, &Event::SwitchDown(DatapathId(1)));
        assert_eq!(app.entries(), 0);
    }

    #[test]
    fn snapshot_captures_learned_state() {
        let mut app = LearningSwitch::new();
        run(&mut app, &pin(1, 1, 2, 3));
        run(&mut app, &pin(1, 2, 1, 7));
        let snap = app.snapshot();
        let mut fresh = LearningSwitch::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.entries(), 2);
        assert_eq!(fresh.packets_handled(), 2);
        // Restored app behaves identically: knows host 2.
        let cmds = run(&mut fresh, &pin(1, 1, 2, 3));
        assert_eq!(cmds.len(), 2);
    }

    #[test]
    fn host_movement_updates_port() {
        let mut app = LearningSwitch::new();
        run(&mut app, &pin(1, 2, 9, 7));
        run(&mut app, &pin(1, 2, 9, 8)); // host 2 moved to port 8
        let cmds = run(&mut app, &pin(1, 1, 2, 3));
        match &cmds[0].msg {
            Message::FlowMod(fm) => {
                assert_eq!(fm.actions, vec![Action::Output(PortNo::Phys(8))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
