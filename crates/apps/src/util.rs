//! Shared helpers for application implementations.

use legosdn_codec::Codec;
use legosdn_controller::app::RestoreError;
use legosdn_controller::snapshot;

/// Serialize an app state (apps treat failure as a bug: state is always
/// plain data).
pub fn snap<T: Codec>(state: &T) -> Vec<u8> {
    snapshot::to_bytes(state).expect("app state must serialize")
}

/// Deserialize an app state.
pub fn unsnap<T: Codec>(bytes: &[u8]) -> Result<T, RestoreError> {
    snapshot::from_bytes(bytes).map_err(|e| RestoreError(e.to_string()))
}

/// Reply to a packet-in: reuse the switch buffer when one exists, otherwise
/// carry the packet inline.
#[must_use]
pub fn packet_out_reply(
    pi: &legosdn_openflow::messages::PacketIn,
    actions: Vec<legosdn_openflow::prelude::Action>,
) -> legosdn_openflow::messages::PacketOut {
    legosdn_openflow::messages::PacketOut {
        buffer_id: pi.buffer_id,
        in_port: pi.in_port,
        actions,
        packet: if pi.buffer_id.is_some() {
            None
        } else {
            Some(pi.packet.clone())
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_openflow::prelude::*;

    #[test]
    fn snapshot_helpers_roundtrip() {
        let v = vec![(1u32, "a".to_string())];
        let bytes = snap(&v);
        let back: Vec<(u32, String)> = unsnap(&bytes).unwrap();
        assert_eq!(back, v);
        assert!(unsnap::<u64>(&bytes[..1]).is_err());
    }

    #[test]
    fn packet_out_reply_uses_buffer_when_present() {
        let pkt = Packet::ethernet(MacAddr::from_index(1), MacAddr::from_index(2));
        let buffered = PacketIn {
            buffer_id: BufferId(5),
            in_port: PortNo::Phys(1),
            reason: PacketInReason::NoMatch,
            packet: pkt.clone(),
        };
        let po = packet_out_reply(&buffered, vec![Action::Output(PortNo::Flood)]);
        assert_eq!(po.buffer_id, BufferId(5));
        assert!(po.packet.is_none());

        let unbuffered = PacketIn {
            buffer_id: BufferId::NONE,
            ..buffered
        };
        let po = packet_out_reply(&unbuffered, vec![]);
        assert_eq!(po.packet, Some(pkt));
    }
}
