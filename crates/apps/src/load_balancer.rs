//! A FlowScale-style traffic-engineering load balancer (paper Table 2).
//!
//! Traffic to a virtual IP is spread round-robin over a backend pool with
//! per-client stickiness: the first flow from a client picks a backend, and
//! subsequent flows stick to it. The switch rewrites destination MAC/IP
//! toward the chosen backend.

use crate::util::{packet_out_reply, snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;
use std::collections::BTreeMap;

/// A backend server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Codec)]
pub struct Backend {
    pub mac: MacAddr,
    pub ip: Ipv4Addr,
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    vip: Ipv4Addr,
    backends: Vec<Backend>,
    /// Sticky client → backend index.
    assignments: BTreeMap<Ipv4Addr, usize>,
    rr_next: usize,
    flows_balanced: u64,
}

/// Round-robin virtual-IP load balancer with client stickiness.
#[derive(Debug)]
pub struct LoadBalancer {
    state: State,
    /// Idle timeout for installed flows, seconds.
    pub idle_timeout: u16,
}

impl LoadBalancer {
    /// Balance `vip` over `backends`.
    #[must_use]
    pub fn new(vip: Ipv4Addr, backends: Vec<Backend>) -> Self {
        LoadBalancer {
            state: State {
                vip,
                backends,
                ..State::default()
            },
            idle_timeout: 10,
        }
    }

    /// Flows balanced so far.
    #[must_use]
    pub fn flows_balanced(&self) -> u64 {
        self.state.flows_balanced
    }

    /// Current per-backend assignment counts.
    #[must_use]
    pub fn assignment_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.state.backends.len()];
        for &idx in self.state.assignments.values() {
            if let Some(c) = counts.get_mut(idx) {
                *c += 1;
            }
        }
        counts
    }

    fn pick_backend(&mut self, client: Ipv4Addr) -> Option<(usize, Backend)> {
        if self.state.backends.is_empty() {
            return None;
        }
        let idx = match self.state.assignments.get(&client) {
            Some(&i) if i < self.state.backends.len() => i,
            _ => {
                let i = self.state.rr_next % self.state.backends.len();
                self.state.rr_next = self.state.rr_next.wrapping_add(1);
                self.state.assignments.insert(client, i);
                i
            }
        };
        Some((idx, self.state.backends[idx]))
    }
}

impl SdnApp for LoadBalancer {
    fn name(&self) -> &str {
        "load-balancer"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![EventKind::PacketIn]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        let Event::PacketIn(dpid, pi) = event else {
            return;
        };
        // Only claim traffic addressed to the VIP.
        if pi.packet.ip_dst != Some(self.state.vip) {
            return;
        }
        let Some(client) = pi.packet.ip_src else {
            return;
        };
        let Some((_, backend)) = self.pick_backend(client) else {
            return;
        };

        // Where is the backend? Prefer the device view; fall back to flood.
        let out_port = ctx
            .devices
            .get(backend.mac)
            .filter(|d| d.attach.dpid == *dpid)
            .map(|d| PortNo::Phys(d.attach.port))
            .or_else(|| {
                ctx.devices.get(backend.mac).and_then(|d| {
                    ctx.topology
                        .shortest_path(*dpid, d.attach.dpid)
                        .and_then(|p| p.first().map(|&(_, port)| PortNo::Phys(port)))
                })
            })
            .unwrap_or(PortNo::Flood);

        let actions = vec![
            Action::SetEthDst(backend.mac),
            Action::SetIpDst(backend.ip),
            Action::Output(out_port),
        ];
        let fm = FlowMod::add(Match::from_packet(&pi.packet, pi.in_port))
            .idle_timeout(self.idle_timeout)
            .actions(actions.clone());
        ctx.send(*dpid, Message::FlowMod(fm));
        ctx.send(*dpid, Message::PacketOut(packet_out_reply(pi, actions)));
        self.state.flows_balanced += 1;
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::{Endpoint, SimTime};

    fn vip() -> Ipv4Addr {
        Ipv4Addr::new(10, 99, 0, 1)
    }

    fn backends() -> Vec<Backend> {
        vec![
            Backend {
                mac: MacAddr::from_index(101),
                ip: Ipv4Addr::from_index(101),
            },
            Backend {
                mac: MacAddr::from_index(102),
                ip: Ipv4Addr::from_index(102),
            },
        ]
    }

    fn views() -> (TopologyView, DeviceView) {
        let mut topo = TopologyView::default();
        topo.switch_up(DatapathId(1), vec![]);
        let mut dev = DeviceView::default();
        dev.learn(
            MacAddr::from_index(101),
            Some(Ipv4Addr::from_index(101)),
            Endpoint::new(DatapathId(1), 5),
            SimTime::ZERO,
        );
        dev.learn(
            MacAddr::from_index(102),
            Some(Ipv4Addr::from_index(102)),
            Endpoint::new(DatapathId(1), 6),
            SimTime::ZERO,
        );
        (topo, dev)
    }

    fn vip_pin(client: u32) -> Event {
        Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::tcp(
                    MacAddr::from_index(u64::from(client)),
                    MacAddr::from_index(200),
                    Ipv4Addr::from_index(client),
                    vip(),
                    10_000 + client as u16,
                    80,
                ),
            },
        )
    }

    #[test]
    fn rewrites_toward_backend() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), backends());
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        lb.on_event(&vip_pin(1), &mut ctx);
        let cmds = ctx.into_commands();
        assert_eq!(cmds.len(), 2);
        match &cmds[0].msg {
            Message::FlowMod(fm) => {
                assert!(fm
                    .actions
                    .contains(&Action::SetEthDst(MacAddr::from_index(101))));
                assert!(fm
                    .actions
                    .contains(&Action::SetIpDst(Ipv4Addr::from_index(101))));
                assert!(fm.actions.contains(&Action::Output(PortNo::Phys(5))));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(lb.flows_balanced(), 1);
    }

    #[test]
    fn round_robins_distinct_clients() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), backends());
        for client in 1..=4 {
            let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
            lb.on_event(&vip_pin(client), &mut ctx);
        }
        assert_eq!(lb.assignment_histogram(), vec![2, 2]);
    }

    #[test]
    fn clients_are_sticky() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), backends());
        for _ in 0..3 {
            let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
            lb.on_event(&vip_pin(1), &mut ctx);
        }
        assert_eq!(lb.assignment_histogram(), vec![1, 0]);
        assert_eq!(lb.flows_balanced(), 3);
    }

    #[test]
    fn ignores_non_vip_traffic() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), backends());
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        let ev = Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::tcp(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    Ipv4Addr::from_index(1),
                    Ipv4Addr::from_index(2),
                    1,
                    80,
                ),
            },
        );
        lb.on_event(&ev, &mut ctx);
        assert!(ctx.commands().is_empty());
    }

    #[test]
    fn empty_pool_does_nothing() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), vec![]);
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        lb.on_event(&vip_pin(1), &mut ctx);
        assert!(ctx.commands().is_empty());
    }

    #[test]
    fn stickiness_survives_snapshot() {
        let (topo, dev) = views();
        let mut lb = LoadBalancer::new(vip(), backends());
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        lb.on_event(&vip_pin(1), &mut ctx);
        let snapshot = lb.snapshot();
        let mut fresh = LoadBalancer::new(vip(), backends());
        fresh.restore(&snapshot).unwrap();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        fresh.on_event(&vip_pin(1), &mut ctx);
        assert_eq!(
            fresh.assignment_histogram(),
            vec![1, 0],
            "same backend after restore"
        );
    }

    #[test]
    fn remote_backend_routes_via_topology() {
        // Backend on a different switch: first hop follows the path.
        let mut topo = TopologyView::default();
        topo.switch_up(DatapathId(1), vec![]);
        topo.switch_up(DatapathId(2), vec![]);
        topo.link_up(
            Endpoint::new(DatapathId(1), 9),
            Endpoint::new(DatapathId(2), 1),
        );
        let mut dev = DeviceView::default();
        dev.learn(
            MacAddr::from_index(101),
            Some(Ipv4Addr::from_index(101)),
            Endpoint::new(DatapathId(2), 5),
            SimTime::ZERO,
        );
        let mut lb = LoadBalancer::new(
            vip(),
            vec![Backend {
                mac: MacAddr::from_index(101),
                ip: Ipv4Addr::from_index(101),
            }],
        );
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        lb.on_event(&vip_pin(1), &mut ctx);
        let cmds = ctx.into_commands();
        match &cmds[0].msg {
            Message::FlowMod(fm) => {
                assert!(fm.actions.contains(&Action::Output(PortNo::Phys(9))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
