//! A spanning-tree app: computes a spanning tree over the controller's
//! topology view and installs flood rules that only use tree ports, making
//! broadcast traffic loop-free on cyclic topologies (the problem the
//! invariant checker's `NoLoops` guards against).
//!
//! This is the kind of stateful, topology-sensitive app whose naive reboot
//! the paper's §1 warns about: rebuilding the tree from scratch floods the
//! network with rule churn, so keeping its state across crashes matters.

use crate::util::{snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_controller::services::TopologyView;
use legosdn_netsim::Endpoint;
use legosdn_openflow::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    /// Ports (per switch) currently allowed to flood: tree ports + host
    /// ports (i.e. everything except non-tree inter-switch ports).
    blocked: BTreeMap<DatapathId, BTreeSet<u16>>,
    recomputations: u64,
}

/// Priority for the drop rules on blocked ports: above reactive app rules,
/// below the firewall.
const BLOCK_PRIORITY: u16 = 0xe000;

/// Spanning-tree computation + enforcement.
#[derive(Debug, Default)]
pub struct SpanningTree {
    state: State,
}

impl SpanningTree {
    /// A new spanning-tree app.
    #[must_use]
    pub fn new() -> Self {
        SpanningTree::default()
    }

    /// Times the tree has been recomputed.
    #[must_use]
    pub fn recomputations(&self) -> u64 {
        self.state.recomputations
    }

    /// Ports currently blocked on a switch.
    #[must_use]
    pub fn blocked_ports(&self, dpid: DatapathId) -> Vec<u16> {
        self.state
            .blocked
            .get(&dpid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// BFS spanning tree over the topology view; returns the set of
    /// inter-switch endpoints that are ON the tree.
    fn tree_endpoints(topo: &TopologyView) -> BTreeSet<Endpoint> {
        let mut on_tree = BTreeSet::new();
        let mut visited = BTreeSet::new();
        let Some(&root) = topo.switches.keys().next() else {
            return on_tree;
        };
        let mut queue = VecDeque::from([root]);
        visited.insert(root);
        while let Some(cur) = queue.pop_front() {
            for (out_port, peer) in topo.neighbors(cur) {
                if visited.insert(peer.dpid) {
                    on_tree.insert(Endpoint::new(cur, out_port));
                    on_tree.insert(peer);
                    queue.push_back(peer.dpid);
                }
            }
        }
        on_tree
    }

    /// Recompute the tree and emit delta rules: block non-tree inter-switch
    /// ports (ingress drop), unblock ports that re-joined the tree.
    fn recompute(&mut self, ctx: &mut Ctx<'_>) {
        self.state.recomputations += 1;
        let on_tree = Self::tree_endpoints(ctx.topology);

        // Every inter-switch endpoint NOT on the tree gets blocked.
        let mut want: BTreeMap<DatapathId, BTreeSet<u16>> = BTreeMap::new();
        for link in &ctx.topology.links {
            for ep in [link.a, link.b] {
                if !on_tree.contains(&ep) {
                    want.entry(ep.dpid).or_default().insert(ep.port);
                }
            }
        }

        // Deltas vs. current blocks.
        let dpids: BTreeSet<DatapathId> = want
            .keys()
            .chain(self.state.blocked.keys())
            .copied()
            .collect();
        for dpid in dpids {
            let empty = BTreeSet::new();
            let wanted = want.get(&dpid).unwrap_or(&empty);
            let current = self.state.blocked.get(&dpid).cloned().unwrap_or_default();
            for &port in wanted.difference(&current) {
                let fm = FlowMod::add(Match::any().with_in_port(PortNo::Phys(port)))
                    .priority(BLOCK_PRIORITY);
                ctx.send(dpid, Message::FlowMod(fm));
            }
            for &port in current.difference(wanted) {
                let fm = FlowMod::delete_strict(
                    Match::any().with_in_port(PortNo::Phys(port)),
                    BLOCK_PRIORITY,
                );
                ctx.send(dpid, Message::FlowMod(fm));
            }
        }
        self.state.blocked = want;
    }
}

impl SdnApp for SpanningTree {
    fn name(&self) -> &str {
        "spanning-tree"
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        vec![
            EventKind::SwitchUp,
            EventKind::SwitchDown,
            EventKind::LinkUp,
            EventKind::LinkDown,
        ]
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match event {
            Event::SwitchUp(_)
            | Event::SwitchDown(_)
            | Event::LinkUp { .. }
            | Event::LinkDown { .. } => {
                // Any topology change can move the tree.
                if let Event::SwitchDown(d) = event {
                    // The dead switch's blocks are gone with its table.
                    self.state.blocked.remove(d);
                }
                self.recompute(ctx);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&self.state)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        self.state = unsnap(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legosdn_controller::services::DeviceView;
    use legosdn_netsim::SimTime;

    fn ep(d: u64, p: u16) -> Endpoint {
        Endpoint::new(DatapathId(d), p)
    }

    /// Triangle: 1-2, 2-3, 1-3 — one link must be blocked.
    fn triangle() -> TopologyView {
        let mut t = TopologyView::default();
        for d in 1..=3 {
            t.switch_up(DatapathId(d), vec![]);
        }
        t.link_up(ep(1, 1), ep(2, 1));
        t.link_up(ep(2, 2), ep(3, 1));
        t.link_up(ep(1, 2), ep(3, 2));
        t
    }

    fn run(
        app: &mut SpanningTree,
        ev: &Event,
        topo: &TopologyView,
    ) -> Vec<legosdn_controller::app::Command> {
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, topo, &dev);
        app.on_event(ev, &mut ctx);
        ctx.into_commands()
    }

    #[test]
    fn tree_covers_all_switches() {
        let topo = triangle();
        let on_tree = SpanningTree::tree_endpoints(&topo);
        // A spanning tree over 3 switches has 2 links = 4 endpoints.
        assert_eq!(on_tree.len(), 4);
    }

    #[test]
    fn triangle_blocks_exactly_one_link() {
        let topo = triangle();
        let mut app = SpanningTree::new();
        let cmds = run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        // One blocked link = two blocked endpoints = two drop rules.
        let blocks = cmds
            .iter()
            .filter(|c| {
                matches!(&c.msg, Message::FlowMod(fm)
                if fm.command == FlowModCommand::Add && fm.priority == BLOCK_PRIORITY)
            })
            .count();
        assert_eq!(blocks, 2, "{cmds:?}");
        let total_blocked: usize = (1..=3)
            .map(|d| app.blocked_ports(DatapathId(d)).len())
            .sum();
        assert_eq!(total_blocked, 2);
    }

    #[test]
    fn acyclic_topology_blocks_nothing() {
        let mut topo = TopologyView::default();
        for d in 1..=3 {
            topo.switch_up(DatapathId(d), vec![]);
        }
        topo.link_up(ep(1, 1), ep(2, 1));
        topo.link_up(ep(2, 2), ep(3, 1));
        let mut app = SpanningTree::new();
        let cmds = run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        assert!(cmds.is_empty(), "{cmds:?}");
    }

    #[test]
    fn tree_link_failure_unblocks_the_spare() {
        let mut topo = triangle();
        let mut app = SpanningTree::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        let blocked_before: Vec<(u64, Vec<u16>)> = (1..=3)
            .map(|d| (d, app.blocked_ports(DatapathId(d))))
            .collect();
        // Fail a TREE link (1-2 is always on the BFS tree from root 1).
        topo.link_down(ep(1, 1), ep(2, 1));
        let cmds = run(
            &mut app,
            &Event::LinkDown {
                a: ep(1, 1),
                b: ep(2, 1),
            },
            &topo,
        );
        // The previously blocked link must be unblocked (deletes emitted).
        let deletes = cmds
            .iter()
            .filter(|c| matches!(&c.msg, Message::FlowMod(fm) if fm.is_delete()))
            .count();
        assert!(
            deletes >= 1,
            "spare link must be unblocked: {cmds:?} (was {blocked_before:?})"
        );
        // Now nothing is blocked: remaining topology is a line.
        let total_blocked: usize = (1..=3)
            .map(|d| app.blocked_ports(DatapathId(d)).len())
            .sum();
        assert_eq!(total_blocked, 0);
    }

    #[test]
    fn recompute_is_idempotent() {
        let topo = triangle();
        let mut app = SpanningTree::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        // Same topology again: no delta commands.
        let cmds = run(&mut app, &Event::SwitchUp(DatapathId(2)), &topo);
        assert!(cmds.is_empty(), "{cmds:?}");
        assert_eq!(app.recomputations(), 2);
    }

    #[test]
    fn state_roundtrips() {
        let topo = triangle();
        let mut app = SpanningTree::new();
        run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        let snap = app.snapshot();
        let mut fresh = SpanningTree::new();
        fresh.restore(&snap).unwrap();
        // Restored app agrees nothing changed.
        let cmds = run(&mut fresh, &Event::SwitchUp(DatapathId(1)), &topo);
        assert!(cmds.is_empty());
    }

    #[test]
    fn empty_topology_is_fine() {
        let topo = TopologyView::default();
        let mut app = SpanningTree::new();
        let cmds = run(&mut app, &Event::SwitchUp(DatapathId(1)), &topo);
        assert!(cmds.is_empty());
    }
}
