//! Deterministic fault injection — the reproduction's stand-in for real
//! SDN-App bugs (FlowScale's bug tracker, paper §2.1).
//!
//! [`FaultyApp`] wraps any [`SdnApp`] with a *trigger* (when the bug fires)
//! and an *effect* (what it does). The paper's fault model distinguishes:
//!
//! - **Fail-stop** ([`BugEffect::Crash`]): the handler panics. Deterministic
//!   triggers reproduce the paper's core assumption that replaying the
//!   offending event re-crashes the app.
//! - **Byzantine** ([`BugEffect::Blackhole`], [`BugEffect::ForwardingLoop`],
//!   [`BugEffect::FlushFlows`]): the app emits rules that violate network
//!   invariants instead of crashing.
//! - **Non-deterministic** ([`BugTrigger::WithProbability`]): fires
//!   probabilistically from an RNG that is *excluded from snapshots*, so a
//!   restored app replaying the same event may not crash again — the §5
//!   clone-based mechanism's target.

use crate::util::{snap, unsnap};
use legosdn_codec::Codec;
use legosdn_controller::app::{Ctx, RestoreError, SdnApp};
use legosdn_controller::event::{Event, EventKind};
use legosdn_openflow::prelude::*;
use std::collections::BTreeMap;

/// When the injected bug fires.
#[derive(Clone, Debug, PartialEq, Codec)]
pub enum BugTrigger {
    /// Never fires (control group).
    Never,
    /// Fires on the nth event delivered (1-based), every time it recurs.
    OnNthEvent(u64),
    /// Fires on every event of this kind.
    OnEventKind(EventKind),
    /// Fires on the nth event of this kind (1-based).
    OnNthOfKind(EventKind, u64),
    /// Fires on any packet-in destined to this MAC — the classic
    /// "poisoned input" deterministic bug.
    OnPacketToMac(MacAddr),
    /// Fires on any event concerning this switch.
    OnSwitch(DatapathId),
    /// Fires with probability `per_mille`/1000 per event. The RNG state is
    /// deliberately NOT checkpointed: this models a non-deterministic bug.
    WithProbability { per_mille: u32, seed: u64 },
}

/// What the bug does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Codec)]
pub enum BugEffect {
    /// Fail-stop: panic inside the event handler.
    Crash,
    /// Byzantine: install a top-priority drop-everything rule on the
    /// event's switch — a black-hole.
    Blackhole,
    /// Byzantine: install match-any rules forwarding in both directions
    /// across the event switch's first known link — a forwarding loop.
    ForwardingLoop,
    /// Byzantine: delete every flow on every switch the app can see.
    FlushFlows,
}

#[derive(Clone, Debug, Default, PartialEq, Codec)]
struct State {
    events_seen: u64,
    per_kind: BTreeMap<EventKind, u64>,
    times_fired: u64,
    /// RNG for the probabilistic trigger. `skip` keeps it out of snapshots:
    /// a restored app re-rolls, modelling non-determinism.
    #[codec(skip)]
    rng: u64,
}

/// Saved form: own counters plus the inner app's opaque snapshot.
#[derive(Codec)]
struct Saved {
    own: State,
    inner: Vec<u8>,
}

/// An app wrapped with an injected bug.
pub struct FaultyApp {
    inner: Box<dyn SdnApp>,
    name: String,
    trigger: BugTrigger,
    effect: BugEffect,
    state: State,
}

impl FaultyApp {
    /// Wrap `inner` with a bug.
    #[must_use]
    pub fn new(inner: Box<dyn SdnApp>, trigger: BugTrigger, effect: BugEffect) -> Self {
        let name = format!("{}#buggy", inner.name());
        let seed = match &trigger {
            BugTrigger::WithProbability { seed, .. } => *seed | 1,
            _ => 1,
        };
        FaultyApp {
            inner,
            name,
            trigger,
            effect,
            state: State {
                rng: seed,
                ..State::default()
            },
        }
    }

    /// Times the bug has fired.
    #[must_use]
    pub fn times_fired(&self) -> u64 {
        self.state.times_fired
    }

    /// Events delivered so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.state.events_seen
    }

    /// The wrapped app.
    #[must_use]
    pub fn inner(&self) -> &dyn SdnApp {
        self.inner.as_ref()
    }

    fn roll(&mut self) -> u64 {
        // xorshift64*; state never zero (seeded with |1).
        let mut x = self.state.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn triggered(&mut self, event: &Event) -> bool {
        let kind = event.kind();
        let nth = self.state.events_seen;
        let nth_of_kind = *self.state.per_kind.get(&kind).unwrap_or(&0);
        let trigger = self.trigger.clone();
        match &trigger {
            BugTrigger::Never => false,
            BugTrigger::OnNthEvent(n) => nth == *n,
            BugTrigger::OnEventKind(k) => kind == *k,
            BugTrigger::OnNthOfKind(k, n) => kind == *k && nth_of_kind == *n,
            BugTrigger::OnPacketToMac(mac) => matches!(
                event,
                Event::PacketIn(_, pi) if pi.packet.eth_dst == *mac
            ),
            BugTrigger::OnSwitch(dpid) => event.dpid() == Some(*dpid),
            BugTrigger::WithProbability { per_mille, .. } => {
                let per_mille = *per_mille;
                let r = self.roll() % 1000;
                r < u64::from(per_mille)
            }
        }
    }

    fn byzantine(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        match self.effect {
            BugEffect::Crash => unreachable!("handled by caller"),
            BugEffect::Blackhole => {
                // Black-hole the event's switch, or the first known one.
                let dpid = event
                    .dpid()
                    .or_else(|| ctx.topology.switches.keys().next().copied());
                if let Some(dpid) = dpid {
                    let fm = FlowMod::add(Match::any()).priority(u16::MAX);
                    ctx.send(dpid, Message::FlowMod(fm));
                }
            }
            BugEffect::ForwardingLoop => {
                // Bounce everything across the first link we can see.
                let link = event
                    .dpid()
                    .and_then(|d| ctx.topology.links_of(d).into_iter().next())
                    .or_else(|| ctx.topology.links.iter().next().copied());
                if let Some(link) = link {
                    for (here, _) in [(link.a, link.b), (link.b, link.a)] {
                        let fm = FlowMod::add(Match::any())
                            .priority(u16::MAX)
                            .action(Action::Output(PortNo::Phys(here.port)));
                        ctx.send(here.dpid, Message::FlowMod(fm));
                    }
                }
            }
            BugEffect::FlushFlows => {
                let dpids: Vec<DatapathId> = ctx.topology.switches.keys().copied().collect();
                for dpid in dpids {
                    ctx.send(dpid, Message::FlowMod(FlowMod::delete(Match::any())));
                }
            }
        }
    }
}

impl SdnApp for FaultyApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn subscriptions(&self) -> Vec<EventKind> {
        let mut subs = self.inner.subscriptions();
        // Make sure trigger-relevant kinds are delivered.
        let extra = match &self.trigger {
            BugTrigger::OnEventKind(k) | BugTrigger::OnNthOfKind(k, _) => Some(*k),
            BugTrigger::OnPacketToMac(_) => Some(EventKind::PacketIn),
            _ => None,
        };
        if let Some(k) = extra {
            if !subs.contains(&k) {
                subs.push(k);
            }
        }
        subs
    }

    fn on_event(&mut self, event: &Event, ctx: &mut Ctx<'_>) {
        self.state.events_seen += 1;
        *self.state.per_kind.entry(event.kind()).or_insert(0) += 1;
        if self.triggered(event) {
            self.state.times_fired += 1;
            if self.effect == BugEffect::Crash {
                panic!(
                    "injected bug in {}: {:?} on {:?}",
                    self.name,
                    self.trigger,
                    event.kind()
                );
            }
            self.byzantine(event, ctx);
            // Byzantine apps keep running (their output is the failure).
        }
        self.inner.on_event(event, ctx);
    }

    fn snapshot(&self) -> Vec<u8> {
        snap(&Saved {
            own: self.state.clone(),
            inner: self.inner.snapshot(),
        })
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let saved: Saved = unsnap(bytes)?;
        let rng = self.state.rng; // survives restore: non-determinism
        self.state = saved.own;
        self.state.rng = if rng == 0 { 1 } else { rng };
        self.inner.restore(&saved.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Hub;
    use legosdn_controller::services::{DeviceView, TopologyView};
    use legosdn_netsim::{Endpoint, SimTime};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn pin(dst: u64) -> Event {
        Event::PacketIn(
            DatapathId(1),
            PacketIn {
                buffer_id: BufferId::NONE,
                in_port: PortNo::Phys(1),
                reason: PacketInReason::NoMatch,
                packet: Packet::ethernet(MacAddr::from_index(9), MacAddr::from_index(dst)),
            },
        )
    }

    fn deliver(
        app: &mut FaultyApp,
        ev: &Event,
    ) -> Result<Vec<legosdn_controller::app::Command>, String> {
        let mut topo = TopologyView::default();
        topo.switch_up(DatapathId(1), vec![]);
        topo.switch_up(DatapathId(2), vec![]);
        topo.link_up(
            Endpoint::new(DatapathId(1), 1),
            Endpoint::new(DatapathId(2), 1),
        );
        let dev = DeviceView::default();
        let mut ctx = Ctx::new(SimTime::ZERO, &topo, &dev);
        let r = catch_unwind(AssertUnwindSafe(|| app.on_event(ev, &mut ctx)));
        match r {
            Ok(()) => Ok(ctx.into_commands()),
            Err(p) => Err(legosdn_controller::monolithic::panic_text(&*p)),
        }
    }

    #[test]
    fn never_trigger_is_transparent() {
        let mut app = FaultyApp::new(Box::new(Hub::new()), BugTrigger::Never, BugEffect::Crash);
        for _ in 0..10 {
            assert!(deliver(&mut app, &pin(2)).is_ok());
        }
        assert_eq!(app.times_fired(), 0);
        assert_eq!(app.events_seen(), 10);
    }

    #[test]
    fn poisoned_mac_crashes_deterministically() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnPacketToMac(MacAddr::from_index(13)),
            BugEffect::Crash,
        );
        assert!(deliver(&mut app, &pin(2)).is_ok());
        let err = deliver(&mut app, &pin(13)).unwrap_err();
        assert!(err.contains("injected bug"));
        // Determinism: the same event crashes again after restore.
        let snap_before = app.snapshot();
        app.restore(&snap_before).unwrap();
        assert!(deliver(&mut app, &pin(13)).is_err());
    }

    #[test]
    fn nth_event_trigger_counts() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnNthEvent(3),
            BugEffect::Crash,
        );
        assert!(deliver(&mut app, &pin(2)).is_ok());
        assert!(deliver(&mut app, &pin(2)).is_ok());
        assert!(deliver(&mut app, &pin(2)).is_err());
        // 4th event: trigger no longer matches.
        assert!(deliver(&mut app, &pin(2)).is_ok());
    }

    #[test]
    fn nth_of_kind_trigger() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnNthOfKind(EventKind::SwitchDown, 2),
            BugEffect::Crash,
        );
        assert!(deliver(&mut app, &Event::SwitchDown(DatapathId(1))).is_ok());
        assert!(deliver(&mut app, &pin(2)).is_ok());
        assert!(deliver(&mut app, &Event::SwitchDown(DatapathId(1))).is_err());
    }

    #[test]
    fn blackhole_effect_emits_drop_all() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::Blackhole,
        );
        let cmds = deliver(&mut app, &pin(2)).unwrap();
        let blackhole = cmds.iter().find_map(|c| match &c.msg {
            Message::FlowMod(fm) if fm.priority == u16::MAX && fm.actions.is_empty() => Some(fm),
            _ => None,
        });
        assert!(blackhole.is_some(), "commands: {cmds:?}");
        // The inner app still ran (its flood is also present).
        assert!(cmds.iter().any(|c| matches!(&c.msg, Message::PacketOut(_))));
        assert_eq!(app.times_fired(), 1);
    }

    #[test]
    fn forwarding_loop_effect_hits_both_ends() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::ForwardingLoop,
        );
        let cmds = deliver(&mut app, &pin(2)).unwrap();
        let loops: Vec<_> = cmds
            .iter()
            .filter(|c| matches!(&c.msg, Message::FlowMod(fm) if fm.priority == u16::MAX))
            .collect();
        assert_eq!(loops.len(), 2);
        let dpids: std::collections::BTreeSet<u64> = loops.iter().map(|c| c.dpid.0).collect();
        assert_eq!(dpids.len(), 2, "one rule per link end");
    }

    #[test]
    fn flush_effect_deletes_everywhere() {
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::PacketIn),
            BugEffect::FlushFlows,
        );
        let cmds = deliver(&mut app, &pin(2)).unwrap();
        let deletes = cmds
            .iter()
            .filter(|c| matches!(&c.msg, Message::FlowMod(fm) if fm.is_delete()))
            .count();
        assert_eq!(deletes, 2, "both switches in the view");
    }

    #[test]
    fn snapshot_nests_inner_state() {
        let mut app = FaultyApp::new(Box::new(Hub::new()), BugTrigger::Never, BugEffect::Crash);
        deliver(&mut app, &pin(2)).unwrap();
        deliver(&mut app, &pin(2)).unwrap();
        let s = app.snapshot();
        let mut fresh = FaultyApp::new(Box::new(Hub::new()), BugTrigger::Never, BugEffect::Crash);
        fresh.restore(&s).unwrap();
        assert_eq!(fresh.events_seen(), 2);
        // Inner hub's counter came along.
        let inner_snap = fresh.inner().snapshot();
        let mut hub = Hub::new();
        hub.restore(&inner_snap).unwrap();
        assert_eq!(hub.packets_flooded(), 2);
    }

    #[test]
    fn probabilistic_bug_is_not_deterministic_under_restore() {
        // With p=1000/1000 the bug always fires; with the RNG excluded from
        // snapshots we can't assert re-roll divergence at p=1000, so use the
        // structure instead: the rng field must survive a restore (not reset
        // to the snapshotted value — there is none).
        let mut app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::WithProbability {
                per_mille: 500,
                seed: 42,
            },
            BugEffect::Crash,
        );
        // Drive events until the first crash.
        let mut fired_at = None;
        for i in 0..100 {
            if deliver(&mut app, &pin(2)).is_err() {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("p=0.5 must fire within 100 events");
        // Restore to just-before state: RNG has advanced, so the outcome
        // sequence from here differs from a fresh app with the same seed.
        let snap = app.snapshot();
        app.restore(&snap).unwrap();
        let mut fresh = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::WithProbability {
                per_mille: 500,
                seed: 42,
            },
            BugEffect::Crash,
        );
        let mut fresh_fired_at = None;
        for i in 0..100 {
            if deliver(&mut fresh, &pin(2)).is_err() {
                fresh_fired_at = Some(i);
                break;
            }
        }
        // The fresh app fires at the same point (same seed); the restored
        // app's future rolls continue from a later RNG state.
        assert_eq!(fresh_fired_at, Some(fired_at));
        let restored_next = deliver(&mut app, &pin(2));
        let _ = restored_next; // may or may not crash — the point is it can differ
    }

    #[test]
    fn subscriptions_include_trigger_kind() {
        let app = FaultyApp::new(
            Box::new(Hub::new()),
            BugTrigger::OnEventKind(EventKind::SwitchDown),
            BugEffect::Crash,
        );
        assert!(app.subscriptions().contains(&EventKind::SwitchDown));
        assert!(app.subscriptions().contains(&EventKind::PacketIn));
    }

    #[test]
    fn name_marks_the_wrapper() {
        let app = FaultyApp::new(Box::new(Hub::new()), BugTrigger::Never, BugEffect::Crash);
        assert_eq!(app.name(), "hub#buggy");
    }
}
